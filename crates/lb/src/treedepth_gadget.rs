//! Theorem 2.5: certifying treedepth ≤ 5 needs `Ω(log n)` bits.
//!
//! The Section 7.3 construction: each of `V_A, V_α, V_β, V_B` consists of
//! two layers of `n` vertices; `E_P` is the union of the `2n` disjoint
//! paths `(V_A^j[i], V_α^j[i], V_β^j[i], V_B^j[i])` plus an apex `u`
//! adjacent to every `V_α` vertex. Alice adds the matching `f(s_A)`
//! between `V_A^1` and `V_A^2`, Bob adds `f(s_B)` between `V_B^1` and
//! `V_B^2` (`f` = Lehmer-code unranking of permutations, so
//! `ℓ = ⌊log₂ n!⌋ = Θ(n log n)` while the interface has `r = 2n`
//! vertices: `Ω(ℓ/r) = Ω(log n)`).
//!
//! Lemma 7.3 (validated here by the exact treedepth solver and the
//! cops-and-robber engine): equal matchings give `2n` disjoint 8-cycles
//! through the apex — treedepth exactly 5; unequal matchings create a
//! cycle of length ≥ 16 — treedepth at least 6.

use crate::framework::{GadgetFamily, Partition};
use locert_graph::{Graph, GraphBuilder, IdAssignment, Ident, NodeId};

/// Unranks `rank` into a permutation of `0..n` via the Lehmer code.
///
/// # Panics
///
/// Panics if `rank >= n!` or `n!` overflows `u64` (`n ≤ 20`).
pub fn unrank_permutation(n: usize, mut rank: u64) -> Vec<usize> {
    let mut fact = vec![1u64; n + 1];
    for i in 1..=n {
        fact[i] = fact[i - 1]
            .checked_mul(i as u64)
            .expect("n! must fit in u64");
    }
    assert!(rank < fact[n], "rank out of range");
    let mut available: Vec<usize> = (0..n).collect();
    let mut perm = Vec::with_capacity(n);
    for i in (0..n).rev() {
        let f = fact[i];
        let idx = (rank / f) as usize;
        rank %= f;
        perm.push(available.remove(idx));
    }
    perm
}

/// Number of whole input bits encodable as a permutation of `0..n`
/// (`⌊log₂ n!⌋`).
pub fn matching_bits(n: usize) -> usize {
    let mut log = 0f64;
    for i in 2..=n {
        log += (i as f64).log2();
    }
    log.floor() as usize
}

/// Decodes a bit string into a permutation (matching) of `0..n`.
///
/// # Panics
///
/// Panics if `s.len() > matching_bits(n)`.
pub fn matching_from_string(n: usize, s: &[bool]) -> Vec<usize> {
    assert!(s.len() <= matching_bits(n), "string too long for n");
    let mut rank = 0u64;
    for (i, &b) in s.iter().enumerate() {
        if b {
            rank |= 1 << i;
        }
    }
    unrank_permutation(n, rank)
}

/// The vertex layout of the gadget.
#[derive(Debug, Clone, Copy)]
pub struct GadgetLayout {
    /// Matching size `n` (per layer).
    pub n: usize,
}

impl GadgetLayout {
    // Layout: for j in {0,1} (layers) and i in 0..n:
    //   V_A^j[i] = j*4n + i
    //   V_α^j[i] = j*4n + n + i
    //   V_β^j[i] = j*4n + 2n + i
    //   V_B^j[i] = j*4n + 3n + i
    // apex u = 8n.
    fn va(&self, j: usize, i: usize) -> usize {
        j * 4 * self.n + i
    }
    fn valpha(&self, j: usize, i: usize) -> usize {
        j * 4 * self.n + self.n + i
    }
    fn vbeta(&self, j: usize, i: usize) -> usize {
        j * 4 * self.n + 2 * self.n + i
    }
    fn vb(&self, j: usize, i: usize) -> usize {
        j * 4 * self.n + 3 * self.n + i
    }
    fn apex(&self) -> usize {
        8 * self.n
    }

    /// Total vertex count (`8n + 1`).
    pub fn num_nodes(&self) -> usize {
        8 * self.n + 1
    }
}

/// Builds the gadget graph from two explicit matchings (permutations of
/// `0..n`).
pub fn build_gadget(n: usize, m_a: &[usize], m_b: &[usize]) -> (Graph, Partition) {
    assert_eq!(m_a.len(), n);
    assert_eq!(m_b.len(), n);
    let lay = GadgetLayout { n };
    let mut b = GraphBuilder::new(lay.num_nodes());
    for j in 0..2 {
        for i in 0..n {
            b.add_edge(lay.va(j, i), lay.valpha(j, i)).expect("valid");
            b.add_edge(lay.valpha(j, i), lay.vbeta(j, i))
                .expect("valid");
            b.add_edge(lay.vbeta(j, i), lay.vb(j, i)).expect("valid");
            b.add_edge(lay.apex(), lay.valpha(j, i)).expect("valid");
        }
    }
    for (i, &pi) in m_a.iter().enumerate() {
        b.add_edge(lay.va(0, i), lay.va(1, pi)).expect("valid");
    }
    for (i, &pi) in m_b.iter().enumerate() {
        b.add_edge(lay.vb(0, i), lay.vb(1, pi)).expect("valid");
    }
    // The apex behaves like a V_α vertex (simulated by Alice).
    let mut v_alpha: Vec<NodeId> = (0..2)
        .flat_map(|j| (0..n).map(move |i| NodeId(lay.valpha(j, i))))
        .collect();
    v_alpha.push(NodeId(lay.apex()));
    let part = Partition {
        v_a: (0..2)
            .flat_map(|j| (0..n).map(move |i| NodeId(lay.va(j, i))))
            .collect(),
        v_alpha,
        v_beta: (0..2)
            .flat_map(|j| (0..n).map(move |i| NodeId(lay.vbeta(j, i))))
            .collect(),
        v_b: (0..2)
            .flat_map(|j| (0..n).map(move |i| NodeId(lay.vb(j, i))))
            .collect(),
    };
    (b.build(), part)
}

/// The `k > 5` extension (end of Section 7.3): subdividing the
/// `(V_A, V_α)`-corner edges lengthens every cycle, shifting the
/// treedepth threshold from 5/6 to `k`/`k+1`.
///
/// For the dichotomy to stay exactly one level wide the cycle length `L`
/// must be a power of two (`td(apex + C_L's) = ⌈log₂ L⌉ + 2` when the
/// matchings are equal, and an unequal pair merges two `L`-cycles into a
/// `2L`-cycle, adding exactly one): `L = 2^{k−2}`, realized by placing
/// `(L − 8) / 2` subdivision vertices on each `A`-corner edge (they live
/// in `V_A`, which keeps the Figure 2 edge discipline).
///
/// Returns the graph and partition.
///
/// # Panics
///
/// Panics if `k < 5`.
pub fn build_gadget_k(n: usize, m_a: &[usize], m_b: &[usize], k: usize) -> (Graph, Partition) {
    assert!(k >= 5, "the construction starts at k = 5");
    let cycle_len = 1usize << (k - 2);
    let subdiv = (cycle_len - 8) / 2; // per A-corner edge.
    if subdiv == 0 {
        return build_gadget(n, m_a, m_b);
    }
    assert_eq!(m_a.len(), n);
    assert_eq!(m_b.len(), n);
    let lay = GadgetLayout { n };
    let base = lay.num_nodes();
    // Subdivision vertices: for (j, i) the chain occupies
    // base + (j*n + i)*subdiv .. + subdiv.
    let total = base + 2 * n * subdiv;
    let mut b = GraphBuilder::new(total);
    let mut sub_vertices: Vec<NodeId> = Vec::new();
    for j in 0..2 {
        for i in 0..n {
            // A-corner: V_A^j[i] — chain — V_α^j[i].
            let mut prev = lay.va(j, i);
            for s in 0..subdiv {
                let v = base + (j * n + i) * subdiv + s;
                b.add_edge(prev, v).expect("valid");
                sub_vertices.push(NodeId(v));
                prev = v;
            }
            b.add_edge(prev, lay.valpha(j, i)).expect("valid");
            b.add_edge(lay.valpha(j, i), lay.vbeta(j, i))
                .expect("valid");
            b.add_edge(lay.vbeta(j, i), lay.vb(j, i)).expect("valid");
            b.add_edge(lay.apex(), lay.valpha(j, i)).expect("valid");
        }
    }
    for (i, &pi) in m_a.iter().enumerate() {
        b.add_edge(lay.va(0, i), lay.va(1, pi)).expect("valid");
    }
    for (i, &pi) in m_b.iter().enumerate() {
        b.add_edge(lay.vb(0, i), lay.vb(1, pi)).expect("valid");
    }
    let mut v_alpha: Vec<NodeId> = (0..2)
        .flat_map(|j| (0..n).map(move |i| NodeId(lay.valpha(j, i))))
        .collect();
    v_alpha.push(NodeId(lay.apex()));
    let mut v_a: Vec<NodeId> = (0..2)
        .flat_map(|j| (0..n).map(move |i| NodeId(lay.va(j, i))))
        .collect();
    v_a.extend(sub_vertices);
    let part = Partition {
        v_a,
        v_alpha,
        v_beta: (0..2)
            .flat_map(|j| (0..n).map(move |i| NodeId(lay.vbeta(j, i))))
            .collect(),
        v_b: (0..2)
            .flat_map(|j| (0..n).map(move |i| NodeId(lay.vb(j, i))))
            .collect(),
    };
    (b.build(), part)
}

/// The Theorem 2.5 gadget family with matching size `n`.
#[derive(Debug, Clone, Copy)]
pub struct TreedepthFamily {
    /// Matching size `n` (per layer).
    pub n: usize,
}

impl GadgetFamily for TreedepthFamily {
    fn build(&self, s_a: &[bool], s_b: &[bool]) -> (Graph, Partition, IdAssignment) {
        let m_a = matching_from_string(self.n, s_a);
        let m_b = matching_from_string(self.n, s_b);
        let (g, part) = build_gadget(self.n, &m_a, &m_b);
        // Interface identifiers 1..=r first, privates after (arbitrary).
        let r = part.interface_size();
        let mut ids = vec![Ident(0); g.num_nodes()];
        for (i, &v) in part.v_alpha.iter().chain(part.v_beta.iter()).enumerate() {
            ids[v.0] = Ident(i as u64 + 1);
        }
        let mut next = r as u64 + 1;
        for id in ids.iter_mut() {
            if id.value() == 0 {
                *id = Ident(next);
                next += 1;
            }
        }
        (g, part, IdAssignment::new(ids).expect("distinct"))
    }

    fn input_bits(&self) -> usize {
        matching_bits(self.n)
    }
}

/// Whether two matchings are equal in the paper's sense.
pub fn matchings_equal(m_a: &[usize], m_b: &[usize]) -> bool {
    m_a == m_b
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_treedepth::cops::cop_number;
    use locert_treedepth::treedepth_exact;

    #[test]
    fn unrank_permutation_enumerates_all() {
        let mut seen = std::collections::HashSet::new();
        for rank in 0..24 {
            let p = unrank_permutation(4, rank);
            assert_eq!(p.len(), 4);
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn unrank_rejects_large_rank() {
        unrank_permutation(3, 6);
    }

    #[test]
    fn matching_bits_values() {
        assert_eq!(matching_bits(1), 0);
        assert_eq!(matching_bits(2), 1); // log2(2) = 1.
        assert_eq!(matching_bits(3), 2); // log2(6) ≈ 2.58.
        assert_eq!(matching_bits(4), 4); // log2(24) ≈ 4.58.
        assert_eq!(matching_bits(5), 6); // log2(120) ≈ 6.9.
    }

    #[test]
    fn gadget_shape() {
        let (g, part) = build_gadget(2, &[0, 1], &[0, 1]);
        assert_eq!(g.num_nodes(), 17);
        assert!(g.is_connected());
        assert!(part.validates(&g));
        assert_eq!(part.interface_size(), 9); // 2n α + 2n β + apex.
                                              // Apex degree = 2n.
        assert_eq!(g.degree(NodeId(16)), 4);
    }

    #[test]
    fn lemma_7_3_equal_matchings_give_treedepth_5() {
        // n = 2, identity matchings: 2 disjoint 8-cycles + apex.
        let (g, _) = build_gadget(2, &[0, 1], &[0, 1]);
        assert_eq!(treedepth_exact(&g), 5);
        assert_eq!(cop_number(&g), 5);
        // Swapped matchings on both sides are still *equal*.
        let (g2, _) = build_gadget(2, &[1, 0], &[1, 0]);
        assert_eq!(treedepth_exact(&g2), 5);
    }

    #[test]
    fn lemma_7_3_unequal_matchings_give_treedepth_6() {
        let (g, _) = build_gadget(2, &[0, 1], &[1, 0]);
        assert_eq!(treedepth_exact(&g), 6);
        assert_eq!(cop_number(&g), 6);
    }

    #[test]
    fn family_dichotomy_over_all_strings() {
        let fam = TreedepthFamily { n: 2 };
        let l = fam.input_bits();
        assert_eq!(l, 1);
        for s_a in crate::cc::all_strings(l) {
            for s_b in crate::cc::all_strings(l) {
                let (g, part, ids) = fam.build(&s_a, &s_b);
                assert!(part.validates(&g));
                assert_eq!(ids.len(), g.num_nodes());
                let td = treedepth_exact(&g);
                if s_a == s_b {
                    assert_eq!(td, 5);
                } else {
                    assert!(td >= 6);
                }
            }
        }
    }

    #[test]
    fn extended_gadget_k5_equals_base() {
        let (a, _) = build_gadget_k(2, &[0, 1], &[1, 0], 5);
        let (b, _) = build_gadget(2, &[0, 1], &[1, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn extended_gadget_k6_dichotomy() {
        // k = 6: cycles of length 16; the exact solver is out of reach at
        // 33 vertices, so validate structurally: (a) the partition and
        // connectivity, (b) cycle lengths without the apex (16 vs 32),
        // (c) the closed-form treedepth of "apex over disjoint cycles":
        // 1 + td(C_L) = 1 + ⌈log₂ L⌉ + 1.
        use locert_graph::minors::has_cycle_at_least;
        use locert_graph::NodeId;
        for (m_b, equal) in [(vec![0usize, 1], true), (vec![1usize, 0], false)] {
            let (g, part) = build_gadget_k(2, &[0, 1], &m_b, 6);
            assert!(g.is_connected());
            assert!(part.validates(&g));
            assert_eq!(g.num_nodes(), 17 + 4 * 4);
            // Remove the apex: 2-regular remainder (32 vertices — beyond
            // the exact-circumference limit, so probe with the bounded
            // cycle search).
            let apex = NodeId(16);
            let keep: Vec<NodeId> = g.nodes().filter(|&v| v != apex).collect();
            let (rest, _) = g.induced_subgraph(&keep);
            assert!(rest.nodes().all(|v| rest.degree(v) == 2));
            let circ = if has_cycle_at_least(&rest, 32, 32) {
                32
            } else if has_cycle_at_least(&rest, 16, 16) && !has_cycle_at_least(&rest, 17, 32) {
                16
            } else {
                panic!("unexpected cycle structure");
            };
            if equal {
                assert_eq!(circ, 16);
                // td = ⌈log₂ 16⌉ + 2 = 6 by the closed form; spot-check
                // the upper bound with a hand model: apex root, then the
                // optimal cycle models below. (The matching lower bound
                // is Lemma 7.3's cops argument, exercised exactly at
                // k = 5 where the solver fits.)
                use locert_treedepth::bounds::treedepth_of_cycle;
                assert_eq!(1 + treedepth_of_cycle(16), 6);
            } else {
                assert_eq!(circ, 32);
                use locert_treedepth::bounds::treedepth_of_cycle;
                assert_eq!(1 + treedepth_of_cycle(32), 7);
            }
        }
    }

    #[test]
    fn figure3_cycle_structure() {
        // Without the apex, equal matchings yield disjoint 8-cycles.
        let (g, _) = build_gadget(2, &[0, 1], &[0, 1]);
        let lay = GadgetLayout { n: 2 };
        let keep: Vec<NodeId> = (0..lay.num_nodes() - 1).map(NodeId).collect();
        let (no_apex, _) = g.induced_subgraph(&keep);
        // 2-regular → disjoint cycles.
        assert!(no_apex.nodes().all(|v| no_apex.degree(v) == 2));
        use locert_graph::minors::circumference_exact;
        assert_eq!(circumference_exact(&no_apex), 8);
        // Unequal matchings: a 16-cycle appears.
        let (g2, _) = build_gadget(2, &[0, 1], &[1, 0]);
        let (no_apex2, _) = g2.induced_subgraph(&keep);
        assert_eq!(circumference_exact(&no_apex2), 16);
    }
}
