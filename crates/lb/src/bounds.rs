//! The `Ω(ℓ/r)` rate calculators of Proposition 7.2, instantiated for
//! both constructions.
//!
//! These evaluate, for concrete gadget parameters, the certificate-size
//! lower bound that the reduction yields: a local certification with
//! `q`-bit certificates gives an EQUALITY protocol with `r·q` bits, and
//! Theorem 7.1 forces `r·q ≥ ℓ`, i.e. `q ≥ ℓ/r`.

use locert_graph::enumerate::count_trees_log2;

/// Generic rate: `ℓ / r` (bits per interface vertex).
pub fn rate(l: usize, r: usize) -> f64 {
    l as f64 / r as f64
}

/// Theorem 2.5 instantiation: `ℓ = ⌊log₂ n!⌋`, `r = 4n + 1` interface
/// vertices; the bound is `Θ(log n)` bits.
pub fn treedepth_rate(n: usize) -> f64 {
    let l = crate::treedepth_gadget::matching_bits(n);
    let r = 4 * n + 1;
    rate(l, r)
}

/// Theorem 2.3 instantiation with the *rank-based* injection: the gadget
/// hangs trees with `n_tree` vertices of depth ≤ `depth`, so
/// `ℓ = ⌊log₂ #trees⌋` while `r = 2`; the bound is `Ω̃(n)` bits.
pub fn automorphism_rate(n_tree: usize, depth: usize) -> f64 {
    let l = count_trees_log2(n_tree, depth).max(0.0).floor();
    rate(l as usize, 2)
}

/// Theorem 2.3 with the depth-2 partition injection (`ℓ` bits cost
/// `Θ(ℓ²)` tree vertices): the rate as a function of the *graph* size,
/// `Ω(√n)`.
pub fn automorphism_rate_depth2(l: usize) -> (usize, f64) {
    // Tree size for an ℓ-bit string (worst case, all bits set):
    // 1 + Σ_{i<ℓ} (1 + 2i + 3) = 1 + 4ℓ + ℓ(ℓ−1).
    let n_tree = 1 + 4 * l + l * (l - 1);
    let n_graph = 2 * n_tree + 2;
    (n_graph, rate(l, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treedepth_rate_grows_logarithmically() {
        // q ≥ Θ(log n): the rate divided by log2 n converges to 1/4.
        let r10 = treedepth_rate(10) / (10f64).log2();
        let r100 = treedepth_rate(100) / (100f64).log2();
        let r1000 = treedepth_rate(1000) / (1000f64).log2();
        assert!(r100 > r10 * 0.8);
        assert!((0.15..0.3).contains(&r1000), "rate/log n = {r1000}");
    }

    #[test]
    fn automorphism_rate_near_linear() {
        // ℓ/2 with ℓ = log2 #trees ≈ Θ(n / log log n): rate grows almost
        // linearly in the tree size.
        let r20 = automorphism_rate(20, 3);
        let r40 = automorphism_rate(40, 3);
        assert!(r40 > 1.7 * r20, "r20 = {r20}, r40 = {r40}");
        assert!(r40 > 8.0);
    }

    #[test]
    fn depth2_rate_is_sqrt_n() {
        let (n, q) = automorphism_rate_depth2(20);
        // q = ℓ/2 and n ≈ ℓ², so q ≈ √n / 2.
        assert!((q - 10.0).abs() < 1e-9);
        assert!(n >= 20 * 20);
        let ratio = q / (n as f64).sqrt();
        assert!((0.3..0.7).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn rates_monotone() {
        assert!(treedepth_rate(64) < treedepth_rate(256));
        assert!(automorphism_rate(15, 3) < automorphism_rate(25, 3));
    }
}
