//! Nondeterministic two-party communication complexity and EQUALITY.
//!
//! Following Section 7.1: Alice holds `s_A`, Bob holds `s_B` (both of
//! length `ℓ`); a prover publishes one certificate `s_P` of length `m`
//! seen by both; each player outputs accept/reject from its own string
//! and `s_P` alone. The protocol *decides EQUALITY* when equal inputs
//! admit an accepting certificate and unequal inputs admit none.
//!
//! Theorem 7.1 (Babai–Frankl–Simon): any such protocol needs
//! `m = Ω(ℓ)` — witnessed constructively here by the classical
//! *fooling-set* argument ([`fooling_attack`]): with `m < ℓ` there are
//! fewer certificates than strings, so two distinct strings `s ≠ s'`
//! share an accepting certificate, and the mixed instance `(s, s')` is
//! wrongly accepted.

/// A nondeterministic protocol: per-player deciders.
pub trait Protocol {
    /// Alice's decision from her input and the prover's certificate.
    fn alice(&self, s_a: &[bool], cert: &[bool]) -> bool;
    /// Bob's decision from his input and the prover's certificate.
    fn bob(&self, s_b: &[bool], cert: &[bool]) -> bool;
    /// Certificate length `m` in bits.
    fn certificate_bits(&self) -> usize;
}

/// Enumerates all bit strings of length `len` (lexicographic).
pub fn all_strings(len: usize) -> impl Iterator<Item = Vec<bool>> {
    assert!(len < 63, "string space too large to enumerate");
    (0..(1u64 << len)).map(move |x| (0..len).map(|i| (x >> i) & 1 == 1).collect())
}

/// Whether some certificate makes both players accept on `(s_a, s_b)`.
pub fn exists_accepting_certificate(
    p: &impl Protocol,
    s_a: &[bool],
    s_b: &[bool],
) -> Option<Vec<bool>> {
    let m = p.certificate_bits();
    assert!(m < 63, "certificate space too large to enumerate");
    if locert_trace::enabled() {
        let mut tried = 0u64;
        let found = all_strings(m).find(|cert| {
            tried += 1;
            p.alice(s_a, cert) && p.bob(s_b, cert)
        });
        locert_trace::add("lb.cc.certs_tried", tried);
        return found;
    }
    all_strings(m).find(|cert| p.alice(s_a, cert) && p.bob(s_b, cert))
}

/// Exhaustively checks that `p` decides EQUALITY on length-`ℓ` inputs.
///
/// Returns `Ok(())` or the first violating instance.
pub fn decides_equality(p: &impl Protocol, l: usize) -> Result<(), (Vec<bool>, Vec<bool>)> {
    for s_a in all_strings(l) {
        for s_b in all_strings(l) {
            let accepted = exists_accepting_certificate(p, &s_a, &s_b).is_some();
            if accepted != (s_a == s_b) {
                return Err((s_a, s_b));
            }
        }
    }
    Ok(())
}

/// The fooling-set attack: if the protocol is *complete* (every equal
/// pair has an accepting certificate) and `m < ℓ`, finds `s ≠ s'` and a
/// certificate accepted on the mixed instance `(s, s')` — breaking
/// soundness. Returns `None` only if completeness itself fails or
/// `m ≥ ℓ` saved the protocol.
pub fn fooling_attack(p: &impl Protocol, l: usize) -> Option<(Vec<bool>, Vec<bool>, Vec<bool>)> {
    use std::collections::HashMap;
    let _span = locert_trace::span!("lb.cc.fooling_attack");
    let mut by_cert: HashMap<Vec<bool>, Vec<bool>> = HashMap::new();
    for s in all_strings(l) {
        if locert_trace::enabled() {
            locert_trace::add("lb.cc.pairs_examined", 1);
        }
        let cert = exists_accepting_certificate(p, &s, &s)?;
        if let Some(prev) = by_cert.get(&cert) {
            // Two distinct strings share an accepting certificate: the
            // mixed instance is accepted iff the players' checks are
            // one-sided — which they are, since Alice only reads (s, cert).
            let (s1, s2) = (prev.clone(), s.clone());
            if p.alice(&s1, &cert) && p.bob(&s2, &cert) {
                return Some((s1, s2, cert));
            }
        } else {
            by_cert.insert(cert, s);
        }
    }
    None
}

/// The honest `ℓ`-bit protocol: the certificate *is* the claimed common
/// string; each player checks it against its own input.
#[derive(Debug, Clone, Copy)]
pub struct CopyProtocol {
    /// Input length `ℓ`.
    pub l: usize,
}

impl Protocol for CopyProtocol {
    fn alice(&self, s_a: &[bool], cert: &[bool]) -> bool {
        s_a == cert
    }

    fn bob(&self, s_b: &[bool], cert: &[bool]) -> bool {
        s_b == cert
    }

    fn certificate_bits(&self) -> usize {
        self.l
    }
}

/// A (necessarily broken) protocol that truncates the certificate to
/// `m < ℓ` bits: each player checks only the prefix.
#[derive(Debug, Clone, Copy)]
pub struct TruncatedProtocol {
    /// Input length `ℓ`.
    pub l: usize,
    /// Certificate length `m < ℓ`.
    pub m: usize,
}

impl Protocol for TruncatedProtocol {
    fn alice(&self, s_a: &[bool], cert: &[bool]) -> bool {
        s_a[..self.m] == *cert
    }

    fn bob(&self, s_b: &[bool], cert: &[bool]) -> bool {
        s_b[..self.m] == *cert
    }

    fn certificate_bits(&self) -> usize {
        self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_protocol_decides_equality() {
        for l in 1..=5 {
            assert_eq!(decides_equality(&CopyProtocol { l }, l), Ok(()));
        }
    }

    #[test]
    fn copy_protocol_resists_fooling() {
        // m = ℓ: one certificate per string, no collision.
        assert!(fooling_attack(&CopyProtocol { l: 4 }, 4).is_none());
    }

    #[test]
    fn truncated_protocol_is_broken_and_fooled() {
        for (l, m) in [(3usize, 2usize), (4, 2), (5, 4)] {
            let p = TruncatedProtocol { l, m };
            // Soundness fails…
            assert!(decides_equality(&p, l).is_err(), "l={l} m={m}");
            // …and the fooling attack exhibits a concrete break.
            let (s1, s2, cert) = fooling_attack(&p, l).expect("collision must exist");
            assert_ne!(s1, s2);
            assert!(p.alice(&s1, &cert) && p.bob(&s2, &cert));
        }
    }

    #[test]
    fn fooling_attack_pigeonhole_threshold() {
        // Any complete protocol with m < ℓ collides — spot-check by
        // shrinking the honest protocol artificially.
        struct Parity;
        impl Protocol for Parity {
            fn alice(&self, s: &[bool], c: &[bool]) -> bool {
                c[0] == (s.iter().filter(|&&b| b).count() % 2 == 1)
            }
            fn bob(&self, s: &[bool], c: &[bool]) -> bool {
                c[0] == (s.iter().filter(|&&b| b).count() % 2 == 1)
            }
            fn certificate_bits(&self) -> usize {
                1
            }
        }
        let got = fooling_attack(&Parity, 3).expect("1 bit cannot decide 3");
        assert_ne!(got.0, got.1);
    }

    #[test]
    fn mixed_instances_rejected_by_copy() {
        let p = CopyProtocol { l: 3 };
        let s_a = vec![true, false, true];
        let s_b = vec![true, true, true];
        assert!(exists_accepting_certificate(&p, &s_a, &s_b).is_none());
        assert!(exists_accepting_certificate(&p, &s_a, &s_a).is_some());
    }
}
