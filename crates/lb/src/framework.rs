//! The Section 7.1 reduction framework.
//!
//! A *gadget family* builds, for every input pair `(s_A, s_B)`, a graph
//! `G(s_A, s_B)` over a vertex set partitioned into
//! `V_A ∪ V_α ∪ V_β ∪ V_B`, such that
//!
//! - the fixed part `E_P` only uses the edge types
//!   `V_A×V_α, V_α×V_α, V_α×V_β, V_β×V_β, V_β×V_B` (Figure 2);
//! - Alice's private edges lie inside `V_A`, Bob's inside `V_B`;
//! - identifiers of `V_α ∪ V_β` are fixed (`1..r`), so both players know
//!   them.
//!
//! `ExtractedProtocol` is Proposition 7.2's simulation: the
//! prover's CC certificate carries `q` bits per `V_α ∪ V_β` vertex;
//! Alice enumerates all `q`-bit labelings of `V_A` and accepts when some
//! labeling satisfies the verifier on all of `V_A ∪ V_α`; Bob
//! symmetrically. Hence a local certification of a property `P` with
//! `P(G(s_A, s_B)) ⇔ s_A = s_B` yields an EQUALITY protocol with
//! `r·q` certificate bits, so `q = Ω(ℓ/r)` (Theorem 7.1).

use crate::cc::Protocol;
use locert_core::bits::{BitWriter, Certificate};
use locert_core::framework::{view_of, Assignment, Instance, Verifier};
use locert_graph::{Graph, IdAssignment, NodeId};

/// The four-way partition of a gadget graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Alice's private vertices.
    pub v_a: Vec<NodeId>,
    /// The Alice-side interface.
    pub v_alpha: Vec<NodeId>,
    /// The Bob-side interface.
    pub v_beta: Vec<NodeId>,
    /// Bob's private vertices.
    pub v_b: Vec<NodeId>,
}

impl Partition {
    /// `r = |V_α ∪ V_β|`.
    pub fn interface_size(&self) -> usize {
        self.v_alpha.len() + self.v_beta.len()
    }

    /// Checks the structural constraints of Figure 2 on a built gadget:
    /// the partition covers every vertex exactly once; no `V_A`–`V_B`,
    /// `V_A`–`V_β`, or `V_α`–`V_B` edges.
    pub fn validates(&self, g: &Graph) -> bool {
        let n = g.num_nodes();
        let mut side = vec![None; n];
        for (tag, set) in [
            (0u8, &self.v_a),
            (1, &self.v_alpha),
            (2, &self.v_beta),
            (3, &self.v_b),
        ] {
            for &v in set {
                if v.0 >= n || side[v.0].is_some() {
                    return false;
                }
                side[v.0] = Some(tag);
            }
        }
        if side.iter().any(Option::is_none) {
            return false;
        }
        g.edges().all(|(u, v)| {
            let (a, b) = (side[u.0].unwrap(), side[v.0].unwrap());
            let (lo, hi) = (a.min(b), a.max(b));
            // Forbidden: 0-2, 0-3, 1-3.
            !matches!((lo, hi), (0, 2) | (0, 3) | (1, 3))
        })
    }
}

/// A family of gadget graphs indexed by input pairs.
pub trait GadgetFamily {
    /// Builds `G(s_A, s_B)` with its partition and identifier assignment
    /// (interface identifiers must not depend on the inputs).
    fn build(&self, s_a: &[bool], s_b: &[bool]) -> (Graph, Partition, IdAssignment);

    /// Input length `ℓ`.
    fn input_bits(&self) -> usize;
}

/// Proposition 7.2: a local verifier + gadget family + per-vertex budget
/// `q` become an EQUALITY protocol with `r·q` certificate bits.
///
/// The players' enumeration over private labelings is exponential in
/// `q · |V_A|`; use tiny parameters.
pub struct ExtractedProtocol<'v, F> {
    verifier: &'v dyn Verifier,
    family: F,
    /// Per-vertex certificate budget `q`.
    pub q: usize,
}

impl<'v, F: GadgetFamily> ExtractedProtocol<'v, F> {
    /// Wraps the pieces.
    pub fn new(verifier: &'v dyn Verifier, family: F, q: usize) -> Self {
        ExtractedProtocol {
            verifier,
            family,
            q,
        }
    }

    /// Splits a flat CC certificate into per-interface-vertex labels (in
    /// `v_alpha ++ v_beta` order).
    fn interface_assignment(&self, part: &Partition, n: usize, cert: &[bool]) -> Assignment {
        let mut asg = Assignment::empty(n);
        for (i, &v) in part.v_alpha.iter().chain(part.v_beta.iter()).enumerate() {
            let mut w = BitWriter::new();
            for j in 0..self.q {
                w.write_bit(cert[i * self.q + j]);
            }
            *asg.cert_mut(v) = w.finish();
        }
        asg
    }

    /// One player's side: enumerate all `q`-bit labelings of `private`,
    /// accept if some labeling makes every vertex of `private ∪
    /// interface_side` accept. (The other side's verdicts are ignored —
    /// their certificates are blank in this simulation, which can only
    /// make them reject; rejection over there is Bob's business.)
    fn side_accepts(
        &self,
        g: &Graph,
        ids: &IdAssignment,
        base: &Assignment,
        private: &[NodeId],
        checked: &[NodeId],
    ) -> bool {
        let q = self.q;
        let options = 1u64 << q;
        let total = options.checked_pow(private.len() as u32);
        assert!(
            total.is_some_and(|t| t <= 1_000_000),
            "simulation space too large; shrink q or the gadget"
        );
        let total = total.expect("guarded above") as usize;
        let inst = Instance::new(g, ids);
        // Enumerate labelings in parallel (mixed-radix index, private
        // vertex 0 as the least-significant digit — the same order the
        // sequential loop used). `par_find_first` stops at the *least*
        // accepting index, so the enumeration count below matches a
        // sequential stop-at-first-success sweep at any worker count.
        let accepting = |mut idx: usize| -> Option<()> {
            let mut asg = base.clone();
            for &v in private {
                let mut w = BitWriter::new();
                w.write(idx as u64 % options, q as u32);
                idx /= options as usize;
                *asg.cert_mut(v) = w.finish();
            }
            checked
                .iter()
                .all(|&v| self.verifier.verify(&view_of(&inst, &asg, v)))
                .then_some(())
        };
        let chunk = (total / (locert_par::global().threads() * 16)).clamp(1, 64);
        let found = locert_par::global().par_find_first(total, chunk, accepting);
        if locert_trace::enabled() {
            let enumerated = found.map_or(total, |(idx, ())| idx + 1);
            locert_trace::add("lb.framework.labelings_enumerated", enumerated as u64);
        }
        found.is_some()
    }
}

impl<'v, F: GadgetFamily> Protocol for ExtractedProtocol<'v, F> {
    fn alice(&self, s_a: &[bool], cert: &[bool]) -> bool {
        // Alice builds the gadget with an *empty* Bob string: she cannot
        // know s_B, and the vertices she checks (V_A ∪ V_α) have no Bob
        // edges in sight.
        let blank = vec![false; self.family.input_bits()];
        let (g, part, ids) = self.family.build(s_a, &blank);
        let base = self.interface_assignment(&part, g.num_nodes(), cert);
        let checked: Vec<NodeId> = part
            .v_a
            .iter()
            .chain(part.v_alpha.iter())
            .copied()
            .collect();
        self.side_accepts(&g, &ids, &base, &part.v_a, &checked)
    }

    fn bob(&self, s_b: &[bool], cert: &[bool]) -> bool {
        let blank = vec![false; self.family.input_bits()];
        let (g, part, ids) = self.family.build(&blank, s_b);
        let base = self.interface_assignment(&part, g.num_nodes(), cert);
        let checked: Vec<NodeId> = part.v_b.iter().chain(part.v_beta.iter()).copied().collect();
        self.side_accepts(&g, &ids, &base, &part.v_b, &checked)
    }

    fn certificate_bits(&self) -> usize {
        // Build any instance to read off r.
        let blank = vec![false; self.family.input_bits()];
        let (_, part, _) = self.family.build(&blank, &blank);
        part.interface_size() * self.q
    }
}

/// Glues a full certificate assignment out of Alice's and Bob's accepting
/// labelings plus the shared interface labels — the converse direction of
/// Proposition 7.2's Claim 3 (used in tests).
pub fn merge_assignments(n: usize, parts: &[(Vec<NodeId>, Assignment)]) -> Assignment {
    let mut merged = Assignment::empty(n);
    for (vertices, asg) in parts {
        for &v in vertices {
            *merged.cert_mut(v) = asg.cert(v).clone();
        }
    }
    merged
}

/// A certificate for external use in tests.
pub type InterfaceCert = Certificate;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{decides_equality, exists_accepting_certificate};
    use locert_core::framework::{LocalView, RejectReason};
    use locert_graph::{GraphBuilder, Ident};

    /// Toy family: V_A = {a}, V_α = {α}, V_β = {β}, V_B = {b} on a path
    /// a–α–β–b; Alice attaches a pendant leaf to `a` iff her single input
    /// bit is 1 — wait, private edges must stay within V_A, so V_A has
    /// two vertices and the bit toggles the edge between them.
    struct ToyFamily;

    impl GadgetFamily for ToyFamily {
        fn build(&self, s_a: &[bool], s_b: &[bool]) -> (Graph, Partition, IdAssignment) {
            // Vertices: 0,1 = V_A; 2 = α; 3 = β; 4,5 = V_B.
            let mut b = GraphBuilder::new(6);
            b.add_edge(0, 2).unwrap();
            b.add_edge(2, 3).unwrap();
            b.add_edge(3, 4).unwrap();
            if s_a[0] {
                b.add_edge(0, 1).unwrap();
            }
            if s_b[0] {
                b.add_edge(4, 5).unwrap();
            }
            // Keep the graph connected regardless: 1 and 5 hang off their
            // side's first vertex.
            b.add_edge(0, 1).ok();
            b.add_edge(4, 5).ok();
            let part = Partition {
                v_a: vec![NodeId(0), NodeId(1)],
                v_alpha: vec![NodeId(2)],
                v_beta: vec![NodeId(3)],
                v_b: vec![NodeId(4), NodeId(5)],
            };
            // Interface ids 1..=2 first, privates after.
            let ids = IdAssignment::new(vec![
                Ident(3),
                Ident(4),
                Ident(1),
                Ident(2),
                Ident(5),
                Ident(6),
            ])
            .unwrap();
            (b.build(), part, ids)
        }

        fn input_bits(&self) -> usize {
            1
        }
    }

    #[test]
    fn toy_partition_validates() {
        let (g, part, _) = ToyFamily.build(&[true], &[false]);
        assert!(part.validates(&g));
    }

    #[test]
    fn partition_rejects_cross_edges() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 3).unwrap(); // V_A – V_B: forbidden.
        let g = b.build();
        let part = Partition {
            v_a: vec![NodeId(0)],
            v_alpha: vec![NodeId(1)],
            v_beta: vec![NodeId(2)],
            v_b: vec![NodeId(3)],
        };
        assert!(!part.validates(&g));
    }

    #[test]
    fn partition_rejects_non_cover() {
        let g = Graph::empty(3);
        let part = Partition {
            v_a: vec![NodeId(0)],
            v_alpha: vec![NodeId(1)],
            v_beta: vec![NodeId(1)],
            v_b: vec![NodeId(2)],
        };
        assert!(!part.validates(&g));
    }

    /// A toy verifier for "degree parity at interface matches label":
    /// each vertex accepts iff its 1-bit certificate equals (degree mod
    /// 2). On the toy family this certifies s_A = s_B = 1 ↔ … — more to
    /// the point, it exercises the simulation plumbing end-to-end.
    struct DegreeParityVerifier;

    impl Verifier for DegreeParityVerifier {
        fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
            if view.cert.len_bits() == 1 && view.cert.bit(0) == (view.degree() % 2 == 1) {
                Ok(())
            } else {
                Err(RejectReason::PropertyViolation)
            }
        }
    }

    #[test]
    fn extracted_protocol_runs_both_sides() {
        let p = ExtractedProtocol::new(&DegreeParityVerifier, ToyFamily, 1);
        assert_eq!(p.certificate_bits(), 2);
        // The interface degrees are fixed (α and β both have degree 2),
        // so the certificate (0, 0) satisfies both interface vertices,
        // and each side can always label its privates with their parity.
        let cert = vec![false, false];
        assert!(p.alice(&[true], &cert));
        assert!(p.alice(&[false], &cert));
        assert!(p.bob(&[true], &cert));
        // A wrong label at α breaks Alice (who checks V_A ∪ V_α) but not
        // Bob, and symmetrically for β.
        let bad_alpha = vec![true, false];
        assert!(!p.alice(&[true], &bad_alpha));
        assert!(p.bob(&[false], &bad_alpha));
        let bad_beta = vec![false, true];
        assert!(p.alice(&[true], &bad_beta));
        assert!(!p.bob(&[false], &bad_beta));
    }

    /// End-to-end Proposition 7.2 on a *correct* toy certification: the
    /// property "s_A = s_B" on the toy family is certified by giving
    /// every vertex the shared bit; the verifier checks its bit equals
    /// the degree parity of vertex 1 — no wait, locality. Instead: each
    /// vertex stores the claimed shared bit; endpoints of the private
    /// pendant edge check it against their actual degree where the bit
    /// is visible (vertex 1 has degree 1 always — the toy family keeps
    /// the pendant edge in both cases, so EQUALITY is *not* decided by
    /// this family; the real instantiations live in the sibling
    /// modules). Here we simply confirm the extracted protocol is
    /// *complete* for a trivially-accepting verifier.
    struct AcceptAll;

    impl Verifier for AcceptAll {
        fn decide(&self, _view: &LocalView<'_>) -> Result<(), RejectReason> {
            Ok(())
        }
    }

    #[test]
    fn accept_all_verifier_gives_total_protocol() {
        let p = ExtractedProtocol::new(&AcceptAll, ToyFamily, 1);
        for s_a in [[false], [true]] {
            for s_b in [[false], [true]] {
                assert!(exists_accepting_certificate(&p, &s_a, &s_b).is_some());
            }
        }
        // And consequently it does NOT decide equality (as expected for a
        // verifier with no checks).
        assert!(decides_equality(&p, 1).is_err());
    }
}
