//! Theorem 2.3: fixed-point-free automorphism needs `Ω̃(n)` bits, even on
//! bounded-depth trees.
//!
//! The gadget (Appendix E.2): `V_α = {α}`, `V_β = {β}`, a path
//! `a – α – β – b`, Alice hangs the tree `t(s_A)` rooted at `a`, Bob the
//! tree `t(s_B)` rooted at `b`, where `t` is an injection from bit
//! strings to non-isomorphic rooted trees of bounded depth. The whole
//! graph is a tree of bounded depth, and it has a fixed-point-free
//! automorphism **iff** the two hanging trees are isomorphic **iff**
//! `s_A = s_B`.
//!
//! Injections provided by `locert-graph`: the depth-2 partition encoding
//! (any scale, `n = Θ(ℓ²)`, matching the paper's `Ω(√n)` remark for
//! depth 2) and the rank-based encoding over all bounded-depth trees
//! (optimal rate, small `n`), whose counting behavior reproduces the
//! Pach et al. `2^{Θ(n / log log n)}` growth \[42].

use crate::framework::{GadgetFamily, Partition};
use locert_graph::enumerate::{parent_vec_to_rooted, string_to_tree_depth2};
use locert_graph::{automorphism, Graph, GraphBuilder, IdAssignment, Ident, NodeId, RootedTree};

/// Builds the Theorem 2.3 gadget from two rooted trees (as parent
/// arrays): `a – α – β – b` with the trees hanging at `a` and `b`.
///
/// Returns the graph and partition; vertex layout: `α = 0`, `β = 1`,
/// Alice's tree occupies `2 .. 2 + |A|` (its root is `a = 2`), Bob's tree
/// the rest.
pub fn build_gadget(tree_a: &RootedTree, tree_b: &RootedTree) -> (Graph, Partition) {
    let na = tree_a.num_nodes();
    let nb = tree_b.num_nodes();
    let mut b = GraphBuilder::new(2 + na + nb);
    b.add_edge(0, 1).expect("valid"); // α – β
    let a_off = 2;
    let b_off = 2 + na;
    b.add_edge(0, a_off + tree_a.root().0).expect("valid"); // α – a
    b.add_edge(1, b_off + tree_b.root().0).expect("valid"); // β – b
    for v in 0..na {
        if let Some(p) = tree_a.parent(NodeId(v)) {
            b.add_edge(a_off + v, a_off + p.0).expect("valid");
        }
    }
    for v in 0..nb {
        if let Some(p) = tree_b.parent(NodeId(v)) {
            b.add_edge(b_off + v, b_off + p.0).expect("valid");
        }
    }
    let part = Partition {
        v_a: (a_off..a_off + na).map(NodeId).collect(),
        v_alpha: vec![NodeId(0)],
        v_beta: vec![NodeId(1)],
        v_b: (b_off..b_off + nb).map(NodeId).collect(),
    };
    (b.build(), part)
}

/// The gadget family over the depth-2 injection, for strings of length
/// `ℓ`.
#[derive(Debug, Clone, Copy)]
pub struct AutomorphismFamily {
    /// Input length `ℓ`.
    pub l: usize,
}

impl AutomorphismFamily {
    /// The tree encoding a string.
    pub fn tree_for(s: &[bool]) -> RootedTree {
        parent_vec_to_rooted(&string_to_tree_depth2(s))
    }
}

impl GadgetFamily for AutomorphismFamily {
    fn build(&self, s_a: &[bool], s_b: &[bool]) -> (Graph, Partition, IdAssignment) {
        assert_eq!(s_a.len(), self.l);
        assert_eq!(s_b.len(), self.l);
        let ta = Self::tree_for(s_a);
        let tb = Self::tree_for(s_b);
        let (g, part) = build_gadget(&ta, &tb);
        // Interface ids 1..=2, privates arbitrary after.
        let ids = IdAssignment::new((0..g.num_nodes() as u64).map(|v| Ident(v + 1)).collect())
            .expect("distinct");
        (g, part, ids)
    }

    fn input_bits(&self) -> usize {
        self.l
    }
}

/// The Theorem 2.3 dichotomy: the gadget has a fixed-point-free
/// automorphism iff the strings are equal.
pub fn gadget_has_fpf(s_a: &[bool], s_b: &[bool]) -> bool {
    let ta = AutomorphismFamily::tree_for(s_a);
    let tb = AutomorphismFamily::tree_for(s_b);
    let (g, _) = build_gadget(&ta, &tb);
    automorphism::tree_has_fpf_automorphism(&g).expect("gadget is a tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::all_strings;
    use locert_graph::traversal;

    #[test]
    fn gadget_is_bounded_depth_tree() {
        let s: Vec<bool> = vec![true, false, true];
        let ta = AutomorphismFamily::tree_for(&s);
        let (g, part) = build_gadget(&ta, &ta);
        assert!(g.is_tree());
        assert!(part.validates(&g));
        // Depth from the α–β edge: 1 (root edge) + 1 + 2 (tree depth) = 4.
        let ecc = traversal::eccentricity(&g, NodeId(0)).unwrap();
        assert!(ecc <= 4);
    }

    #[test]
    fn dichotomy_exhaustive_small() {
        for l in [1usize, 3] {
            for s_a in all_strings(l) {
                for s_b in all_strings(l) {
                    assert_eq!(
                        gadget_has_fpf(&s_a, &s_b),
                        s_a == s_b,
                        "l={l}, s_a={s_a:?}, s_b={s_b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn gadget_size_quadratic_in_l() {
        // The depth-2 injection costs Θ(ℓ²) vertices — this is the √n
        // regime of the paper's final remark.
        let l = 10;
        let s = vec![true; l];
        let t = AutomorphismFamily::tree_for(&s);
        let n = t.num_nodes();
        assert!(n >= l * l && n <= 3 * l * l + 2 * l + 1, "n = {n}");
    }

    #[test]
    fn family_builds_with_fixed_interface_ids() {
        let fam = AutomorphismFamily { l: 2 };
        let (g, part, ids) = fam.build(&[true, false], &[false, false]);
        assert!(part.validates(&g));
        assert_eq!(ids.ident(part.v_alpha[0]), Ident(1));
        assert_eq!(ids.ident(part.v_beta[0]), Ident(2));
    }
}
