//! End-to-end determinism gate for `netstorm`: a same-seed campaign
//! must produce a byte-identical journal, a byte-identical
//! deterministic metrics section, and byte-identical stdout rows at any
//! worker count. This is the same contract `experiments` honours (see
//! `crates/bench/tests/par_determinism.rs`), extended to the network
//! simulator: event timing, fault dice, retransmissions, and verdicts
//! may not depend on scheduling.

use std::path::{Path, PathBuf};
use std::process::Command;

struct RunArtifacts {
    journal: String,
    metrics: String,
    stdout: String,
}

fn run_netstorm(threads: usize, dir: &Path) -> RunArtifacts {
    let out = dir.join(format!("t{threads}"));
    let output = Command::new(env!("CARGO_BIN_EXE_netstorm"))
        .args(["--quick", "--seed", "7", "--out"])
        .arg(&out)
        .env("LOCERT_THREADS", threads.to_string())
        .output()
        .expect("spawn netstorm binary");
    assert!(
        output.status.success(),
        "netstorm failed at {threads} threads: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let read = |p: &PathBuf| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{p:?}: {e}"));
    // Drop the one line naming the (per-thread-count) output directory;
    // every other stdout line is campaign data and must be identical.
    let stdout = String::from_utf8(output.stdout)
        .expect("utf-8 stdout")
        .lines()
        .filter(|l| !l.starts_with("artifacts written to"))
        .fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
    RunArtifacts {
        journal: read(&out.join("net-journal.jsonl")),
        metrics: read(&out.join("net-metrics.json")),
        stdout,
    }
}

/// Strips the run-varying `timings` section, keeping the deterministic
/// half — the projection `trace-check --compare` diffs.
fn deterministic_section(metrics: &str) -> String {
    let start = metrics
        .find("\"experiments\"")
        .expect("metrics has an experiments section");
    let end = metrics.find("\"timings\"").expect("metrics has timings");
    metrics[start..end].to_string()
}

#[test]
fn same_seed_campaigns_are_byte_identical_at_one_and_four_threads() {
    let dir = std::env::temp_dir().join(format!("locert_netstorm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let one = run_netstorm(1, &dir);
    let four = run_netstorm(4, &dir);

    assert!(!one.journal.is_empty(), "journal is empty");
    assert_eq!(
        one.journal, four.journal,
        "netstorm journal diverged between 1 and 4 threads"
    );
    assert_eq!(
        deterministic_section(&one.metrics),
        deterministic_section(&four.metrics),
        "deterministic metrics section diverged between 1 and 4 threads"
    );
    assert_eq!(
        one.stdout, four.stdout,
        "campaign rows diverged between 1 and 4 threads"
    );
    // The journal carries the new network event types end to end.
    for kind in ["net-send", "net-verdict"] {
        assert!(
            one.journal.contains(kind),
            "journal is missing {kind} events"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
