//! Ledger-tiling oracle: for every catalogue scheme and every graph of
//! the oracle family, an honest prover run under a bit-ledger capture
//! produces certificates whose component spans tile **exactly** — every
//! bit attributed to a named component, span boundaries contiguous from
//! 0 to the certificate length, and the ledger's size view agreeing
//! with the assignment's.
//!
//! This is the invariant the bound-conformance gate (`boundcheck`)
//! leans on: per-component size curves are only meaningful if no bits
//! escape attribution.

use locert_core::framework::Instance;
use locert_graph::IdAssignment;
use locert_net::catalogue::catalogue;
use locert_oracle::harness;
use locert_trace::ledger;
use proptest::prelude::*;

/// One tiling pass over (scheme, family graph) pairs whose prover
/// accepts. Returns how many ledgers were checked.
fn tiling(seed: u64) -> usize {
    let targets = catalogue(8);
    let graphs = harness::family(true, seed);
    let mut checked = 0;
    for graph in &graphs {
        let n = graph.num_nodes();
        if n == 0 {
            continue;
        }
        let ids = IdAssignment::contiguous(n);
        let zeros = vec![0usize; n];
        for target in &targets {
            let instance = match &target.inputs {
                Some(_) => Instance::with_inputs(graph, &ids, &zeros),
                None => Instance::new(graph, &ids),
            };
            let (result, led) = ledger::capture(|| target.scheme.assign(&instance));
            // Out-of-domain graphs and no-instances are refused; the
            // tiling claim is only about honest assignments.
            let Ok(asg) = result else {
                continue;
            };
            checked += 1;
            assert!(
                led.fully_attributed(),
                "{}: unattributed bits on {graph:?}",
                target.name
            );
            assert_eq!(
                led.max_bits(),
                asg.max_bits(),
                "{}: ledger size view diverged on {graph:?}",
                target.name
            );
            let finals = led.final_certs();
            assert_eq!(
                finals.len(),
                n,
                "{}: {} of {n} vertices recorded on {graph:?}",
                target.name,
                finals.len()
            );
            for (v, cert) in finals {
                assert!(
                    cert.is_tiled(),
                    "{}: vertex {v} spans do not tile on {graph:?}",
                    target.name
                );
                let span_total: usize = cert.spans.iter().map(|s| s.len).sum();
                assert_eq!(
                    span_total,
                    asg.cert(locert_graph::NodeId(v)).len_bits(),
                    "{}: vertex {v} span total != certificate length on {graph:?}",
                    target.name
                );
            }
        }
    }
    checked
}

/// One arena-tiling pass over the same (scheme, family graph) pairs:
/// every honest assignment must be arena-backed — each certificate a
/// view into one shared buffer — and the views must tile that buffer
/// exactly, in vertex order, with no gaps, overlaps, or stray owned
/// certificates. Returns how many assignments were checked.
fn arena_tiling(seed: u64) -> usize {
    let targets = catalogue(8);
    let graphs = harness::family(true, seed);
    let mut checked = 0;
    for graph in &graphs {
        let n = graph.num_nodes();
        if n == 0 {
            continue;
        }
        let ids = IdAssignment::contiguous(n);
        let zeros = vec![0usize; n];
        for target in &targets {
            let instance = match &target.inputs {
                Some(_) => Instance::with_inputs(graph, &ids, &zeros),
                None => Instance::new(graph, &ids),
            };
            let Ok(asg) = target.scheme.assign(&instance) else {
                continue;
            };
            checked += 1;
            let mut expect_off = 0usize;
            for v in 0..n {
                let cert = asg.cert(locert_graph::NodeId(v));
                assert!(
                    cert.is_view(),
                    "{}: vertex {v} certificate not arena-backed on {graph:?}",
                    target.name
                );
                let (off, len) = cert.view_range().unwrap();
                assert_eq!(
                    off, expect_off,
                    "{}: vertex {v} view leaves a gap/overlap on {graph:?}",
                    target.name
                );
                assert_eq!(
                    len,
                    cert.as_bytes().len(),
                    "{}: vertex {v} view length diverged on {graph:?}",
                    target.name
                );
                assert_eq!(
                    len,
                    cert.len_bits().div_ceil(8),
                    "{}: vertex {v} byte length vs bit length on {graph:?}",
                    target.name
                );
                expect_off += len;
            }
        }
    }
    checked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The seed steers the random half of the oracle graph family.
    #[test]
    fn honest_prover_ledgers_tile_exactly(seed in 0u64..1 << 16) {
        let checked = tiling(seed);
        // The exhaustive half of the family alone yields hundreds of
        // provable pairs; a tiny count means the harness went wrong.
        prop_assert!(checked > 100, "only {checked} ledgers checked");
    }

    /// Certificate views tile the assignment arena exactly, mirroring
    /// the bit-level tiling the ledger asserts above.
    #[test]
    fn honest_assignments_tile_their_arena(seed in 0u64..1 << 16) {
        let checked = arena_tiling(seed);
        prop_assert!(checked > 100, "only {checked} assignments checked");
    }
}
