//! Lockstep oracle: under a zero-fault network plan the simulator is
//! semantically transparent — for every catalogue scheme and every
//! graph of the oracle family, each vertex's verdict equals the
//! synchronous [`locert_core::run_verification`] verdict, and no vertex
//! is inconclusive.
//!
//! This is the property that makes the fault campaigns meaningful: any
//! rejection or inconclusive the grid observes is attributable to the
//! injected faults, not to the transport itself.

use locert_core::framework::{run_verification, Instance};
use locert_graph::IdAssignment;
use locert_net::catalogue::catalogue;
use locert_net::sim::{run_network, NetFaultPlan, RetryPolicy};
use locert_oracle::harness;
use proptest::prelude::*;

/// One lockstep pass: every (scheme, family graph) pair whose prover
/// accepts the instance. Returns how many pairs were actually compared.
fn lockstep(seed: u64) -> usize {
    let targets = catalogue(8);
    let graphs = harness::family(true, seed);
    let mut compared = 0;
    for graph in &graphs {
        let n = graph.num_nodes();
        if n == 0 {
            continue;
        }
        let ids = IdAssignment::contiguous(n);
        // Input-reading schemes get the all-zeros word; everything else
        // reads no inputs.
        let zeros = vec![0usize; n];
        for target in &targets {
            let instance = match &target.inputs {
                Some(_) => Instance::with_inputs(graph, &ids, &zeros),
                None => Instance::new(graph, &ids),
            };
            // The family contains graphs outside each scheme's domain
            // (and no-instances); the prover refusing is fine — the
            // lockstep claim is only about honest assignments.
            let Ok(honest) = target.scheme.assign(&instance) else {
                continue;
            };
            let reference = run_verification(target.scheme.as_ref(), &instance, &honest);
            let outcome = run_network(
                target.scheme.as_ref(),
                &instance,
                &honest,
                &NetFaultPlan::new(seed),
                &RetryPolicy::default(),
                1 << 12,
            );
            compared += 1;
            assert!(!outcome.budget_expired, "{}: budget expired", target.name);
            for v in 0..n {
                let net = &outcome.verdicts[v];
                assert!(
                    !net.is_inconclusive(),
                    "{}: vertex {v} inconclusive under zero faults",
                    target.name
                );
                assert_eq!(
                    net.is_accepted(),
                    reference.verdicts()[v].accepted,
                    "{}: vertex {v} diverged from run_verification on {graph:?}",
                    target.name
                );
            }
        }
    }
    compared
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The seed steers both the random half of the graph family and the
    /// simulator's (unused, under zero faults) fault dice.
    #[test]
    fn zero_fault_simulation_matches_run_verification(seed in 0u64..1 << 16) {
        let compared = lockstep(seed);
        // The exhaustive half of the family alone yields hundreds of
        // provable pairs; a tiny count means the harness went wrong.
        prop_assert!(compared > 100, "only {compared} pairs compared");
    }
}
