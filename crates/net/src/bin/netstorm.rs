//! netstorm — the network fault-grid campaign CLI.
//!
//! ```text
//! netstorm [--seed N] [--quick] [--threads N] [--runs N] [--size N]
//!          [--journal-capacity N] [--out DIR] [--list]
//! ```
//!
//! Drives every catalogued (scheme, yes-instance) target through the
//! fault grid — packet loss, duplication, delay, transit corruption,
//! stored-certificate corruption, crash-restart, healing partitions —
//! and prints one row per (target, point): detection rate over effective
//! runs, false-reject and false-inconclusive tallies, mean time to
//! detection, and transport cost. Exits 0 when the acceptance grid
//! holds (benign points never reject, corrupting points always detect,
//! reliable points always complete), 1 on any violation, 2 on usage
//! errors.
//!
//! Output is deterministic for a fixed seed at any thread count — the
//! simulator has no wall clock and the journal is flushed in task
//! order — so CI byte-compares `--out` artifacts at `LOCERT_THREADS=1`
//! and `4`. With `--out DIR` the run writes the replayable
//! `net-journal.jsonl` and a `locert-trace/v2` `net-metrics.json` whose
//! deterministic section `trace-check --compare` can diff.

use locert_net::campaign::{fault_grid, run_net_campaign, CampaignConfig};
use locert_net::catalogue::catalogue;
use locert_trace::journal;
use locert_trace::json::Value;
use std::process::ExitCode;

const USAGE: &str = "\
usage: netstorm [--seed N] [--quick] [--threads N] [--runs N] [--size N]
                [--journal-capacity N] [--out DIR] [--list]

Seeded, deterministic message-passing simulation of every catalogued
certification scheme under a grid of network faults: loss, duplication,
reordering delay, in-transit and stored-certificate corruption,
crash-restart with certificate loss, and healing partitions.

  --seed N     base RNG seed; every run derives its own (default 1)
  --quick      2 runs per point on ~8-vertex instances (CI smoke mode)
  --threads N  worker threads (also honours LOCERT_THREADS; must be >= 1)
  --runs N     seeded runs per (target, point) cell
  --size N     approximate instance size in vertices (>= 7)
  --journal-capacity N
               journal ring-buffer capacity in events (default 1048576);
               overflow evicts oldest-first, counted in
               journal.dropped_events and net-metrics.json's journal
               section
  --out DIR    write net-journal.jsonl and net-metrics.json
  --list       print the target catalogue and fault grid, then exit";

fn fail(msg: &str) -> ExitCode {
    eprintln!("netstorm: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// A zero worker count (flag or environment) exits 1 rather than
/// constructing a zero-worker pool (matches `experiments`).
fn fail_zero_threads(source: &str) -> ! {
    eprintln!("netstorm: {source}: thread count must be at least 1");
    eprintln!("{USAGE}");
    std::process::exit(1);
}

struct Args {
    seed: u64,
    quick: bool,
    runs: Option<usize>,
    size: Option<usize>,
    journal_capacity: usize,
    out: Option<std::path::PathBuf>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        quick: false,
        runs: None,
        size: None,
        journal_capacity: 1 << 20,
        out: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if n == 0 {
                    fail_zero_threads("--threads 0");
                }
                if !locert_par::configure_threads(n) {
                    return Err("--threads must come before any parallel work".into());
                }
            }
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad run count {v:?}"))?;
                if n == 0 {
                    return Err("--runs must be at least 1".into());
                }
                args.runs = Some(n);
            }
            "--size" => {
                let v = it.next().ok_or("--size needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad size {v:?}"))?;
                if n < 7 {
                    return Err("--size must be at least 7".into());
                }
                args.size = Some(n);
            }
            "--journal-capacity" => {
                let v = it.next().ok_or("--journal-capacity needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad capacity {v:?}"))?;
                if n == 0 {
                    return Err("--journal-capacity must be at least 1".into());
                }
                args.journal_capacity = n;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                args.out = Some(v.into());
            }
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Serializes the run's telemetry as a single-section `locert-trace/v2`
/// document so `trace-check --compare` can diff the deterministic half
/// against a second run. The `journal` section records the ring
/// configuration and outcome of the journal written next to it.
fn metrics_json(
    quick: bool,
    wall_s: f64,
    snap: &locert_trace::Snapshot,
    journal_snap: &journal::JournalSnapshot,
) -> String {
    let (deterministic, timing) = locert_trace::export::split_deterministic(snap);
    let doc = Value::obj([
        ("schema".to_string(), Value::from("locert-trace/v2")),
        ("quick".to_string(), Value::Bool(quick)),
        (
            "experiments".to_string(),
            Value::Arr(vec![Value::obj([
                ("id".to_string(), Value::from("s4")),
                (
                    "telemetry".to_string(),
                    locert_trace::export::snapshot_to_json(&deterministic),
                ),
            ])]),
        ),
        (
            "timings".to_string(),
            Value::Arr(vec![Value::obj([
                ("id".to_string(), Value::from("s4")),
                ("wall_s".to_string(), Value::Num(wall_s)),
                (
                    "telemetry".to_string(),
                    locert_trace::export::snapshot_to_json(&timing),
                ),
            ])]),
        ),
        (
            "journal".to_string(),
            Value::obj([
                (
                    "capacity".to_string(),
                    Value::from(journal::capacity() as u64),
                ),
                ("dropped".to_string(), Value::from(journal_snap.dropped)),
                (
                    "entries".to_string(),
                    Value::from(journal_snap.entries.len() as u64),
                ),
            ]),
        ),
    ]);
    format!("{doc}\n")
}

fn write_artifacts(dir: &std::path::Path, quick: bool, wall_s: f64) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let journal_snap = journal::snapshot();
    let journal_path = dir.join("net-journal.jsonl");
    // Streamed one line at a time: a full 2^20-event ring serializes
    // without a second in-memory copy.
    let stream = || -> std::io::Result<()> {
        let file = std::fs::File::create(&journal_path)?;
        let mut out = std::io::BufWriter::new(file);
        journal::write_jsonl(&journal_snap, &mut out)?;
        std::io::Write::flush(&mut out)
    };
    stream().map_err(|e| format!("cannot write {}: {e}", journal_path.display()))?;
    let metrics_path = dir.join("net-metrics.json");
    std::fs::write(
        &metrics_path,
        metrics_json(quick, wall_s, &locert_trace::snapshot(), &journal_snap),
    )
    .map_err(|e| format!("cannot write {}: {e}", metrics_path.display()))?;
    Ok(())
}

fn main() -> ExitCode {
    if std::env::var("LOCERT_THREADS").is_ok_and(|v| v.trim().parse::<usize>() == Ok(0)) {
        fail_zero_threads("LOCERT_THREADS=0");
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    if args.list {
        for target in catalogue(args.size.unwrap_or(12)) {
            println!(
                "target {:<22} {:>3} vertices",
                target.name,
                target.graph.num_nodes()
            );
        }
        for point in fault_grid() {
            let class = if point.corrupting {
                "corrupting"
            } else if point.benign {
                "benign"
            } else {
                "measured"
            };
            println!("point  {:<22} [{class}]", point.name);
        }
        return ExitCode::SUCCESS;
    }
    journal::set_capacity(args.journal_capacity);
    journal::enable();
    locert_trace::enable();
    let mut cfg = if args.quick {
        CampaignConfig::quick(args.seed)
    } else {
        CampaignConfig::new(args.seed)
    };
    if let Some(runs) = args.runs {
        cfg.runs_per_point = runs;
    }
    if let Some(size) = args.size {
        cfg.target_size = size;
    }
    println!(
        "netstorm: {} targets x {} fault points x {} runs (seed {}, ~{} vertices)",
        catalogue(cfg.target_size).len(),
        fault_grid().len(),
        cfg.runs_per_point,
        cfg.seed,
        cfg.target_size
    );
    let start = std::time::Instant::now();
    let rows = run_net_campaign(&cfg);
    let wall_s = start.elapsed().as_secs_f64();
    let mut violations = 0usize;
    for row in &rows {
        let ttd = row
            .mean_detection_time()
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<22} {:<20} runs {:>3}  effective {:>3}  detected {:>3}  inconclusive {:>3}  \
             msgs/run {:>7.1}  retries/run {:>6.1}  mean-ttd {ttd}",
            row.scheme,
            row.point,
            row.runs,
            row.effective,
            row.detected,
            row.inconclusive,
            row.mean_messages(),
            row.mean_retries(),
        );
        if row.benign && row.detected > 0 {
            violations += 1;
            println!(
                "VIOLATION {}/{}: false reject on a yes-instance under a benign fault",
                row.scheme, row.point
            );
        }
        if row.corrupting && row.detected < row.effective {
            violations += 1;
            println!(
                "VIOLATION {}/{}: detection rate {:.2} ({} of {} effective runs)",
                row.scheme,
                row.point,
                row.detection_rate(),
                row.detected,
                row.effective
            );
        }
        if row.expect_complete && row.inconclusive > 0 {
            violations += 1;
            println!(
                "VIOLATION {}/{}: false inconclusive under reliable delivery",
                row.scheme, row.point
            );
        }
    }
    if let Some(dir) = &args.out {
        if let Err(e) = write_artifacts(dir, args.quick, wall_s) {
            return fail(&e);
        }
        println!("artifacts written to {}", dir.display());
    }
    if violations == 0 {
        println!("netstorm: clean ({} rows)", rows.len());
        ExitCode::SUCCESS
    } else {
        println!("netstorm: {violations} violation(s)");
        ExitCode::FAILURE
    }
}
