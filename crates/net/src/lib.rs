//! Message-passing network simulation for local certification.
//!
//! The paper's model (Section 3.3, Appendix A.1) is a distributed
//! network: every vertex holds its own identifier and certificate and
//! learns its neighbors' only through message exchange. The rest of the
//! workspace evaluates that model through the synchronous, perfectly
//! reliable [`locert_core::run_verification`] loop; this crate replaces
//! the transport with a seeded, deterministic discrete-event simulator
//! in which `(id, certificate)` frames are dropped, duplicated,
//! reordered, delayed, corrupted in transit, or lost wholesale to node
//! crashes — the transient-fault regime proof-labeling schemes were
//! designed for.
//!
//! Layering:
//!
//! - [`sim`] — the event-driven simulator: deterministic `(time, seq)`
//!   priority queue, per-link fault plans composable with
//!   [`locert_core::faults`], per-neighbor retransmit with exponential
//!   backoff and seeded jitter, and typed degradation to
//!   [`sim::Verdict::Inconclusive`] when a neighborhood never completes.
//! - [`catalogue`] — sixteen (scheme, yes-instance) targets spanning
//!   every scheme family in the workspace.
//! - [`campaign`] — the `netstorm` fault-grid sweep: detection rate,
//!   time-to-verdict, and false-inconclusive rate per fault point,
//!   parallelized over seeds with a journal byte-identical at any
//!   `locert-par` width.

pub mod campaign;
pub mod catalogue;
pub mod sim;

pub use campaign::{fault_grid, run_net_campaign, CampaignConfig, CampaignRow, GridPoint};
pub use catalogue::{catalogue, NetTarget};
pub use sim::{
    run_network, CrashSchedule, LinkFaults, NetFaultPlan, NetOutcome, NodeStats, Partition,
    RetryPolicy, SimTime, Verdict,
};
