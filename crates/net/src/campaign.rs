//! The `netstorm` fault-grid campaign.
//!
//! Every catalogue target is driven through a grid of network fault
//! points — packet loss at three rates, duplication, reordering delay,
//! in-transit corruption, initial-certificate corruption (composed from
//! [`locert_core::faults`]), crash-restart with certificate loss, and a
//! healing partition — measuring per (target, point): detection rate
//! over effective runs, false rejects and false inconclusives on the
//! yes-instance, time to detection, and transport cost.
//!
//! Runs are parallelized over `locert-par` like
//! [`locert_core::faults::run_campaign`]: each run captures its journal
//! events locally and the flush appends them in run order, so the
//! journal and every aggregate are byte-identical at any worker count.
//!
//! A note on what "corrupting" promises: faults that corrupt *stored*
//! certificates (bit flip, zeroing, crash loss) are visible to every
//! neighbor and the owner itself, and the grid asserts they are always
//! detected. Per-link *transit* corruption is weaker — a flipped field
//! can be locally consistent at the one vertex that sees it (e.g. a
//! distance off by two parsing as the other legal neighbor distance) —
//! so its detection rate is measured, not asserted.

use crate::catalogue::{catalogue, NetTarget};
use crate::sim::{
    run_network, CrashSchedule, LinkFaults, NetFaultPlan, NetOutcome, Partition, RetryPolicy,
    SimTime, Verdict,
};
use locert_core::faults::{FaultModel, FaultPlan};
use locert_core::framework::{Assignment, Instance};
use locert_graph::{Graph, IdAssignment, NodeId};
use locert_trace::journal::{self, Event};

#[derive(Debug, Clone, Copy, PartialEq)]
enum PointKind {
    Baseline,
    Drop(f64),
    Duplicate(f64),
    Delay(SimTime),
    TransitCorrupt(f64),
    CertFault(FaultModel),
    CrashRestart,
    PartitionHeal,
}

/// One point of the fault grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Stable point name (tables and journals key on it).
    pub name: &'static str,
    /// Whether every effective run is required to be detected
    /// (certificate-corrupting faults).
    pub corrupting: bool,
    /// Whether the fault never corrupts any observable state, so a
    /// rejection on a yes-instance is a soundness bug in the transport
    /// (loss, duplication, delay, and partitions qualify; transit
    /// corruption does not).
    pub benign: bool,
    /// Whether the fault cannot permanently sever a link, so every view
    /// must complete: an inconclusive verdict here is a policy bug.
    pub expect_complete: bool,
    kind: PointKind,
}

/// The netstorm fault grid, in stable order.
pub fn fault_grid() -> Vec<GridPoint> {
    vec![
        GridPoint {
            name: "baseline",
            corrupting: false,
            benign: true,
            expect_complete: true,
            kind: PointKind::Baseline,
        },
        GridPoint {
            name: "drop-0.1",
            corrupting: false,
            benign: true,
            expect_complete: false,
            kind: PointKind::Drop(0.1),
        },
        GridPoint {
            name: "drop-0.3",
            corrupting: false,
            benign: true,
            expect_complete: false,
            kind: PointKind::Drop(0.3),
        },
        GridPoint {
            name: "drop-0.5",
            corrupting: false,
            benign: true,
            expect_complete: false,
            kind: PointKind::Drop(0.5),
        },
        GridPoint {
            name: "dup-0.3",
            corrupting: false,
            benign: true,
            expect_complete: true,
            kind: PointKind::Duplicate(0.3),
        },
        GridPoint {
            name: "delay-8",
            corrupting: false,
            benign: true,
            expect_complete: true,
            kind: PointKind::Delay(8),
        },
        GridPoint {
            name: "transit-corrupt-0.2",
            corrupting: false,
            benign: false, // Measured, not asserted — see module docs.
            expect_complete: true,
            kind: PointKind::TransitCorrupt(0.2),
        },
        GridPoint {
            name: "cert-bit-flip",
            corrupting: true,
            benign: false,
            expect_complete: true,
            kind: PointKind::CertFault(FaultModel::BitFlip),
        },
        GridPoint {
            name: "cert-zero",
            corrupting: true,
            benign: false,
            expect_complete: true,
            kind: PointKind::CertFault(FaultModel::ZeroCert),
        },
        GridPoint {
            name: "crash-restart",
            corrupting: true,
            benign: false,
            expect_complete: true,
            kind: PointKind::CrashRestart,
        },
        GridPoint {
            name: "partition-heal",
            corrupting: false,
            benign: true,
            expect_complete: true,
            kind: PointKind::PartitionHeal,
        },
    ]
}

/// Builds the network fault plan realizing `point` on `graph` for one
/// seeded run. Deterministic in `(point, seed, graph)`.
pub fn plan_for(point: &GridPoint, seed: u64, graph: &Graph) -> NetFaultPlan {
    let n = graph.num_nodes();
    let plan = NetFaultPlan::new(seed);
    match point.kind {
        PointKind::Baseline => plan,
        PointKind::Drop(p) => plan.with_default_link(LinkFaults {
            drop: p,
            ..LinkFaults::default()
        }),
        PointKind::Duplicate(p) => plan.with_default_link(LinkFaults {
            duplicate: p,
            delay_max: 3,
            ..LinkFaults::default()
        }),
        PointKind::Delay(d) => plan.with_default_link(LinkFaults {
            delay_max: d,
            ..LinkFaults::default()
        }),
        PointKind::TransitCorrupt(p) => plan.with_default_link(LinkFaults {
            corrupt: p,
            ..LinkFaults::default()
        }),
        PointKind::CertFault(model) => {
            plan.with_cert_plan(FaultPlan::single_at_random_site(model, n, seed))
        }
        PointKind::CrashRestart => plan.with_crash(CrashSchedule {
            node: NodeId((seed as usize) % n),
            at: 1,
            restart_at: Some(12),
        }),
        PointKind::PartitionHeal => {
            let site = NodeId((seed as usize) % n);
            let edges = graph.neighbors(site).iter().map(|&u| (site, u)).collect();
            plan.with_partition(Partition {
                edges,
                from: 0,
                until: 16,
            })
        }
    }
}

/// Campaign dimensions.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Base seed; every run derives its own via `split_seed`.
    pub seed: u64,
    /// Seeded runs per (target, grid point).
    pub runs_per_point: usize,
    /// Approximate target instance size (vertices).
    pub target_size: usize,
    /// Node retransmit policy.
    pub policy: RetryPolicy,
    /// Logical-time budget per run.
    pub max_time: SimTime,
}

impl CampaignConfig {
    /// The full campaign: 5 runs per point on ~12-vertex instances.
    pub fn new(seed: u64) -> Self {
        CampaignConfig {
            seed,
            runs_per_point: 5,
            target_size: 12,
            policy: RetryPolicy::default(),
            max_time: 1 << 12,
        }
    }

    /// CI smoke mode: 2 runs per point on ~8-vertex instances.
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            runs_per_point: 2,
            target_size: 8,
            ..CampaignConfig::new(seed)
        }
    }
}

/// Aggregates for one (target, grid point) cell.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Target (scheme) name.
    pub scheme: &'static str,
    /// Grid point name.
    pub point: &'static str,
    /// Whether detection is asserted on this point.
    pub corrupting: bool,
    /// Whether rejections are forbidden on this point.
    pub benign: bool,
    /// Whether inconclusive verdicts are disallowed on this point.
    pub expect_complete: bool,
    /// Total runs.
    pub runs: usize,
    /// Runs in which the fault changed observable state (equals `runs`
    /// on benign points, where the question is false alarms instead).
    pub effective: usize,
    /// Runs with at least one rejecting vertex.
    pub detected: usize,
    /// Runs with at least one inconclusive vertex.
    pub inconclusive: usize,
    /// Sum over runs of frames handed to the link layer.
    pub messages: u64,
    /// Sum over runs of data retransmissions.
    pub retries: u64,
    /// Sum over detected runs of the earliest rejection time.
    pub detection_time_sum: u64,
    /// Sum over runs of the quiescence instant.
    pub quiescence_sum: u64,
}

impl CampaignRow {
    /// Detected fraction of effective runs (vacuously 1.0 when no run
    /// was effective).
    pub fn detection_rate(&self) -> f64 {
        if self.effective == 0 {
            1.0
        } else {
            self.detected as f64 / self.effective as f64
        }
    }

    /// Inconclusive fraction of all runs.
    pub fn inconclusive_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.inconclusive as f64 / self.runs as f64
        }
    }

    /// Mean logical time of the earliest rejection, over detected runs.
    pub fn mean_detection_time(&self) -> Option<f64> {
        (self.detected > 0).then(|| self.detection_time_sum as f64 / self.detected as f64)
    }

    /// Mean frames per run.
    pub fn mean_messages(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.messages as f64 / self.runs as f64
        }
    }

    /// Mean retransmissions per run.
    pub fn mean_retries(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.retries as f64 / self.runs as f64
        }
    }
}

fn instance_of<'a>(target: &'a NetTarget, ids: &'a IdAssignment) -> Instance<'a> {
    match &target.inputs {
        Some(inputs) => Instance::with_inputs(&target.graph, ids, inputs),
        None => Instance::new(&target.graph, ids),
    }
}

fn run_effective(point: &GridPoint, outcome: &NetOutcome) -> bool {
    match point.kind {
        PointKind::CertFault(_) => outcome.cert_faults_effective,
        PointKind::CrashRestart => outcome.crashes > 0,
        PointKind::TransitCorrupt(_) => outcome.corrupted_frames > 0,
        _ => true,
    }
}

/// Earliest rejection instant of a run, if any vertex rejected.
fn detection_time(outcome: &NetOutcome) -> Option<u64> {
    outcome
        .verdicts
        .iter()
        .zip(&outcome.stats)
        .filter(|(v, _)| v.is_rejected())
        .map(|(_, s)| s.time_to_verdict)
        .min()
}

/// Runs the full campaign: every catalogue target crossed with every
/// grid point, `runs_per_point` seeded runs each, parallelized over
/// runs with a journal byte-identical at any worker count. Rows come
/// back in (target, point) order.
pub fn run_net_campaign(cfg: &CampaignConfig) -> Vec<CampaignRow> {
    let _span = locert_trace::span!("net.campaign");
    let targets = catalogue(cfg.target_size);
    let grid = fault_grid();
    let ids: Vec<IdAssignment> = targets
        .iter()
        .map(|t| IdAssignment::contiguous(t.graph.num_nodes()))
        .collect();
    // Honest assignments are computed once per target, sequentially —
    // the prover is cheap and this keeps its journal events in a stable
    // prefix.
    let honest: Vec<Assignment> = targets
        .iter()
        .zip(&ids)
        .map(|(t, ids)| {
            t.scheme
                .assign(&instance_of(t, ids))
                .unwrap_or_else(|e| panic!("{}: catalogue target must prove: {e:?}", t.name))
        })
        .collect();
    let (points, runs) = (grid.len(), cfg.runs_per_point);
    let tasks = targets.len() * points * runs;
    // One task per (target, point, run); each captures its journal
    // locally, the flush below appends in task order.
    let results = locert_par::global().par_map_collect(tasks, |k| {
        let ti = k / (points * runs);
        let pi = (k / runs) % points;
        let run = k % runs;
        journal::capture(|| {
            journal::record_with(|| Event::Marker {
                label: format!("net:{}:{}:{run}", targets[ti].name, grid[pi].name),
            });
            let seed = locert_par::split_seed(cfg.seed, k as u64);
            let plan = plan_for(&grid[pi], seed, &targets[ti].graph);
            run_network(
                targets[ti].scheme.as_ref(),
                &instance_of(&targets[ti], &ids[ti]),
                &honest[ti],
                &plan,
                &cfg.policy,
                cfg.max_time,
            )
        })
    });
    let mut rows: Vec<CampaignRow> = Vec::with_capacity(targets.len() * points);
    for target in &targets {
        for point in &grid {
            rows.push(CampaignRow {
                scheme: target.name,
                point: point.name,
                corrupting: point.corrupting,
                benign: point.benign,
                expect_complete: point.expect_complete,
                runs: 0,
                effective: 0,
                detected: 0,
                inconclusive: 0,
                messages: 0,
                retries: 0,
                detection_time_sum: 0,
                quiescence_sum: 0,
            });
        }
    }
    for (k, (outcome, events)) in results.into_iter().enumerate() {
        journal::append_events(events);
        let ti = k / (points * runs);
        let pi = (k / runs) % points;
        let row = &mut rows[ti * points + pi];
        let point = &grid[pi];
        row.runs += 1;
        if run_effective(point, &outcome) {
            row.effective += 1;
        }
        if outcome.detected() {
            row.detected += 1;
            row.detection_time_sum += detection_time(&outcome).unwrap_or(0);
        }
        if outcome.verdicts.iter().any(Verdict::is_inconclusive) {
            row.inconclusive += 1;
        }
        row.messages += outcome.messages;
        row.retries += outcome.retries;
        row.quiescence_sum += outcome.quiescence_time;
    }
    if locert_trace::enabled() {
        locert_trace::add("net.campaign.rows", rows.len() as u64);
        locert_trace::add("net.campaign.tasks", tasks as u64);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_meets_the_acceptance_grid() {
        let rows = run_net_campaign(&CampaignConfig::quick(1));
        assert_eq!(rows.len(), 16 * fault_grid().len());
        for row in &rows {
            // Yes-instances under benign faults must never reject.
            if row.benign {
                assert_eq!(
                    row.detected, 0,
                    "{}/{}: false reject on a yes-instance",
                    row.scheme, row.point
                );
            }
            // Certificate-corrupting faults must always be caught.
            if row.corrupting {
                assert!(
                    (row.detection_rate() - 1.0).abs() < f64::EPSILON,
                    "{}/{}: detection rate {} (detected {} of {} effective)",
                    row.scheme,
                    row.point,
                    row.detection_rate(),
                    row.detected,
                    row.effective
                );
            }
            // Reliable-delivery points must always complete their views.
            if row.expect_complete {
                assert_eq!(
                    row.inconclusive, 0,
                    "{}/{}: false inconclusive under reliable delivery",
                    row.scheme, row.point
                );
            }
        }
    }

    #[test]
    fn campaign_rows_are_deterministic() {
        let a = run_net_campaign(&CampaignConfig::quick(7));
        let b = run_net_campaign(&CampaignConfig::quick(7));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scheme, y.scheme);
            assert_eq!(x.point, y.point);
            assert_eq!(x.detected, y.detected);
            assert_eq!(x.messages, y.messages);
            assert_eq!(x.retries, y.retries);
            assert_eq!(x.quiescence_sum, y.quiescence_sum);
        }
    }
}
