//! The sixteen (scheme, yes-instance) targets of the network campaign.
//!
//! One target per scheme family in the workspace — tree certification,
//! counting, diameter, treedepth (paper and kernel routes), MSO on
//! trees and words, existential and depth-2 FO, minor-freeness, the
//! universal fallback, and a combinator — each paired with a small
//! yes-instance whose honest certificates the fault grid then attacks
//! in transit.

use locert_automata::library;
use locert_automata::words::Nfa;
use locert_core::schemes::acyclicity::AcyclicityScheme;
use locert_core::schemes::combinators::AndScheme;
use locert_core::schemes::depth2_fo::Depth2FoScheme;
use locert_core::schemes::existential_fo::ExistentialFoScheme;
use locert_core::schemes::kernel_mso::KernelMsoScheme;
use locert_core::schemes::minor_free::{CtMinorFreeScheme, PathMinorFreeScheme};
use locert_core::schemes::mso_tree::MsoTreeScheme;
use locert_core::schemes::spanning_tree::{SpanningTreeScheme, VertexCountScheme};
use locert_core::schemes::tree_depth_bound::TreeDepthBoundScheme;
use locert_core::schemes::tree_diameter::TreeDiameterScheme;
use locert_core::schemes::treedepth::TreedepthScheme;
use locert_core::schemes::universal::UniversalScheme;
use locert_core::schemes::word_path::WordPathScheme;
use locert_core::Scheme;
use locert_graph::{generators, Graph};
use locert_logic::props;
use std::collections::BTreeSet;

/// Identifier field width used by every catalogued scheme.
pub const ID_BITS: u32 = 16;

/// One campaign target: a scheme and a yes-instance it certifies.
pub struct NetTarget {
    /// Stable target name (journals and tables key on it).
    pub name: &'static str,
    /// The scheme under test.
    pub scheme: Box<dyn Scheme>,
    /// A yes-instance graph for the scheme's property.
    pub graph: Graph,
    /// Vertex inputs, for input-reading schemes (word letters).
    pub inputs: Option<Vec<usize>>,
}

fn lollipop(n: usize) -> Graph {
    let n = n.max(4);
    let mut edges = vec![(0, 1), (1, 2), (2, 0)];
    for v in 3..n {
        edges.push((v - 1, v));
    }
    Graph::from_edges(n, edges).expect("lollipop is simple and connected")
}

/// The two-state "no two consecutive 1s" NFA (both states accepting;
/// reading `1` twice in a row has no successor).
fn no_11_nfa() -> Nfa {
    let set = |states: &[usize]| states.iter().copied().collect::<BTreeSet<_>>();
    Nfa::new(
        2,
        2,
        set(&[0]),
        vec![true, true],
        vec![
            vec![set(&[0]), set(&[1])], // q0: last letter was not 1.
            vec![set(&[0]), set(&[])],  // q1: last letter was 1.
        ],
    )
    .expect("well-formed NFA")
}

/// Builds the full sixteen-target catalogue, scaled to instances of
/// roughly `n` vertices (`n >= 7`). Order is stable: journals, tables,
/// and the deterministic CLI output all follow it.
pub fn catalogue(n: usize) -> Vec<NetTarget> {
    let n = n.max(7);
    let even = if n.is_multiple_of(2) { n } else { n + 1 };
    let alternating: Vec<usize> = (0..n)
        .map(|i| usize::from(i % 2 == 1 && i + 1 < n))
        .collect();
    vec![
        NetTarget {
            name: "acyclicity",
            scheme: Box::new(AcyclicityScheme::new(ID_BITS)),
            graph: generators::path(n),
            inputs: None,
        },
        NetTarget {
            name: "spanning-tree",
            scheme: Box::new(SpanningTreeScheme::new(ID_BITS)),
            graph: generators::cycle(n),
            inputs: None,
        },
        NetTarget {
            name: "vertex-count",
            scheme: Box::new(VertexCountScheme::new(ID_BITS, n as u64)),
            graph: generators::path(n),
            inputs: None,
        },
        NetTarget {
            name: "universal-connected",
            scheme: Box::new(UniversalScheme::new(ID_BITS, "universal-connected", |g| {
                g.is_connected()
            })),
            graph: generators::clique(5),
            inputs: None,
        },
        NetTarget {
            name: "tree-diameter-3",
            scheme: Box::new(TreeDiameterScheme::new(ID_BITS, 3)),
            graph: generators::star(n.min(9)),
            inputs: None,
        },
        NetTarget {
            name: "treedepth-3",
            scheme: Box::new(TreedepthScheme::new(ID_BITS, 3)),
            graph: generators::path(7),
            inputs: None,
        },
        NetTarget {
            name: "tree-depth-bound-2",
            scheme: Box::new(TreeDepthBoundScheme::new(2)),
            graph: generators::star(n.min(9)),
            inputs: None,
        },
        NetTarget {
            name: "mso-perfect-matching",
            scheme: Box::new(MsoTreeScheme::new(library::has_perfect_matching())),
            graph: generators::path(even),
            inputs: None,
        },
        NetTarget {
            name: "mso-height-5",
            scheme: Box::new(MsoTreeScheme::new(library::height_at_most(5))),
            graph: generators::spider(3, 2),
            inputs: None,
        },
        NetTarget {
            name: "word-no-11",
            scheme: Box::new(WordPathScheme::new(no_11_nfa())),
            graph: generators::path(n),
            inputs: Some(alternating),
        },
        NetTarget {
            name: "existential-triangle",
            scheme: Box::new(
                ExistentialFoScheme::new(ID_BITS, &props::has_clique(3))
                    .expect("has_clique(3) is existential"),
            ),
            graph: lollipop(n),
            inputs: None,
        },
        NetTarget {
            name: "depth2-dominating",
            scheme: Box::new(
                Depth2FoScheme::from_formula(ID_BITS, &props::has_dominating_vertex())
                    .expect("has_dominating_vertex is depth-2"),
            ),
            graph: generators::star(n.min(9)),
            inputs: None,
        },
        NetTarget {
            name: "path-minor-free-4",
            scheme: Box::new(PathMinorFreeScheme::new(ID_BITS, 4)),
            graph: generators::star(n.min(9)),
            inputs: None,
        },
        NetTarget {
            name: "ct-minor-free-3",
            scheme: Box::new(CtMinorFreeScheme::new(ID_BITS, 3)),
            graph: generators::path(7),
            inputs: None,
        },
        NetTarget {
            name: "kernel-triangle-free",
            scheme: Box::new(
                KernelMsoScheme::new(ID_BITS, 3, props::triangle_free())
                    .expect("triangle-free kernelizes"),
            ),
            graph: generators::path(7),
            inputs: None,
        },
        NetTarget {
            name: "and-acyclic-count",
            scheme: Box::new(AndScheme::new(
                AcyclicityScheme::new(ID_BITS),
                VertexCountScheme::new(ID_BITS, n as u64),
                16,
            )),
            graph: generators::path(n),
            inputs: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_core::framework::{run_scheme, Instance};
    use locert_graph::IdAssignment;
    use std::collections::BTreeSet;

    #[test]
    fn sixteen_targets_with_unique_names() {
        let targets = catalogue(12);
        assert_eq!(targets.len(), 16);
        let names: BTreeSet<_> = targets.iter().map(|t| t.name).collect();
        assert_eq!(names.len(), targets.len(), "duplicate target names");
    }

    #[test]
    fn every_target_is_a_yes_instance() {
        for target in catalogue(12) {
            let ids = IdAssignment::contiguous(target.graph.num_nodes());
            let instance = match &target.inputs {
                Some(inputs) => Instance::with_inputs(&target.graph, &ids, inputs),
                None => Instance::new(&target.graph, &ids),
            };
            let outcome = run_scheme(target.scheme.as_ref(), &instance)
                .unwrap_or_else(|e| panic!("{}: prover refused: {e:?}", target.name));
            assert!(
                outcome.rejecting().is_empty(),
                "{}: honest run rejected at {:?}",
                target.name,
                outcome.rejecting()
            );
        }
    }
}
