//! The sixteen (scheme, yes-instance) targets of the network campaign.
//!
//! One target per scheme family in the shared catalogue
//! ([`locert_core::catalogue`]) — tree certification, counting,
//! diameter, treedepth (paper and kernel routes), MSO on trees and
//! words, existential and depth-2 FO, minor-freeness, the universal
//! fallback, and a combinator — each paired with a small yes-instance
//! whose honest certificates the fault grid then attacks in transit.
//! The schemes themselves are built by stable id via
//! [`locert_core::catalogue::build`]; only the instance pairing is
//! campaign-specific.

use locert_core::catalogue::{self, lollipop};
use locert_core::Scheme;
use locert_graph::{generators, Graph};

/// Identifier field width used by every catalogued scheme.
pub const ID_BITS: u32 = 16;

/// One campaign target: a scheme and a yes-instance it certifies.
pub struct NetTarget {
    /// Stable target name (journals and tables key on it) — the shared
    /// catalogue's scheme id.
    pub name: &'static str,
    /// The scheme under test.
    pub scheme: Box<dyn Scheme>,
    /// A yes-instance graph for the scheme's property.
    pub graph: Graph,
    /// Vertex inputs, for input-reading schemes (word letters).
    pub inputs: Option<Vec<usize>>,
}

/// Builds the full sixteen-target catalogue, scaled to instances of
/// roughly `n` vertices (`n >= 7`). Order is stable: journals, tables,
/// and the deterministic CLI output all follow it.
pub fn catalogue(n: usize) -> Vec<NetTarget> {
    let n = n.max(7);
    let even = if n.is_multiple_of(2) { n } else { n + 1 };
    let alternating: Vec<usize> = (0..n)
        .map(|i| usize::from(i % 2 == 1 && i + 1 < n))
        .collect();
    let instances: Vec<(&'static str, Graph, Option<Vec<usize>>)> = vec![
        ("acyclicity", generators::path(n), None),
        ("spanning-tree", generators::cycle(n), None),
        ("vertex-count", generators::path(n), None),
        ("universal-connected", generators::clique(5), None),
        ("tree-diameter-3", generators::star(n.min(9)), None),
        ("treedepth-3", generators::path(7), None),
        ("tree-depth-bound-2", generators::star(n.min(9)), None),
        ("mso-perfect-matching", generators::path(even), None),
        ("mso-height-5", generators::spider(3, 2), None),
        ("word-no-11", generators::path(n), Some(alternating)),
        ("existential-triangle", lollipop(n), None),
        ("depth2-dominating", generators::star(n.min(9)), None),
        ("path-minor-free-4", generators::star(n.min(9)), None),
        ("ct-minor-free-3", generators::path(7), None),
        ("kernel-triangle-free", generators::path(7), None),
        ("and-acyclic-count", generators::path(n), None),
    ];
    instances
        .into_iter()
        .map(|(name, graph, inputs)| {
            let scheme = catalogue::build(name, ID_BITS, graph.num_nodes())
                .unwrap_or_else(|| panic!("{name} is a catalogued scheme id"));
            NetTarget {
                name,
                scheme,
                graph,
                inputs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_core::framework::{run_scheme, Instance};
    use locert_graph::IdAssignment;
    use std::collections::BTreeSet;

    #[test]
    fn sixteen_targets_with_unique_names() {
        let targets = catalogue(12);
        assert_eq!(targets.len(), 16);
        let names: BTreeSet<_> = targets.iter().map(|t| t.name).collect();
        assert_eq!(names.len(), targets.len(), "duplicate target names");
    }

    #[test]
    fn target_names_are_shared_catalogue_ids_in_order() {
        let names: Vec<_> = catalogue(12).iter().map(|t| t.name).collect();
        assert_eq!(names, locert_core::catalogue::ids());
    }

    #[test]
    fn every_target_is_a_yes_instance() {
        for target in catalogue(12) {
            let ids = IdAssignment::contiguous(target.graph.num_nodes());
            let instance = match &target.inputs {
                Some(inputs) => Instance::with_inputs(&target.graph, &ids, inputs),
                None => Instance::new(&target.graph, &ids),
            };
            let outcome = run_scheme(target.scheme.as_ref(), &instance)
                .unwrap_or_else(|e| panic!("{}: prover refused: {e:?}", target.name));
            assert!(
                outcome.rejecting().is_empty(),
                "{}: honest run rejected at {:?}",
                target.name,
                outcome.rejecting()
            );
        }
    }
}
