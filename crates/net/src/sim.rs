//! The discrete-event network simulator.
//!
//! Every vertex runs as an event-driven node process. At start-up (and
//! after every restart) a node broadcasts a data frame — its presented
//! identifier, input, and certificate — to each neighbor, and keeps a
//! per-neighbor retransmit timer with exponential backoff and seeded
//! jitter until the frame is acknowledged. Received frames are stored
//! last-writer-wins (the self-stabilizing discipline: a later frame
//! always overwrites an earlier one), and a node re-decides its verdict
//! whenever its view changes. A node that exhausts its retry budget for
//! a neighbor degrades to [`Verdict::Inconclusive`] — it never hangs
//! and never rejects a neighbor merely for being silent, so unreliable
//! delivery alone can cause lost coverage but never a false alarm.
//!
//! Crash-restart bumps the node's *epoch*: the restarted node loses its
//! certificate and its received frames, and its new-epoch broadcast
//! tells each neighbor to re-arm its own retransmit chain (the ack it
//! holds is for a state the crashed node no longer has). Stale frames
//! from earlier epochs are discarded on arrival.
//!
//! Determinism contract: one logical clock, one event queue ordered by
//! `(time, seq)` where `seq` is the enqueue counter, and one seeded RNG
//! drawn exclusively during event processing — the simulation is a
//! single-threaded pure function of `(instance, assignment, plan,
//! policy)`, so campaigns parallelized over runs stay byte-identical at
//! any `locert-par` width.

use locert_core::faults::{self, FaultPlan, FaultyWorld};
use locert_core::framework::{Assignment, Instance, LocalView, RejectReason, Verifier};
use locert_core::Certificate;
use locert_graph::{Ident, NodeId};
use locert_trace::journal::{self, Event};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Logical simulation time (no wall clock anywhere in the crate).
pub type SimTime = u64;

/// Frame header overhead in bits (source + destination identifiers,
/// epoch, kind tag) charged to `bits_sent` on top of the certificate.
const HEADER_BITS: u64 = 64;

/// Hard ceiling on processed events, as a runaway backstop. The retry
/// budget already bounds every run; this is defense in depth.
const MAX_EVENTS: u64 = 50_000_000;

/// Per-neighbor retransmit policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base retransmit timeout (the first wait).
    pub timeout: SimTime,
    /// Cap on the exponentially growing backoff interval.
    pub max_backoff: SimTime,
    /// Maximum seeded jitter added to every interval.
    pub jitter: SimTime,
    /// Retransmit budget per neighbor per epoch (beyond the initial
    /// send). After `retries + 1` expired timers the node gives up on
    /// that neighbor and degrades to [`Verdict::Inconclusive`].
    pub retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: 4,
            max_backoff: 64,
            jitter: 2,
            retries: 12,
        }
    }
}

impl RetryPolicy {
    /// The base (pre-jitter) wait before the `k`-th timer, `k >= 0`:
    /// `min(timeout · 2^k, max_backoff)`, saturating.
    fn backoff_base(&self, k: u32) -> SimTime {
        self.timeout
            .checked_shl(k.min(32))
            .unwrap_or(SimTime::MAX)
            .min(self.max_backoff)
            .max(1)
    }
}

/// Per-link fault rates. All probabilities are per transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a frame is silently discarded.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability one random certificate bit is flipped in transit
    /// (data frames with non-empty certificates only).
    pub corrupt: f64,
    /// Minimum extra delivery latency (on top of the unit hop).
    pub delay_min: SimTime,
    /// Maximum extra delivery latency; `> delay_min` lets frames
    /// overtake each other (reordering).
    pub delay_max: SimTime,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay_min: 0,
            delay_max: 0,
        }
    }
}

/// A temporary partition: every listed edge is cut (both directions)
/// for sends in the half-open window `[from, until)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Cut edges (unordered).
    pub edges: Vec<(NodeId, NodeId)>,
    /// First blocked instant.
    pub from: SimTime,
    /// First instant the partition has healed.
    pub until: SimTime,
}

/// A scheduled crash: the node goes down at `at`, losing its
/// certificate and every received frame, and (optionally) comes back at
/// `restart_at` with an empty certificate and a fresh epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// The crashing vertex.
    pub node: NodeId,
    /// Crash instant.
    pub at: SimTime,
    /// Restart instant; `None` keeps the node down forever.
    pub restart_at: Option<SimTime>,
}

/// A composable network fault plan: link-level fault rates, partitions,
/// crash-restarts, and an optional [`locert_core::faults::FaultPlan`]
/// corrupting the *initial* certificate assignment (bit flips, replays,
/// byzantine nodes, identifier collisions) before the first frame is
/// ever sent.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    seed: u64,
    default_link: LinkFaults,
    links: BTreeMap<(usize, usize), LinkFaults>,
    partitions: Vec<Partition>,
    crashes: Vec<CrashSchedule>,
    cert_plan: Option<FaultPlan>,
}

impl NetFaultPlan {
    /// A zero-fault plan with the given RNG seed (the seed still feeds
    /// jitter draws, so it matters even without faults).
    pub fn new(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            ..NetFaultPlan::default()
        }
    }

    /// Sets the fault rates applied to every link without an override.
    pub fn with_default_link(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Overrides the fault rates of the directed link `src -> dst`.
    pub fn with_link(mut self, src: NodeId, dst: NodeId, faults: LinkFaults) -> Self {
        self.links.insert((src.0, dst.0), faults);
        self
    }

    /// Adds a temporary partition.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Schedules a crash (and optional restart).
    pub fn with_crash(mut self, crash: CrashSchedule) -> Self {
        self.crashes.push(crash);
        self
    }

    /// Composes a certificate-level fault plan from
    /// [`locert_core::faults`]: it is injected into the initial
    /// assignment before the simulation starts, so identifier faults
    /// and byzantine behavior ride the same frames as honest state.
    pub fn with_cert_plan(mut self, plan: FaultPlan) -> Self {
        self.cert_plan = Some(plan);
        self
    }

    /// The plan's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn link(&self, src: usize, dst: usize) -> &LinkFaults {
        self.links.get(&(src, dst)).unwrap_or(&self.default_link)
    }

    fn partitioned(&self, a: usize, b: usize, t: SimTime) -> bool {
        self.partitions.iter().any(|p| {
            t >= p.from
                && t < p.until
                && p.edges
                    .iter()
                    .any(|&(u, v)| (u.0 == a && v.0 == b) || (u.0 == b && v.0 == a))
        })
    }
}

/// A node's network verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The verifier accepted a complete radius-1 view.
    Accepted,
    /// The verifier rejected a complete radius-1 view.
    Rejected(RejectReason),
    /// The view never completed within the retry budget: the node
    /// degrades gracefully instead of hanging or guessing.
    Inconclusive {
        /// Honest identifiers of the neighbors never heard from.
        missing_neighbors: Vec<Ident>,
        /// Timer rounds waited on the worst missing neighbor.
        rounds_waited: u64,
    },
}

impl Verdict {
    /// Whether this is an acceptance.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted)
    }

    /// Whether this is a rejection.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Verdict::Rejected(_))
    }

    /// Whether the node gave up on a complete view.
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Verdict::Inconclusive { .. })
    }
}

/// Per-node transport statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Total payload bits handed to the link layer.
    pub bits_sent: u64,
    /// Frames handed to the link layer (data + acks, including
    /// retransmits and restart broadcasts).
    pub messages: u64,
    /// Retransmit timer expirations that resent a data frame.
    pub retries: u64,
    /// Logical time the node's verdict last changed.
    pub time_to_verdict: SimTime,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Per-vertex final verdicts (the fixpoint at quiescence).
    pub verdicts: Vec<Verdict>,
    /// Per-vertex transport statistics.
    pub stats: Vec<NodeStats>,
    /// Logical time of the last processed event (quiescence instant).
    pub quiescence_time: SimTime,
    /// Total events processed.
    pub events_processed: u64,
    /// Total frames handed to the link layer.
    pub messages: u64,
    /// Frames discarded by the link layer (loss, partition, dead
    /// receiver).
    pub drops: u64,
    /// Data retransmissions across all nodes.
    pub retries: u64,
    /// Crash transitions.
    pub crashes: u64,
    /// Data frames whose certificate was bit-flipped in transit.
    pub corrupted_frames: u64,
    /// Whether the initial-certificate fault plan changed observable
    /// state (see [`FaultyWorld::is_effective`]); `false` when no cert
    /// plan was composed.
    pub cert_faults_effective: bool,
    /// `true` when the run hit the time or event budget before the
    /// queue drained (verdicts are still total — pending nodes finalize
    /// as inconclusive).
    pub budget_expired: bool,
}

impl NetOutcome {
    /// Vertices that rejected (byzantine vertices never do).
    pub fn rejecting(&self) -> Vec<NodeId> {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_rejected())
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Vertices that degraded to an inconclusive verdict.
    pub fn inconclusive(&self) -> Vec<NodeId> {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_inconclusive())
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Whether at least one vertex rejected.
    pub fn detected(&self) -> bool {
        self.verdicts.iter().any(Verdict::is_rejected)
    }

    /// Whether every vertex accepted.
    pub fn all_accepted(&self) -> bool {
        self.verdicts.iter().all(Verdict::is_accepted)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Data,
    Ack,
}

/// A frame in flight: what the link layer delivers to `dst`.
#[derive(Debug, Clone)]
struct Frame {
    src: usize,
    dst: usize,
    kind: FrameKind,
    epoch: u32,
    ident: Ident,
    input: usize,
    cert: Certificate,
}

#[derive(Debug, Clone)]
enum Ev {
    Deliver(Frame),
    Timer {
        node: usize,
        nbr: usize,
        attempt: u32,
        epoch: u32,
    },
    Crash {
        node: usize,
    },
    Restart {
        node: usize,
    },
}

struct Node {
    alive: bool,
    epoch: u32,
    cert: Certificate,
    received: Vec<Option<(Ident, usize, Certificate)>>,
    peer_epoch: Vec<u32>,
    acked: Vec<bool>,
    gave_up: Vec<bool>,
    attempts: Vec<u32>,
    timer_active: Vec<bool>,
    stats: NodeStats,
    verdict: Option<Verdict>,
}

struct Sim<'a> {
    instance: &'a Instance<'a>,
    verifier: &'a dyn Verifier,
    world: &'a FaultyWorld,
    plan: &'a NetFaultPlan,
    policy: &'a RetryPolicy,
    nodes: Vec<Node>,
    /// `nbr_index[v]` maps a neighbor's NodeId index to its position in
    /// `v`'s adjacency list.
    nbr_index: Vec<BTreeMap<usize, usize>>,
    queue: BTreeMap<(SimTime, u64), Ev>,
    next_seq: u64,
    rng: StdRng,
    now: SimTime,
    messages: u64,
    drops: u64,
    retries: u64,
    crashes: u64,
    corrupted_frames: u64,
}

impl<'a> Sim<'a> {
    fn schedule(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.insert((at, seq), ev);
    }

    fn jittered(&mut self, base: SimTime) -> SimTime {
        let jitter = if self.policy.jitter > 0 {
            self.rng.random_range(0..=self.policy.jitter)
        } else {
            0
        };
        base.saturating_add(jitter)
    }

    /// Hands one frame to the link layer: charges the sender, rolls the
    /// link faults, and schedules the surviving deliveries.
    fn transmit(&mut self, src: usize, dst: usize, kind: FrameKind) {
        let epoch = self.nodes[src].epoch;
        let (ident, input, cert) = match kind {
            FrameKind::Data => (
                self.world.presented_ident(NodeId(src)),
                self.instance.input(NodeId(src)),
                self.nodes[src].cert.clone(),
            ),
            FrameKind::Ack => (Ident(0), 0, Certificate::empty()),
        };
        let bits = HEADER_BITS + cert.len_bits() as u64;
        self.nodes[src].stats.messages += 1;
        self.nodes[src].stats.bits_sent += bits;
        self.messages += 1;
        let now = self.now;
        journal::record_with(|| Event::NetSend {
            src: src as u64,
            dst: dst as u64,
            time: now,
            bits,
            kind: match kind {
                FrameKind::Data => "data".to_string(),
                FrameKind::Ack => "ack".to_string(),
            },
        });
        if self.plan.partitioned(src, dst, now) {
            self.drops += 1;
            journal::record_with(|| Event::NetDrop {
                src: src as u64,
                dst: dst as u64,
                time: now,
                cause: "partition".to_string(),
            });
            return;
        }
        let link = *self.plan.link(src, dst);
        if link.drop > 0.0 && self.rng.random_bool(link.drop) {
            self.drops += 1;
            journal::record_with(|| Event::NetDrop {
                src: src as u64,
                dst: dst as u64,
                time: now,
                cause: "loss".to_string(),
            });
            return;
        }
        let copies = if link.duplicate > 0.0 && self.rng.random_bool(link.duplicate) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut delivered = cert.clone();
            if kind == FrameKind::Data
                && link.corrupt > 0.0
                && delivered.len_bits() > 0
                && self.rng.random_bool(link.corrupt)
            {
                let bit = self.rng.random_range(0..delivered.len_bits());
                delivered = delivered.with_bit_flipped(bit);
                self.corrupted_frames += 1;
            }
            let spread = if link.delay_max > link.delay_min {
                self.rng.random_range(link.delay_min..=link.delay_max)
            } else {
                link.delay_min
            };
            let at = now.saturating_add(1).saturating_add(spread);
            self.schedule(
                at,
                Ev::Deliver(Frame {
                    src,
                    dst,
                    kind,
                    epoch,
                    ident,
                    input,
                    cert: delivered,
                }),
            );
        }
    }

    /// (Re-)arms `node`'s retransmit chain toward neighbor slot `nbr`.
    fn arm_timer(&mut self, node: usize, nbr: usize) {
        self.nodes[node].timer_active[nbr] = true;
        self.nodes[node].attempts[nbr] = 0;
        let epoch = self.nodes[node].epoch;
        let wait = self.jittered(self.policy.backoff_base(0));
        let at = self.now.saturating_add(wait);
        self.schedule(
            at,
            Ev::Timer {
                node,
                nbr,
                attempt: 1,
                epoch,
            },
        );
    }

    /// Start-of-epoch broadcast: send a data frame to every neighbor
    /// and arm the per-neighbor retransmit chains.
    fn broadcast(&mut self, node: usize) {
        let neighbors: Vec<usize> = self
            .instance
            .graph()
            .neighbors(NodeId(node))
            .iter()
            .map(|&u| u.0)
            .collect();
        for (nbr, &dst) in neighbors.iter().enumerate() {
            self.transmit(node, dst, FrameKind::Data);
            self.arm_timer(node, nbr);
        }
    }

    fn on_timer(&mut self, node: usize, nbr: usize, attempt: u32, epoch: u32) {
        let n = &self.nodes[node];
        if !n.alive || n.epoch != epoch || !n.timer_active[nbr] {
            return;
        }
        let delivered = n.acked[nbr];
        let heard = n.received[nbr].is_some();
        if delivered && heard {
            self.nodes[node].timer_active[nbr] = false;
            return;
        }
        if attempt > self.policy.retries {
            self.nodes[node].timer_active[nbr] = false;
            self.nodes[node].attempts[nbr] = attempt - 1;
            if !heard {
                self.nodes[node].gave_up[nbr] = true;
                self.refresh_verdict(node);
            }
            return;
        }
        if !delivered {
            let dst = self.instance.graph().neighbors(NodeId(node))[nbr].0;
            self.retries += 1;
            self.nodes[node].stats.retries += 1;
            let now = self.now;
            journal::record_with(|| Event::NetRetry {
                node: node as u64,
                neighbor: nbr as u64,
                attempt: attempt as u64,
                time: now,
            });
            self.transmit(node, dst, FrameKind::Data);
        }
        self.nodes[node].attempts[nbr] = attempt;
        let wait = self.jittered(self.policy.backoff_base(attempt));
        let at = self.now.saturating_add(wait);
        self.schedule(
            at,
            Ev::Timer {
                node,
                nbr,
                attempt: attempt + 1,
                epoch,
            },
        );
    }

    fn on_deliver(&mut self, frame: Frame) {
        let Frame {
            src,
            dst,
            kind,
            epoch,
            ident,
            input,
            cert,
        } = frame;
        if !self.nodes[dst].alive {
            self.drops += 1;
            let now = self.now;
            journal::record_with(|| Event::NetDrop {
                src: src as u64,
                dst: dst as u64,
                time: now,
                cause: "dead-receiver".to_string(),
            });
            return;
        }
        let Some(&nbr) = self.nbr_index[dst].get(&src) else {
            return;
        };
        match kind {
            FrameKind::Data => {
                if epoch < self.nodes[dst].peer_epoch[nbr] {
                    // Stale pre-crash frame overtaken by a newer epoch.
                    return;
                }
                let newer = epoch > self.nodes[dst].peer_epoch[nbr];
                let node = &mut self.nodes[dst];
                node.peer_epoch[nbr] = epoch;
                node.received[nbr] = Some((ident, input, cert));
                node.gave_up[nbr] = false;
                if newer {
                    // The sender restarted: the ack we hold (if any) is
                    // for state it no longer has, so re-arm our chain to
                    // re-deliver our own frame.
                    node.acked[nbr] = false;
                    if !node.timer_active[nbr] {
                        self.arm_timer(dst, nbr);
                    }
                }
                self.transmit(dst, src, FrameKind::Ack);
                self.refresh_verdict(dst);
            }
            FrameKind::Ack => {
                if epoch == self.nodes[dst].epoch {
                    self.nodes[dst].acked[nbr] = true;
                }
            }
        }
    }

    fn on_crash(&mut self, node: usize) {
        if !self.nodes[node].alive {
            return;
        }
        self.crashes += 1;
        let now = self.now;
        journal::record_with(|| Event::NetCrash {
            node: node as u64,
            time: now,
            down: true,
        });
        let n = &mut self.nodes[node];
        n.alive = false;
        n.cert = Certificate::empty();
        n.received.iter_mut().for_each(|r| *r = None);
        n.acked.iter_mut().for_each(|a| *a = false);
        n.gave_up.iter_mut().for_each(|g| *g = false);
        n.timer_active.iter_mut().for_each(|t| *t = false);
        n.attempts.iter_mut().for_each(|a| *a = 0);
        n.verdict = None;
    }

    fn on_restart(&mut self, node: usize) {
        if self.nodes[node].alive {
            return;
        }
        let now = self.now;
        journal::record_with(|| Event::NetCrash {
            node: node as u64,
            time: now,
            down: false,
        });
        let n = &mut self.nodes[node];
        n.alive = true;
        n.epoch += 1;
        self.broadcast(node);
        self.refresh_verdict(node);
    }

    /// Re-decides `node`'s verdict from its current view, recording the
    /// change time. Missing-but-still-retrying neighbors leave the
    /// verdict pending; missing-and-given-up neighbors degrade it to
    /// [`Verdict::Inconclusive`].
    fn refresh_verdict(&mut self, node: usize) {
        let v = NodeId(node);
        let n = &self.nodes[node];
        if !n.alive {
            return;
        }
        let next = if self.world.is_byzantine(v) {
            Verdict::Accepted
        } else if n.received.iter().any(Option::is_none) {
            let pending = n
                .received
                .iter()
                .enumerate()
                .any(|(i, r)| r.is_none() && !n.gave_up[i]);
            if pending {
                return; // Timers still running; no verdict yet.
            }
            let graph_neighbors = self.instance.graph().neighbors(v);
            let missing_neighbors = n
                .received
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_none())
                .map(|(i, _)| self.instance.ids().ident(graph_neighbors[i]))
                .collect();
            let rounds_waited = n.attempts.iter().copied().max().unwrap_or(0) as u64;
            Verdict::Inconclusive {
                missing_neighbors,
                rounds_waited,
            }
        } else {
            let mut neighbors: Vec<(Ident, usize, &Certificate)> = n
                .received
                .iter()
                .map(|r| {
                    let (ident, input, cert) = r.as_ref().expect("checked complete");
                    (*ident, *input, cert)
                })
                .collect();
            // Compose the core view faults (replayed / lost neighbor
            // entries) exactly as `faults::faulty_view_of` does.
            if let Some(i) = self.world.duplicated_entry(v) {
                if i < neighbors.len() {
                    let entry = neighbors[i];
                    neighbors.push(entry);
                }
            }
            if let Some(i) = self.world.dropped_entry(v) {
                if i < neighbors.len() {
                    neighbors.remove(i);
                }
            }
            let view = LocalView {
                id: self.world.presented_ident(v),
                input: self.instance.input(v),
                cert: &n.cert,
                neighbors,
            };
            match self.verifier.decide(&view) {
                Ok(()) => Verdict::Accepted,
                Err(reason) => Verdict::Rejected(reason),
            }
        };
        if self.nodes[node].verdict.as_ref() != Some(&next) {
            self.nodes[node].stats.time_to_verdict = self.now;
            self.nodes[node].verdict = Some(next);
        }
    }
}

/// Runs the simulation to quiescence (event queue drained) or until
/// `max_time`, whichever comes first, and returns the per-vertex
/// verdict fixpoint.
///
/// `honest` is the prover's assignment; `plan.cert_plan` faults are
/// injected into it before the first frame. Verdicts are total: nodes
/// that never completed (budget expiry, permanent crash) finalize as
/// [`Verdict::Inconclusive`].
pub fn run_network(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    honest: &Assignment,
    plan: &NetFaultPlan,
    policy: &RetryPolicy,
    max_time: SimTime,
) -> NetOutcome {
    let _span = locert_trace::span!("net.sim.run");
    let n = instance.graph().num_nodes();
    let empty_plan;
    let cert_plan = match &plan.cert_plan {
        Some(p) => p,
        None => {
            empty_plan = FaultPlan::new(plan.seed);
            &empty_plan
        }
    };
    let world = faults::inject(instance, honest, cert_plan);
    let nodes = (0..n)
        .map(|v| {
            let deg = instance.graph().degree(NodeId(v));
            Node {
                alive: true,
                epoch: 0,
                cert: world.certs().cert(NodeId(v)).clone(),
                received: vec![None; deg],
                peer_epoch: vec![0; deg],
                acked: vec![false; deg],
                gave_up: vec![false; deg],
                attempts: vec![0; deg],
                timer_active: vec![false; deg],
                stats: NodeStats::default(),
                verdict: None,
            }
        })
        .collect();
    let nbr_index = (0..n)
        .map(|v| {
            instance
                .graph()
                .neighbors(NodeId(v))
                .iter()
                .enumerate()
                .map(|(i, &u)| (u.0, i))
                .collect()
        })
        .collect();
    let mut sim = Sim {
        instance,
        verifier,
        world: &world,
        plan,
        policy,
        nodes,
        nbr_index,
        queue: BTreeMap::new(),
        next_seq: 0,
        rng: StdRng::seed_from_u64(plan.seed ^ 0x6e65_7473_746f_726d),
        now: 0,
        messages: 0,
        drops: 0,
        retries: 0,
        crashes: 0,
        corrupted_frames: 0,
    };
    // Crash schedules enqueue first so a crash at time t preempts
    // deliveries and timers landing at the same instant.
    for crash in &plan.crashes {
        if crash.node.0 >= n {
            continue;
        }
        sim.schedule(crash.at, Ev::Crash { node: crash.node.0 });
        if let Some(at) = crash.restart_at {
            sim.schedule(at.max(crash.at + 1), Ev::Restart { node: crash.node.0 });
        }
    }
    for v in 0..n {
        sim.broadcast(v);
    }
    for v in 0..n {
        sim.refresh_verdict(v); // Degree-0 and byzantine nodes decide now.
    }
    let mut events_processed = 0u64;
    let mut budget_expired = false;
    while let Some((&(t, seq), _)) = sim.queue.iter().next() {
        if t > max_time || events_processed >= MAX_EVENTS {
            budget_expired = true;
            break;
        }
        let ev = sim.queue.remove(&(t, seq)).expect("peeked key exists");
        sim.now = t;
        events_processed += 1;
        match ev {
            Ev::Deliver(frame) => sim.on_deliver(frame),
            Ev::Timer {
                node,
                nbr,
                attempt,
                epoch,
            } => sim.on_timer(node, nbr, attempt, epoch),
            Ev::Crash { node } => sim.on_crash(node),
            Ev::Restart { node } => sim.on_restart(node),
        }
    }
    let quiescence_time = sim.now;
    // Finalize: every node gets a total verdict. Dead nodes and nodes
    // cut off by budget expiry degrade to inconclusive.
    let verdicts: Vec<Verdict> = (0..n)
        .map(|i| {
            let node = &sim.nodes[i];
            match &node.verdict {
                Some(v) => v.clone(),
                None => {
                    let graph_neighbors = instance.graph().neighbors(NodeId(i));
                    let missing_neighbors = node
                        .received
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.is_none())
                        .map(|(j, _)| instance.ids().ident(graph_neighbors[j]))
                        .collect();
                    Verdict::Inconclusive {
                        missing_neighbors,
                        rounds_waited: node.attempts.iter().copied().max().unwrap_or(0) as u64,
                    }
                }
            }
        })
        .collect();
    // Verdict events land sequentially in vertex order, off the hot
    // path, mirroring `run_verification` — the journal stays
    // byte-identical at any worker count.
    for (i, verdict) in verdicts.iter().enumerate() {
        let (status, reason, missing) = match verdict {
            Verdict::Accepted => ("accepted", None, 0),
            Verdict::Rejected(r) => ("rejected", Some(r.code().to_string()), 0),
            Verdict::Inconclusive {
                missing_neighbors, ..
            } => ("inconclusive", None, missing_neighbors.len() as u64),
        };
        let time = sim.nodes[i].stats.time_to_verdict;
        journal::record_with(|| Event::NetVerdict {
            vertex: i as u64,
            status: status.to_string(),
            reason,
            missing,
            time,
        });
    }
    let stats: Vec<NodeStats> = sim.nodes.iter().map(|node| node.stats).collect();
    if locert_trace::enabled() {
        locert_trace::add("net.sim.runs", 1);
        locert_trace::add("net.sim.messages", sim.messages);
        locert_trace::add("net.sim.drops", sim.drops);
        locert_trace::add("net.sim.retries", sim.retries);
        locert_trace::add("net.sim.crashes", sim.crashes);
        locert_trace::add(
            "net.sim.bits_sent",
            stats.iter().map(|s| s.bits_sent).sum::<u64>(),
        );
        locert_trace::record("net.sim.quiescence_time", quiescence_time);
        for s in &stats {
            locert_trace::record("net.sim.time_to_verdict", s.time_to_verdict);
        }
    }
    NetOutcome {
        verdicts,
        stats,
        quiescence_time,
        events_processed,
        messages: sim.messages,
        drops: sim.drops,
        retries: sim.retries,
        crashes: sim.crashes,
        corrupted_frames: sim.corrupted_frames,
        cert_faults_effective: world.is_effective(),
        budget_expired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_core::faults::FaultModel;
    use locert_core::framework::run_verification;
    use locert_core::schemes::acyclicity::AcyclicityScheme;
    use locert_core::schemes::spanning_tree::SpanningTreeScheme;
    use locert_core::Scheme;
    use locert_graph::{generators, IdAssignment};

    fn prove(scheme: &dyn Scheme, instance: &Instance<'_>) -> Assignment {
        scheme.assign(instance).expect("yes-instance")
    }

    #[test]
    fn zero_fault_run_matches_run_verification() {
        let g = generators::spider(3, 2);
        let ids = IdAssignment::contiguous(g.num_nodes());
        let instance = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(8);
        let honest = prove(&scheme, &instance);
        let reference = run_verification(&scheme, &instance, &honest);
        let outcome = run_network(
            &scheme,
            &instance,
            &honest,
            &NetFaultPlan::new(7),
            &RetryPolicy::default(),
            1 << 12,
        );
        assert!(!outcome.budget_expired);
        for (v, verdict) in outcome.verdicts.iter().enumerate() {
            assert_eq!(
                verdict.is_accepted(),
                reference.verdicts()[v].accepted,
                "vertex {v}"
            );
        }
        assert!(outcome.all_accepted());
        assert_eq!(outcome.drops, 0);
        assert_eq!(outcome.retries, 0);
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let g = generators::cycle(8);
        let ids = IdAssignment::contiguous(g.num_nodes());
        let instance = Instance::new(&g, &ids);
        let scheme = SpanningTreeScheme::new(8);
        let honest = prove(&scheme, &instance);
        let plan = NetFaultPlan::new(3).with_default_link(LinkFaults {
            drop: 0.3,
            delay_max: 4,
            ..LinkFaults::default()
        });
        let run = |_: ()| {
            run_network(
                &scheme,
                &instance,
                &honest,
                &plan,
                &RetryPolicy::default(),
                1 << 12,
            )
        };
        let (a, b) = (run(()), run(()));
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.quiescence_time, b.quiescence_time);
    }

    #[test]
    fn heavy_loss_degrades_to_inconclusive_not_rejection() {
        let g = generators::path(6);
        let ids = IdAssignment::contiguous(g.num_nodes());
        let instance = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(8);
        let honest = prove(&scheme, &instance);
        // One link is fully dead: its endpoints must give up gracefully.
        let plan = NetFaultPlan::new(11)
            .with_link(
                NodeId(2),
                NodeId(3),
                LinkFaults {
                    drop: 1.0,
                    ..LinkFaults::default()
                },
            )
            .with_link(
                NodeId(3),
                NodeId(2),
                LinkFaults {
                    drop: 1.0,
                    ..LinkFaults::default()
                },
            );
        let outcome = run_network(
            &scheme,
            &instance,
            &honest,
            &plan,
            &RetryPolicy::default(),
            1 << 14,
        );
        assert!(!outcome.detected(), "loss must never cause a rejection");
        let inconclusive = outcome.inconclusive();
        assert_eq!(inconclusive, vec![NodeId(2), NodeId(3)]);
        match &outcome.verdicts[2] {
            Verdict::Inconclusive {
                missing_neighbors,
                rounds_waited,
            } => {
                assert_eq!(missing_neighbors, &vec![ids.ident(NodeId(3))]);
                assert!(*rounds_waited >= RetryPolicy::default().retries as u64);
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
        assert!(outcome.retries > 0);
    }

    #[test]
    fn crash_restart_loses_certificate_and_is_detected() {
        let g = generators::path(5);
        let ids = IdAssignment::contiguous(g.num_nodes());
        let instance = Instance::new(&g, &ids);
        let scheme = SpanningTreeScheme::new(8);
        let honest = prove(&scheme, &instance);
        let plan = NetFaultPlan::new(5).with_crash(CrashSchedule {
            node: NodeId(2),
            at: 1,
            restart_at: Some(12),
        });
        let outcome = run_network(
            &scheme,
            &instance,
            &honest,
            &plan,
            &RetryPolicy::default(),
            1 << 14,
        );
        assert_eq!(outcome.crashes, 1);
        assert!(
            outcome.detected(),
            "an empty post-crash certificate must be rejected: {:?}",
            outcome.verdicts
        );
    }

    #[test]
    fn composed_cert_plan_bit_flip_is_detected() {
        let g = generators::cycle(7);
        let ids = IdAssignment::contiguous(g.num_nodes());
        let instance = Instance::new(&g, &ids);
        let scheme = SpanningTreeScheme::new(8);
        let honest = prove(&scheme, &instance);
        let plan = NetFaultPlan::new(9).with_cert_plan(FaultPlan::single_at_random_site(
            FaultModel::BitFlip,
            g.num_nodes(),
            9,
        ));
        let outcome = run_network(
            &scheme,
            &instance,
            &honest,
            &plan,
            &RetryPolicy::default(),
            1 << 12,
        );
        assert!(outcome.cert_faults_effective);
        assert!(outcome.detected());
    }

    #[test]
    fn partition_that_heals_converges_to_acceptance() {
        let g = generators::star(6);
        let ids = IdAssignment::contiguous(g.num_nodes());
        let instance = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(8);
        let honest = prove(&scheme, &instance);
        let edges: Vec<_> = g
            .neighbors(NodeId(0))
            .iter()
            .map(|&u| (NodeId(0), u))
            .collect();
        let plan = NetFaultPlan::new(2).with_partition(Partition {
            edges,
            from: 0,
            until: 16,
        });
        let outcome = run_network(
            &scheme,
            &instance,
            &honest,
            &plan,
            &RetryPolicy::default(),
            1 << 14,
        );
        assert!(outcome.all_accepted(), "{:?}", outcome.verdicts);
        assert!(outcome.drops > 0, "partition must have cost frames");
        assert!(outcome.retries > 0, "recovery must have used retransmits");
    }
}
