//! Panic propagation: a panicking task must abort its batch or scope with
//! the *original* payload, without deadlocking the submitter, and leave
//! the pool usable for the next batch.

use locert_par::Pool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

fn payload_str(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string payload>")
}

#[test]
fn chunk_panic_reaches_the_submitter() {
    let pool = Pool::new(4);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.par_chunks(1024, 16, |range| {
            if range.contains(&500) {
                panic!("leaf exploded at 500");
            }
        });
    }))
    .expect_err("batch should propagate the leaf panic");
    assert_eq!(payload_str(&*err), "leaf exploded at 500");

    // The pool survives: the next batch runs to completion.
    let done = AtomicUsize::new(0);
    pool.par_chunks(256, 8, |range| {
        done.fetch_add(range.len(), Ordering::Relaxed);
    });
    assert_eq!(done.load(Ordering::Relaxed), 256);
}

#[test]
fn scope_panic_reaches_the_submitter() {
    let pool = Pool::new(4);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..64 {
                s.spawn(move || {
                    if i == 13 {
                        panic!("task 13 failed");
                    }
                });
            }
        });
    }))
    .expect_err("scope should propagate the task panic");
    assert_eq!(payload_str(&*err), "task 13 failed");
}

#[test]
fn map_collect_panic_does_not_deadlock_inline_or_parallel() {
    for threads in [1, 4] {
        let pool = Pool::new(threads);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_collect(512, |i| {
                if i == 300 {
                    panic!("mapper failed");
                }
                i * 2
            })
        }))
        .expect_err("map panic should propagate");
        assert_eq!(payload_str(&*err), "mapper failed", "threads = {threads}");
    }
}

#[test]
fn scope_body_panic_still_drains_spawned_tasks() {
    let pool = Pool::new(4);
    let ran = AtomicUsize::new(0);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
            panic!("scope body failed");
        });
    }))
    .expect_err("scope body panic should propagate");
    assert_eq!(payload_str(&*err), "scope body failed");
    // Every spawned task either ran or was accounted before the unwind
    // left `scope` — nothing may still be running against freed stack.
    assert_eq!(ran.load(Ordering::SeqCst), 32);
}
