//! Scheduler stress: many more workers than cores, tiny tasks, and an
//! atomic bitmap proving no task is lost or double-run. This is the
//! loom-less stand-in for a model checker: heavy preemption across 64
//! oversubscribed workers exercises the deque/injector/park races the
//! memory-ordering comments in `deque.rs` argue about.
//!
//! CI runs this in a dedicated job (see `par-stress` in ci.yml); locally
//! it is just a normal (slow-ish) test.

use locert_par::Pool;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const WORKERS: usize = 64;
const TASKS: usize = 10_000;

/// One bit per task; `fetch_or` returns the previous word so a double-run
/// (bit already set) is detected exactly.
struct Bitmap {
    words: Vec<AtomicU64>,
    double_runs: AtomicUsize,
}

impl Bitmap {
    fn new(bits: usize) -> Bitmap {
        Bitmap {
            words: (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            double_runs: AtomicUsize::new(0),
        }
    }

    fn mark(&self, i: usize) {
        let prev = self.words[i / 64].fetch_or(1 << (i % 64), Ordering::SeqCst);
        if prev & (1 << (i % 64)) != 0 {
            self.double_runs.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn assert_all_exactly_once(&self, bits: usize) {
        assert_eq!(
            self.double_runs.load(Ordering::SeqCst),
            0,
            "double-run tasks"
        );
        for i in 0..bits {
            assert!(
                self.words[i / 64].load(Ordering::SeqCst) & (1 << (i % 64)) != 0,
                "task {i} lost"
            );
        }
    }
}

#[test]
fn oversubscribed_chunks_run_every_task_exactly_once() {
    let pool = Pool::new(WORKERS);
    let bitmap = Bitmap::new(TASKS);
    // chunk = 1: every index is its own task, maximizing queue traffic.
    pool.par_chunks(TASKS, 1, |range| {
        for i in range {
            bitmap.mark(i);
        }
    });
    bitmap.assert_all_exactly_once(TASKS);
}

#[test]
fn oversubscribed_scope_runs_every_task_exactly_once() {
    let pool = Pool::new(WORKERS);
    let bitmap = Bitmap::new(TASKS);
    pool.scope(|s| {
        for i in 0..TASKS {
            let bitmap = &bitmap;
            s.spawn(move || bitmap.mark(i));
        }
    });
    bitmap.assert_all_exactly_once(TASKS);
}

#[test]
fn repeated_small_batches_survive_churn() {
    let pool = Pool::new(WORKERS);
    for round in 0..200 {
        let n = 1 + (round * 7) % 97;
        let bitmap = Bitmap::new(n);
        pool.par_chunks(n, 1, |range| {
            for i in range {
                bitmap.mark(i);
            }
        });
        bitmap.assert_all_exactly_once(n);
    }
}
