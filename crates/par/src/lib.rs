//! `locert-par` — a deterministic work-stealing parallel runtime.
//!
//! The certification workloads (per-vertex verification, exhaustive
//! certificate sweeps, fault campaigns, lower-bound labeling
//! enumerations) are embarrassingly parallel *and* must stay
//! reproducible: the experiment artifacts (journal JSONL, metrics
//! counters, report tables) are committed baselines compared byte for
//! byte. This crate provides the execution substrate for both demands —
//! a scoped work-stealing thread pool built from `std::thread` and
//! atomics only (the build environment has no crates.io access, so rayon
//! is not an option), plus combinators whose results are byte-identical
//! at any worker count:
//!
//! - [`Pool::par_map_collect`] writes each index's result into its own
//!   output slot, so the collected `Vec` never depends on steal order;
//! - [`Pool::par_reduce_ordered`] folds per-chunk results in canonical
//!   chunk order (the chunk decomposition is a pure function of `n` and
//!   `chunk`, never of the schedule);
//! - [`Pool::par_find_first`] returns the *least*-index match via an
//!   atomic best-index bound, so early exit drains deterministically;
//! - [`split_seed`] derives independent per-chunk RNG seeds from a base
//!   seed and a chunk index (vendored `rand`'s xoshiro/SplitMix stack),
//!   so randomized work is reproducible under any partitioning.
//!
//! Architecture: one fixed-capacity Chase–Lev deque per worker
//! ([`deque`]), a mutex-guarded global injector for external submissions
//! and deque overflow (the one lock in the system; every hot path is
//! deque push/pop/steal), a generation-counted parking lot, and panic
//! propagation that re-raises the first payload on the submitting thread
//! after the batch has fully drained (no deadlock, no lost tasks).
//!
//! Observability: workers maintain `par.worker.tasks`, `par.worker.steals`
//! and `par.worker.parks` counters through `locert-trace`, flushed at
//! park/shutdown boundaries; a disabled subscriber costs one relaxed
//! atomic load at the flush point. These counters describe *scheduling*,
//! which legitimately varies with the worker count — the metrics exporter
//! files them in the non-deterministic section of the dump.
//!
//! Nested parallelism runs inline: a combinator invoked from inside a
//! pool task executes sequentially on the calling worker, which keeps
//! determinism local and makes deadlock impossible by construction.

mod deque;
mod task;

use deque::Deque;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use task::RawTask;

/// Per-worker deque capacity (tasks beyond this spill to the injector).
const DEQUE_CAPACITY: usize = 256;

/// Leaves per worker that [`default_chunk`] aims for: small enough to
/// balance uneven leaf costs by stealing, large enough to amortize the
/// per-task allocation.
const CHUNKS_PER_WORKER: usize = 4;

thread_local! {
    /// `(shared-state address, worker index)` of the pool worker this
    /// thread belongs to; `(0, 0)` on non-worker threads.
    static CURRENT_WORKER: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
    /// Whether this thread is currently executing a pool task (worker
    /// threads, or a submitter helping its own batch). Combinators check
    /// it and run inline, so nesting never re-enters the scheduler.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Runs `task` with [`IN_TASK`] set, so nested combinators inline.
fn run_task(task: RawTask) {
    IN_TASK.with(|f| f.set(true));
    // SAFETY: the task came from a queue, so it is owned and unrun.
    unsafe { task.run() };
    // Worker threads stay marked for their whole life (set again by the
    // worker loop); helper threads unmark so a submitter's *own* frames
    // keep full parallelism between batches.
    IN_TASK.with(|f| f.set(false));
}

struct SleepState {
    /// Wake generation; bumped (under the lock) by every notifier.
    generation: Mutex<u64>,
    condvar: Condvar,
    /// Workers that are parked or about to park (Dekker flag paired with
    /// the SeqCst queue publishes).
    sleepers: AtomicUsize,
}

struct Shared {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<RawTask>>,
    /// Mirror of the injector length so emptiness probes skip the lock.
    injector_len: AtomicUsize,
    sleep: SleepState,
    shutdown: AtomicBool,
}

impl Shared {
    fn push_injector(&self, task: RawTask) {
        let mut q = self.injector.lock().expect("injector");
        q.push_back(task);
        self.injector_len.store(q.len(), Ordering::SeqCst);
        drop(q);
        self.notify();
    }

    fn pop_injector(&self) -> Option<RawTask> {
        if self.injector_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut q = self.injector.lock().expect("injector");
        let task = q.pop_front();
        self.injector_len.store(q.len(), Ordering::SeqCst);
        task
    }

    /// Wakes parked workers if there are any. Publish work *before*
    /// calling this: the SeqCst store(queue)/load(sleepers) pairing
    /// against the worker's store(sleepers)/load(queue) guarantees at
    /// least one side sees the other.
    fn notify(&self) {
        if self.sleep.sleepers.load(Ordering::SeqCst) > 0 {
            let mut generation = self.sleep.generation.lock().expect("sleep lock");
            *generation = generation.wrapping_add(1);
            self.sleep.condvar.notify_all();
        }
    }

    /// Racy work probe used for park decisions only.
    fn any_work(&self) -> bool {
        self.injector_len.load(Ordering::SeqCst) > 0 || self.deques.iter().any(|d| !d.is_empty())
    }

    /// Steals one task from anywhere: injector first, then the deques in
    /// an order seeded by `rotor`. Valid from any thread.
    fn steal_somewhere(&self, rotor: &mut u64) -> Option<RawTask> {
        if let Some(task) = self.pop_injector() {
            return Some(task);
        }
        let n = self.deques.len();
        if n == 0 {
            return None;
        }
        *rotor = rotor.wrapping_mul(6364136223846793005).wrapping_add(1);
        let start = (*rotor >> 33) as usize % n;
        for k in 0..n {
            if let Some(task) = self.deques[(start + k) % n].steal() {
                return Some(task);
            }
        }
        None
    }
}

/// A scoped work-stealing thread pool. See the crate docs for the
/// architecture and the determinism contract.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// A pool with `threads` workers. `threads <= 1` spawns no workers:
    /// every combinator then runs inline on the caller, which is also the
    /// reference schedule the parallel paths must reproduce.
    pub fn new(threads: usize) -> Pool {
        let worker_count = if threads <= 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            deques: (0..worker_count)
                .map(|_| Deque::new(DEQUE_CAPACITY))
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            sleep: SleepState {
                generation: Mutex::new(0),
                condvar: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            },
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..worker_count)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("locert-par-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// The degree of parallelism: worker count, or 1 for an inline pool.
    pub fn threads(&self) -> usize {
        self.workers.len().max(1)
    }

    /// Whether a batch of `n` items should skip the scheduler entirely.
    fn inline(&self, n: usize) -> bool {
        self.workers.is_empty() || n <= 1 || IN_TASK.with(Cell::get)
    }

    /// The default leaf size for a batch of `n` items.
    fn default_chunk(&self, n: usize) -> usize {
        (n / (self.threads() * CHUNKS_PER_WORKER)).max(1)
    }

    fn submit(&self, task: RawTask) {
        let key = Arc::as_ptr(&self.shared) as usize;
        let (current_pool, index) = CURRENT_WORKER.with(Cell::get);
        if current_pool == key {
            match self.shared.deques[index].push(task) {
                Ok(()) => self.shared.notify(),
                Err(task) => self.shared.push_injector(task),
            }
        } else {
            self.shared.push_injector(task);
        }
    }

    /// Runs queued tasks (helping the workers) until `done` holds.
    fn help_until(&self, done: impl Fn() -> bool) {
        let mut rotor = 0x9E3779B97F4A7C15u64;
        let mut idle_spins = 0u32;
        while !done() {
            if let Some(task) = self.shared.steal_somewhere(&mut rotor) {
                run_task(task);
                idle_spins = 0;
            } else if idle_spins < 64 {
                idle_spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Applies `leaf` to every subrange of a canonical decomposition of
    /// `0..n` into pieces of at most `chunk` items. The decomposition
    /// (recursive halving) depends only on `n` and `chunk`, never on the
    /// schedule, so leaf boundaries are reproducible at any worker count.
    ///
    /// Side effects of different leaves may interleave arbitrarily —
    /// deterministic *aggregation* is the job of the combinators built on
    /// top ([`par_map_collect`](Pool::par_map_collect),
    /// [`par_reduce_ordered`](Pool::par_reduce_ordered)).
    ///
    /// # Panics
    ///
    /// Re-raises the first leaf panic on the calling thread after the
    /// whole batch has drained; the remaining leaves are skipped (their
    /// slots are still accounted, so nothing deadlocks).
    pub fn par_chunks(&self, n: usize, chunk: usize, leaf: impl Fn(Range<usize>) + Sync) {
        if n == 0 {
            return;
        }
        let chunk = chunk.max(1);
        if self.inline(n) {
            for range in canonical_leaves(0..n, chunk) {
                leaf(range);
            }
            return;
        }
        let batch = Batch {
            pool: self,
            leaf: &leaf,
            chunk,
            remaining: AtomicUsize::new(n),
            panic: PanicSlot::default(),
        };
        batch.spawn(0..n);
        self.help_until(|| batch.remaining.load(Ordering::SeqCst) == 0);
        batch.panic.rethrow();
    }

    /// Maps `0..n` through `f` into a `Vec`, one indexed output slot per
    /// element: the result is identical to `(0..n).map(f).collect()` at
    /// any worker count.
    pub fn par_map_collect<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        if self.inline(n) {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<MaybeUninit<T>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        let slots = SendPtr(out.as_mut_ptr());
        self.par_chunks(n, self.default_chunk(n), |range| {
            for i in range {
                // SAFETY: leaf ranges are disjoint, i < n, and the vector
                // outlives the batch (par_chunks blocks until drained).
                unsafe { (*slots.slot(i)).write(f(i)) };
            }
        });
        // On a leaf panic par_chunks re-raised and we never get here; the
        // MaybeUninit vector then drops without touching the (partially
        // initialized) payloads, leaking them — safe, and the price of
        // not tracking per-slot initialization.
        let mut out = std::mem::ManuallyDrop::new(out);
        // SAFETY: every slot 0..n was written by exactly one leaf.
        unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), n, out.capacity()) }
    }

    /// Ordered reduction: maps each canonical chunk of `0..n` through
    /// `map`, then folds the chunk results left to right in chunk order.
    /// Both the chunk decomposition and the fold order are pure functions
    /// of `(n, chunk)`, so for any `map`/`fold` — associative or not,
    /// floating-point or not — the result is byte-identical at any worker
    /// count. Returns `None` when `n == 0`.
    pub fn par_reduce_ordered<T: Send>(
        &self,
        n: usize,
        chunk: usize,
        map: impl Fn(Range<usize>) -> T + Sync,
        fold: impl Fn(T, T) -> T,
    ) -> Option<T> {
        let leaves: Vec<Range<usize>> = canonical_leaves(0..n, chunk.max(1)).collect();
        let mapped = self.par_map_collect(leaves.len(), |i| map(leaves[i].clone()));
        mapped.into_iter().reduce(fold)
    }

    /// Finds the match with the **least index**: semantically identical
    /// to `(0..n).find_map(...)` at any worker count. Workers prune
    /// ranges above the best index found so far (shared atomic bound), so
    /// the early exit stays deterministic *and* cheap.
    pub fn par_find_first<T: Send>(
        &self,
        n: usize,
        chunk: usize,
        f: impl Fn(usize) -> Option<T> + Sync,
    ) -> Option<(usize, T)> {
        if self.inline(n) {
            return (0..n).find_map(|i| f(i).map(|t| (i, t)));
        }
        let best = AtomicUsize::new(usize::MAX);
        let found: Mutex<Option<(usize, T)>> = Mutex::new(None);
        self.par_chunks(n, chunk.max(1), |range| {
            if range.start > best.load(Ordering::Relaxed) {
                return;
            }
            for i in range {
                if i > best.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(t) = f(i) {
                    let mut slot = found.lock().expect("find-first slot");
                    if i < best.load(Ordering::Relaxed) {
                        best.store(i, Ordering::Relaxed);
                        *slot = Some((i, t));
                    }
                    return;
                }
            }
        });
        found.into_inner().expect("find-first slot")
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing `'scope` data
    /// may be spawned; returns only after every spawned task finished.
    ///
    /// # Panics
    ///
    /// A panic in `f` or in any spawned task is re-raised here after the
    /// scope has fully drained (`f`'s payload wins when both happen).
    pub fn scope<'scope>(&self, f: impl FnOnce(&Scope<'scope, '_>)) {
        let scope = Scope {
            pool: self,
            remaining: AtomicUsize::new(0),
            panic: PanicSlot::default(),
            _scope: PhantomData,
        };
        let direct = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until(|| scope.remaining.load(Ordering::SeqCst) == 0);
        if let Err(payload) = direct {
            resume_unwind(payload);
        }
        scope.panic.rethrow();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut generation = self.shared.sleep.generation.lock().expect("sleep lock");
            *generation = generation.wrapping_add(1);
            self.shared.sleep.condvar.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // A clean shutdown leaves no queued tasks (batches drain before
        // returning); dispose defensively anyway.
        while let Some(task) = self.shared.pop_injector() {
            // SAFETY: the task was never run.
            unsafe { task.dispose() };
        }
    }
}

/// First-panic-wins payload slot shared by a batch or scope.
#[derive(Default)]
struct PanicSlot {
    poisoned: AtomicBool,
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl PanicSlot {
    fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    fn set(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.payload.lock().expect("panic slot");
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.poisoned.store(true, Ordering::SeqCst);
    }

    fn rethrow(&self) {
        if let Some(payload) = self.payload.lock().expect("panic slot").take() {
            resume_unwind(payload);
        }
    }
}

/// One `par_chunks` batch: the shared context its range tasks reference.
struct Batch<'f> {
    pool: &'f Pool,
    leaf: &'f (dyn Fn(Range<usize>) + Sync),
    chunk: usize,
    /// Indices not yet completed; the submitter blocks until zero.
    remaining: AtomicUsize,
    panic: PanicSlot,
}

impl Batch<'_> {
    fn spawn(&self, range: Range<usize>) {
        let this = SendRef(self);
        // SAFETY: the submitter blocks in `par_chunks` until `remaining`
        // hits zero, which requires this task (and all its splits) to
        // have run — so `self` outlives the task.
        let task = unsafe { RawTask::new(move || this.0.execute(range)) };
        self.pool.submit(task);
    }

    fn execute(&self, mut range: Range<usize>) {
        // Split the right half off for stealing until the leaf is small
        // enough; the decomposition matches `canonical_leaves` exactly.
        while range.len() > self.chunk {
            let mid = range.start + range.len().div_ceil(2);
            self.spawn(mid..range.end);
            range = range.start..mid;
        }
        if !self.panic.poisoned() {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.leaf)(range.clone()))) {
                self.panic.set(payload);
            }
        }
        self.remaining.fetch_sub(range.len(), Ordering::SeqCst);
    }
}

/// The canonical leaf decomposition of `range`: recursive halving (right
/// half split off first) until each piece holds at most `chunk` items,
/// yielded in ascending order. This is exactly the set of leaves
/// [`Pool::par_chunks`] executes, whatever the schedule.
fn canonical_leaves(range: Range<usize>, chunk: usize) -> impl Iterator<Item = Range<usize>> {
    let mut stack = vec![range];
    std::iter::from_fn(move || {
        let mut range = stack.pop()?;
        while range.len() > chunk {
            let mid = range.start + range.len().div_ceil(2);
            stack.push(mid..range.end);
            range = range.start..mid;
        }
        Some(range)
    })
}

/// A spawn handle tied to a [`Pool::scope`] invocation; tasks may borrow
/// anything that outlives `'scope`.
pub struct Scope<'scope, 'pool> {
    pool: &'pool Pool,
    remaining: AtomicUsize,
    panic: PanicSlot,
    /// Invariant over `'scope` (the usual scoped-spawn variance guard).
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns `f` onto the pool. On an inline pool the task runs
    /// immediately; panics are captured either way and re-raised when the
    /// scope closes.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'scope) {
        self.remaining.fetch_add(1, Ordering::SeqCst);
        let this = SendRef(self);
        let body = move || {
            let scope = this.0;
            if !scope.panic.poisoned() {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    scope.panic.set(payload);
                }
            }
            scope.remaining.fetch_sub(1, Ordering::SeqCst);
        };
        if self.pool.workers.is_empty() {
            body();
        } else {
            // SAFETY: `Pool::scope` blocks until `remaining` is zero, so
            // the scope (and everything `f` borrows, which outlives
            // `'scope`) outlives the task.
            let task = unsafe { RawTask::new(body) };
            self.pool.submit(task);
        }
    }
}

/// A `Send + Sync` shared reference for moving borrows into erased tasks.
struct SendRef<'a, T: Sync + ?Sized>(&'a T);
impl<T: Sync + ?Sized> Clone for SendRef<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Sync + ?Sized> Copy for SendRef<'_, T> {}

/// A `Send + Sync` raw pointer for indexed output slots. (Methods take
/// `self` so closures capture the wrapper, not the raw-pointer field —
/// edition-2021 disjoint capture would otherwise unwrap the `Sync` shell.)
struct SendPtr<T>(*mut MaybeUninit<T>);

impl<T> SendPtr<T> {
    fn slot(self, i: usize) -> *mut MaybeUninit<T> {
        self.0.wrapping_add(i)
    }
}
// SAFETY: leaves write disjoint indices; the allocation outlives the batch.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

fn worker_loop(shared: &Shared, index: usize) {
    CURRENT_WORKER.with(|c| c.set((shared as *const Shared as usize, index)));
    IN_TASK.with(|f| f.set(true));
    let mut rotor = 0x9E3779B97F4A7C15u64 ^ (index as u64).wrapping_mul(0xA24BAED4963EE407);
    let mut tasks_run = 0u64;
    let mut steals = 0u64;
    let flush = |tasks_run: &mut u64, steals: &mut u64| {
        if locert_trace::enabled() {
            if *tasks_run > 0 {
                locert_trace::add("par.worker.tasks", *tasks_run);
            }
            if *steals > 0 {
                locert_trace::add("par.worker.steals", *steals);
            }
        }
        *tasks_run = 0;
        *steals = 0;
    };
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Some(task) = shared.deques[index].pop() {
            // Re-assert: executing a task may have run `run_task` frames
            // that cleared the flag on their way out.
            IN_TASK.with(|f| f.set(true));
            tasks_run += 1;
            // SAFETY: popped tasks are owned and unrun.
            unsafe { task.run() };
            continue;
        }
        let stolen = shared
            .pop_injector()
            .or_else(|| steal_peers(shared, index, &mut rotor));
        if let Some(task) = stolen {
            IN_TASK.with(|f| f.set(true));
            tasks_run += 1;
            steals += 1;
            // SAFETY: stolen tasks are owned and unrun.
            unsafe { task.run() };
            continue;
        }
        // Nothing anywhere: park. The generation is read under the lock
        // *before* registering as a sleeper; a notifier bumps it under
        // the same lock, so either we see new work in the re-check below
        // or the notifier sees `sleepers > 0` and blocks on the lock we
        // hold until the wait releases it.
        flush(&mut tasks_run, &mut steals);
        let mut generation = shared.sleep.generation.lock().expect("sleep lock");
        let seen = *generation;
        shared.sleep.sleepers.fetch_add(1, Ordering::SeqCst);
        if shared.shutdown.load(Ordering::SeqCst) || shared.any_work() {
            shared.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        if locert_trace::enabled() {
            locert_trace::add("par.worker.parks", 1);
        }
        while *generation == seen && !shared.shutdown.load(Ordering::SeqCst) {
            generation = shared
                .sleep
                .condvar
                .wait(generation)
                .expect("sleep condvar");
        }
        shared.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
    flush(&mut tasks_run, &mut steals);
}

fn steal_peers(shared: &Shared, me: usize, rotor: &mut u64) -> Option<RawTask> {
    let n = shared.deques.len();
    *rotor = rotor.wrapping_mul(6364136223846793005).wrapping_add(1);
    let start = (*rotor >> 33) as usize % n;
    for k in 0..n {
        let j = (start + k) % n;
        if j == me {
            continue;
        }
        if let Some(task) = shared.deques[j].steal() {
            return Some(task);
        }
    }
    None
}

/// Derives an independent RNG seed for chunk `index` of a computation
/// seeded by `seed`: feeds both through the vendored `rand` SplitMix64 →
/// xoshiro256++ pipeline so sibling chunks get decorrelated streams. Pure
/// function — reproducible under any partitioning of the work.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mixed = seed
        ^ index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x243F_6A88_85A3_08D3);
    StdRng::seed_from_u64(mixed).next_u64()
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();
/// Thread count requested by [`configure_threads`] before first use.
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// Sets the global pool's worker count. Must run before the first
/// [`global`] call (e.g. while parsing CLI flags); returns `false` if the
/// pool already exists, in which case the request is ignored.
pub fn configure_threads(threads: usize) -> bool {
    if GLOBAL.get().is_some() {
        return false;
    }
    REQUESTED.store(threads.max(1), Ordering::SeqCst);
    true
}

/// The process-wide pool. Thread count resolution order:
/// [`configure_threads`] (the `--threads` flag), the `LOCERT_THREADS`
/// environment variable, then `std::thread::available_parallelism`.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let requested = REQUESTED.load(Ordering::SeqCst);
        let threads = if requested > 0 {
            requested
        } else if let Some(n) = env_threads() {
            n
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        Pool::new(threads)
    })
}

/// `LOCERT_THREADS` as a positive integer, if set and well-formed.
fn env_threads() -> Option<usize> {
    let raw = std::env::var("LOCERT_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_collect_matches_sequential_at_any_width() {
        let expect: Vec<u64> = (0..1000).map(|i| (i as u64) * 3 + 1).collect();
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let got = pool.par_map_collect(1000, |i| (i as u64) * 3 + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn chunks_cover_every_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..5000).map(|_| AtomicU64::new(0)).collect();
        pool.par_chunks(5000, 64, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn canonical_leaves_partition_the_range() {
        for (n, chunk) in [
            (0usize, 3usize),
            (1, 1),
            (17, 4),
            (100, 7),
            (64, 64),
            (5, 100),
        ] {
            let leaves: Vec<_> = canonical_leaves(0..n, chunk).collect();
            let mut next = 0;
            for leaf in &leaves {
                assert_eq!(leaf.start, next, "gap at n={n} chunk={chunk}");
                assert!(leaf.len() <= chunk && (!leaf.is_empty() || n == 0));
                next = leaf.end;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn ordered_reduction_is_schedule_independent() {
        // A deliberately non-associative fold: f64 sum of reciprocals.
        // Identical bits demand identical chunking and fold order.
        let reduce = |pool: &Pool| {
            pool.par_reduce_ordered(
                10_000,
                128,
                |range| range.map(|i| 1.0f64 / (i + 1) as f64).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let reference = reduce(&Pool::new(1));
        for threads in [2, 4, 9] {
            let got = reduce(&Pool::new(threads));
            assert_eq!(got.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn find_first_returns_least_index() {
        // Matches at many indices; the least (97) must win always.
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            for _ in 0..20 {
                let got = pool.par_find_first(4096, 32, |i| (i % 97 == 0 && i > 0).then_some(i));
                assert_eq!(got, Some((97, 97)), "threads = {threads}");
            }
        }
    }

    #[test]
    fn scope_runs_borrowing_tasks() {
        let pool = Pool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let sums: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.scope(|s| {
            for (part, slot) in data.chunks(25).zip(&sums) {
                s.spawn(move || {
                    slot.fetch_add(part.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        let total: u64 = sums.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(total, (0..100).sum::<u64>());
    }

    #[test]
    fn split_seed_is_pure_and_decorrelated() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
        let streams: std::collections::BTreeSet<u64> =
            (0..100).map(|i| split_seed(42, i)).collect();
        assert_eq!(streams.len(), 100, "seed collision across chunks");
        assert_ne!(split_seed(42, 0), split_seed(43, 0));
    }

    #[test]
    fn nested_combinators_run_inline() {
        let pool = Pool::new(4);
        let out = pool.par_map_collect(64, |i| {
            // Nested call from inside a task: must not deadlock.
            let inner = global().par_map_collect(8, |j| j * i);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..64).map(|i| (0..8).map(|j| j * i).sum()).collect();
        assert_eq!(out, expect);
    }
}
