//! Type-erased heap tasks.
//!
//! Deque and injector slots hold one machine word: a raw pointer to a
//! heap [`Header`] whose first fields are the run/dispose function
//! pointers for the concrete closure behind it. Erasing through a thin
//! pointer (rather than a fat `Box<dyn FnOnce>`) is what lets the
//! Chase–Lev buffer store tasks in single atomic words.

use std::mem::ManuallyDrop;

/// The erased prefix of every task allocation.
pub(crate) struct Header {
    /// Runs the closure and frees the allocation.
    run: unsafe fn(*mut Header),
    /// Frees the allocation without running (shutdown drain).
    dispose: unsafe fn(*mut Header),
}

#[repr(C)]
struct TaskBox<F> {
    header: Header,
    f: ManuallyDrop<F>,
}

/// An owned, type-erased task. Exactly one of [`run`](RawTask::run) or
/// [`dispose`](RawTask::dispose) must eventually be called.
pub(crate) struct RawTask(pub(crate) *mut Header);

// SAFETY: construction requires `F: Send`, so the erased closure may be
// executed on any thread.
unsafe impl Send for RawTask {}

impl RawTask {
    /// Boxes `f` behind an erased header pointer.
    ///
    /// # Safety
    ///
    /// `f` may borrow non-`'static` data; the caller must guarantee that
    /// everything it borrows outlives the task's execution (the pool's
    /// batch latch provides this: submitters block until every task of
    /// their batch has run).
    pub(crate) unsafe fn new<F: FnOnce() + Send>(f: F) -> RawTask {
        unsafe fn run<F: FnOnce()>(ptr: *mut Header) {
            let mut b = Box::from_raw(ptr.cast::<TaskBox<F>>());
            let f = ManuallyDrop::take(&mut b.f);
            drop(b);
            f();
        }
        unsafe fn dispose<F>(ptr: *mut Header) {
            let mut b = Box::from_raw(ptr.cast::<TaskBox<F>>());
            ManuallyDrop::drop(&mut b.f);
            drop(b);
        }
        let b = Box::new(TaskBox {
            header: Header {
                run: run::<F>,
                dispose: dispose::<F>,
            },
            f: ManuallyDrop::new(f),
        });
        RawTask(Box::into_raw(b).cast::<Header>())
    }

    /// Runs the closure and frees the allocation.
    ///
    /// # Safety
    ///
    /// The pointer must have come from [`RawTask::new`] and not have been
    /// run or disposed already.
    pub(crate) unsafe fn run(self) {
        ((*self.0).run)(self.0);
    }

    /// Frees the allocation without running the closure.
    ///
    /// # Safety
    ///
    /// Same contract as [`RawTask::run`].
    pub(crate) unsafe fn dispose(self) {
        ((*self.0).dispose)(self.0);
    }
}
