//! A fixed-capacity Chase–Lev work-stealing deque.
//!
//! One owner thread pushes and pops at the bottom; any thread steals from
//! the top. This is the Lê–Pop–Cohen–Nardelli weak-memory formulation of
//! the Chase–Lev deque, with the buffer-growth path replaced by an
//! explicit `Err` on overflow — the pool routes overflow to its global
//! injector instead, which keeps the hot structure allocation-free and
//! the unsafe surface small.
//!
//! Slots store erased task pointers ([`crate::task::RawTask`]), one
//! machine word each, so the circular buffer is a plain array of
//! `AtomicPtr`.

use crate::task::{Header, RawTask};
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

/// Per-worker deque. Capacity is fixed at construction (a power of two).
pub(crate) struct Deque {
    /// Next index to steal from. Monotonically increasing.
    top: AtomicIsize,
    /// Next index to push at. Owner-written.
    bottom: AtomicIsize,
    buffer: Box<[AtomicPtr<Header>]>,
    mask: isize,
}

// SAFETY: all cross-thread access goes through the atomics below with the
// orderings of the published Chase–Lev proof; the buffer slots are only
// read at indices handed out by those atomics.
unsafe impl Sync for Deque {}
unsafe impl Send for Deque {}

impl Deque {
    /// An empty deque holding up to `capacity` tasks (rounded up to a
    /// power of two).
    pub(crate) fn new(capacity: usize) -> Deque {
        let cap = capacity.next_power_of_two().max(2);
        let buffer = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer,
            mask: cap as isize - 1,
        }
    }

    /// Pushes at the bottom. Owner thread only. Returns the task back
    /// when the buffer is full (caller spills to the injector).
    ///
    /// The `bottom` publish is `SeqCst` rather than the textbook
    /// `Release`: the pool's sleep/wake handshake needs pushes to be
    /// ordered before the subsequent `sleepers` load (Dekker pattern), so
    /// work made visible here is never missed by a parking worker.
    pub(crate) fn push(&self, task: RawTask) -> Result<(), RawTask> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) > self.mask {
            return Err(task);
        }
        self.buffer[(b & self.mask) as usize].store(task.0, Ordering::Relaxed);
        self.bottom.store(b.wrapping_add(1), Ordering::SeqCst);
        Ok(())
    }

    /// Pops from the bottom. Owner thread only.
    pub(crate) fn pop(&self) -> Option<RawTask> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: restore bottom.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        let ptr = self.buffer[(b & self.mask) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the stealers for it via `top`.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return won.then_some(RawTask(ptr));
        }
        Some(RawTask(ptr))
    }

    /// Steals from the top. Any thread. `None` means empty *or* lost a
    /// race — callers treat both as "try elsewhere".
    pub(crate) fn steal(&self) -> Option<RawTask> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let ptr = self.buffer[(t & self.mask) as usize].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        Some(RawTask(ptr))
    }

    /// Whether the deque looks empty right now (racy; used only as a
    /// park-decision probe, where a false "non-empty" costs one extra
    /// scan and a false "empty" is prevented by the SeqCst push/probe
    /// pairing).
    pub(crate) fn is_empty(&self) -> bool {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        t >= b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering as AtomicOrdering};
    use std::sync::Arc;

    /// Runs a generated owner script (pushes and pops) against a deque
    /// with a live stealer thread, executing every task obtained from
    /// either end, and checks each pushed task ran exactly once — the
    /// multiset of tasks is preserved under real interleavings.
    fn run_script(script: &[u8]) {
        let deque = Arc::new(Deque::new(16));
        let runs: Arc<Vec<AtomicU32>> =
            Arc::new((0..script.len()).map(|_| AtomicU32::new(0)).collect());
        let stop = Arc::new(AtomicBool::new(false));

        let stealer = {
            let deque = Arc::clone(&deque);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(AtomicOrdering::SeqCst) {
                    if let Some(task) = deque.steal() {
                        // SAFETY: stolen tasks are owned and unrun.
                        unsafe { task.run() };
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };

        let mut pushed = Vec::new();
        for (id, op) in script.iter().enumerate() {
            if *op < 2 {
                let runs = Arc::clone(&runs);
                // SAFETY: the closure owns its captures (Arc), so it may
                // run at any time on any thread.
                let task = unsafe {
                    RawTask::new(move || {
                        runs[id].fetch_add(1, AtomicOrdering::SeqCst);
                    })
                };
                match deque.push(task) {
                    Ok(()) => pushed.push(id),
                    // Full (possible if the stealer is starved): the pool
                    // would spill to the injector; here run inline.
                    Err(task) => {
                        pushed.push(id);
                        // SAFETY: push handed the task back unrun.
                        unsafe { task.run() };
                    }
                }
            } else if let Some(task) = deque.pop() {
                // SAFETY: popped tasks are owned and unrun.
                unsafe { task.run() };
            }
        }
        // Drain whatever the stealer didn't take.
        while let Some(task) = deque.pop() {
            // SAFETY: popped tasks are owned and unrun.
            unsafe { task.run() };
        }
        stop.store(true, AtomicOrdering::SeqCst);
        stealer.join().expect("stealer thread");

        for &id in &pushed {
            assert_eq!(
                runs[id].load(AtomicOrdering::SeqCst),
                1,
                "task {id} lost or double-run (script {script:?})"
            );
        }
    }

    proptest! {
        #[test]
        fn interleavings_preserve_task_multiset(script in prop::collection::vec(0u8..3, 1..120)) {
            run_script(&script);
        }
    }

    #[test]
    fn overflow_hands_the_task_back() {
        let deque = Deque::new(2);
        let mut kept = Vec::new();
        let mut rejected = 0;
        for _ in 0..5 {
            // SAFETY: disposed below without running — no captures run.
            let task = unsafe { RawTask::new(|| {}) };
            match deque.push(task) {
                Ok(()) => kept.push(()),
                Err(task) => {
                    rejected += 1;
                    // SAFETY: push handed the task back unrun.
                    unsafe { task.dispose() };
                }
            }
        }
        assert_eq!(kept.len(), 2);
        assert_eq!(rejected, 3);
        while let Some(task) = deque.pop() {
            // SAFETY: popped tasks are owned and unrun.
            unsafe { task.dispose() };
        }
        assert!(deque.is_empty());
    }
}
