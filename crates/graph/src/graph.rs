//! Simple undirected graphs.
//!
//! [`Graph`] is the single graph type used across the workspace: simple
//! (no parallel edges), loopless, undirected, with vertices indexed by
//! [`NodeId`] in `0..n`. Construction goes through [`GraphBuilder`], which
//! validates edges, or through the convenience constructor
//! [`Graph::from_edges`].

use crate::node::NodeId;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Error produced when constructing an invalid graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// The number of vertices in the graph under construction.
        n: usize,
    },
    /// An edge joins a vertex to itself.
    SelfLoop {
        /// The vertex carrying the loop.
        node: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} vertices")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at vertex {node}"),
        }
    }
}

impl Error for GraphError {}

/// A simple, undirected, loopless graph in CSR (compressed sparse row)
/// form.
///
/// Vertices are `NodeId(0) .. NodeId(n-1)`. Adjacency is stored as two
/// flat arrays: `offsets` (length `n + 1`) and `neighbors` (length `2m`),
/// with the neighbors of `v` at `neighbors[offsets[v]..offsets[v + 1]]`,
/// sorted and deduplicated. Iteration order is deterministic and
/// [`Graph::has_edge`] is a binary search; the flat layout keeps neighbor
/// scans on one cache line run instead of chasing per-vertex heap
/// allocations.
///
/// # Example
///
/// ```
/// use locert_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert!(g.has_edge(1.into(), 2.into()));
/// assert!(!g.has_edge(0.into(), 3.into()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors`; length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; length `2 * num_edges`.
    neighbors: Vec<NodeId>,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges are silently merged (the graph is simple).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if an edge joins a vertex to itself.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Iterator over all vertices in increasing index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId)
    }

    /// Sorted neighbors of `v`, as a slice of the shared CSR array.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v.0]..self.offsets[v.0 + 1]]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.0 + 1] - self.offsets[v.0]
    }

    /// Whether the edge `{u, v}` is present. `O(log deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all edges `(u, v)` with `u < v`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u < v)
                .map(move |&v| (u, v))
        })
    }

    /// Whether the graph is connected. The empty graph is not connected
    /// (the paper only considers non-empty connected graphs).
    pub fn is_connected(&self) -> bool {
        crate::traversal::is_connected(self)
    }

    /// Whether the graph is a tree (connected with `n - 1` edges).
    pub fn is_tree(&self) -> bool {
        self.num_nodes() >= 1 && self.num_edges() == self.num_nodes() - 1 && self.is_connected()
    }

    /// The subgraph induced by `keep`, together with the mapping from new
    /// indices to old indices.
    ///
    /// Vertices of the result are renumbered `0..keep.len()` following the
    /// sorted order of `keep`; the returned vector maps each new [`NodeId`]
    /// to its original one.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let sorted: BTreeSet<NodeId> = keep.iter().copied().collect();
        let old_of_new: Vec<NodeId> = sorted.iter().copied().collect();
        let mut new_of_old = vec![usize::MAX; self.num_nodes()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old.0] = new;
        }
        let mut b = GraphBuilder::new(old_of_new.len());
        for &old_u in &old_of_new {
            for &old_v in self.neighbors(old_u) {
                if old_u < old_v && sorted.contains(&old_v) {
                    b.add_edge(new_of_old[old_u.0], new_of_old[old_v.0])
                        .expect("induced edges are valid by construction");
                }
            }
        }
        (b.build(), old_of_new)
    }

    /// Disjoint union of two graphs; vertices of `other` are shifted by
    /// `self.num_nodes()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let off = self.num_nodes();
        let mut b = GraphBuilder::new(off + other.num_nodes());
        for (u, v) in self.edges() {
            b.add_edge(u.0, v.0).expect("valid");
        }
        for (u, v) in other.edges() {
            b.add_edge(u.0 + off, v.0 + off).expect("valid");
        }
        b.build()
    }

    /// Returns a copy of this graph with the additional `edges`.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::from_edges`].
    pub fn with_edges<I>(&self, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = GraphBuilder::new(self.num_nodes());
        for (u, v) in self.edges() {
            b.add_edge(u.0, v.0)?;
        }
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }
}

/// Incremental, validating builder for [`Graph`].
///
/// # Example
///
/// ```
/// use locert_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), locert_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    adj: Vec<BTreeSet<NodeId>>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Number of vertices of the graph under construction.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds the undirected edge `{u, v}`. Adding an existing edge is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<&mut Self, GraphError> {
        let n = self.adj.len();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.adj[u].insert(NodeId(v));
        self.adj[v].insert(NodeId(u));
        Ok(self)
    }

    /// Appends a fresh isolated vertex and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(BTreeSet::new());
        NodeId(self.adj.len() - 1)
    }

    /// Finalizes the graph, flattening the per-vertex sets into CSR form.
    pub fn build(self) -> Graph {
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        offsets.push(0);
        let total: usize = self.adj.iter().map(BTreeSet::len).sum();
        let mut neighbors = Vec::with_capacity(total);
        for s in self.adj {
            neighbors.extend(s);
            offsets.push(neighbors.len());
        }
        Graph {
            offsets,
            neighbors,
            num_edges: total / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_connected());
    }

    #[test]
    fn from_edges_dedups() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn self_loop_rejected() {
        assert_eq!(
            Graph::from_edges(2, [(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            Graph::from_edges(2, [(0, 2)]),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(4, [(2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(g.degree(NodeId(2)), 3);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn edges_iterates_once_per_edge() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], (NodeId(0), NodeId(1)));
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn is_tree_recognizes_paths_and_rejects_cycles() {
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(path.is_tree());
        let cycle = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!cycle.is_tree());
        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_tree());
    }

    #[test]
    fn single_vertex_is_tree() {
        let g = Graph::empty(1);
        assert!(g.is_connected());
        assert!(g.is_tree());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        // Path 0-1-2-3, keep {0, 2, 3}: edge 2-3 survives as 1-2.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let (h, map) = g.induced_subgraph(&[NodeId(3), NodeId(0), NodeId(2)]);
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(map, vec![NodeId(0), NodeId(2), NodeId(3)]);
        assert!(h.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = Graph::from_edges(2, [(0, 1)]).unwrap();
        let b = Graph::from_edges(3, [(0, 2)]).unwrap();
        let u = a.disjoint_union(&b);
        assert_eq!(u.num_nodes(), 5);
        assert_eq!(u.num_edges(), 2);
        assert!(u.has_edge(NodeId(0), NodeId(1)));
        assert!(u.has_edge(NodeId(2), NodeId(4)));
    }

    #[test]
    fn with_edges_extends() {
        let a = Graph::from_edges(3, [(0, 1)]).unwrap();
        let b = a.with_edges([(1, 2)]).unwrap();
        assert_eq!(b.num_edges(), 2);
        assert!(b.is_tree());
    }

    #[test]
    fn builder_add_node() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, NodeId(1));
        b.add_edge(0, 1).unwrap();
        assert!(b.build().is_tree());
    }
}
