//! Canonical forms and isomorphism for trees.
//!
//! The AHU (Aho–Hopcroft–Ullman) canonical code assigns every rooted tree a
//! string over `{ '(', ')' }` such that two rooted trees are isomorphic if
//! and only if their codes are equal. Unrooted tree isomorphism reduces to
//! the rooted case by canonically rooting at the [`center`].
//!
//! These are used by the fixed-point-free-automorphism machinery of
//! Theorem 2.3 and by the tree enumeration of [`crate::enumerate`].

use crate::graph::Graph;
use crate::node::NodeId;
use crate::rooted::RootedTree;

/// The AHU canonical code of the subtree of `t` rooted at `v`.
///
/// Two rooted trees are isomorphic iff their root codes are equal. Codes
/// are balanced-parenthesis strings: a leaf is `()`, an internal vertex is
/// `(` + sorted child codes + `)`.
pub fn ahu_code_at(t: &RootedTree, v: NodeId) -> String {
    // Iterative over postorder to avoid recursion depth issues on paths.
    let n = t.num_nodes();
    let mut in_subtree = vec![false; n];
    for u in t.subtree(v) {
        in_subtree[u.0] = true;
    }
    let mut code: Vec<Option<String>> = vec![None; n];
    for u in t.postorder() {
        if !in_subtree[u.0] {
            continue;
        }
        let mut kids: Vec<String> = t
            .children(u)
            .iter()
            .map(|c| code[c.0].take().expect("postorder: children done first"))
            .collect();
        kids.sort();
        let mut s = String::with_capacity(2 + kids.iter().map(String::len).sum::<usize>());
        s.push('(');
        for k in &kids {
            s.push_str(k);
        }
        s.push(')');
        code[u.0] = Some(s);
    }
    code[v.0].take().expect("v's code was computed")
}

/// The AHU canonical code of the whole rooted tree.
pub fn ahu_code(t: &RootedTree) -> String {
    ahu_code_at(t, t.root())
}

/// The center of a tree-shaped graph: one or two adjacent vertices that
/// minimize eccentricity, computed by iteratively peeling leaves.
///
/// Returns `None` if `g` is not a tree.
pub fn center(g: &Graph) -> Option<Vec<NodeId>> {
    if !g.is_tree() {
        return None;
    }
    let n = g.num_nodes();
    if n <= 2 {
        return Some(g.nodes().collect());
    }
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut layer: Vec<NodeId> = g.nodes().filter(|&v| degree[v.0] == 1).collect();
    let mut remaining = n;
    while remaining > 2 {
        let mut next = Vec::new();
        for &leaf in &layer {
            removed[leaf.0] = true;
            remaining -= 1;
            for &u in g.neighbors(leaf) {
                if !removed[u.0] {
                    degree[u.0] -= 1;
                    if degree[u.0] == 1 {
                        next.push(u);
                    }
                }
            }
        }
        layer = next;
    }
    let mut centers: Vec<NodeId> = g.nodes().filter(|&v| !removed[v.0]).collect();
    centers.sort();
    Some(centers)
}

/// A canonical code for an *unrooted* tree: root at the center (for a
/// two-vertex center, take the lexicographically smaller of the two rooted
/// codes, tagged with the center arity so a path of 2 and a single edge
/// rooted differently cannot collide).
///
/// Two trees are isomorphic iff their unrooted codes are equal. Returns
/// `None` if `g` is not a tree.
pub fn unrooted_code(g: &Graph) -> Option<String> {
    let c = center(g)?;
    match c.as_slice() {
        [v] => {
            let t = RootedTree::from_tree(g, *v).expect("center of a tree roots it");
            Some(format!("1{}", ahu_code(&t)))
        }
        [u, v] => {
            let tu = RootedTree::from_tree(g, *u).expect("valid root");
            let tv = RootedTree::from_tree(g, *v).expect("valid root");
            let cu = ahu_code(&tu);
            let cv = ahu_code(&tv);
            Some(format!("2{}", if cu <= cv { cu } else { cv }))
        }
        _ => unreachable!("a tree center has one or two vertices"),
    }
}

/// Whether two rooted trees are isomorphic (as rooted trees).
pub fn rooted_isomorphic(a: &RootedTree, b: &RootedTree) -> bool {
    a.num_nodes() == b.num_nodes() && ahu_code(a) == ahu_code(b)
}

/// Whether two tree-shaped graphs are isomorphic (as unrooted trees).
///
/// Returns `None` if either graph is not a tree.
pub fn tree_isomorphic(a: &Graph, b: &Graph) -> Option<bool> {
    Some(unrooted_code(a)? == unrooted_code(b)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rooted(g: &Graph, r: usize) -> RootedTree {
        RootedTree::from_tree(g, NodeId(r)).unwrap()
    }

    #[test]
    fn ahu_leaf_and_star() {
        let single = Graph::empty(1);
        assert_eq!(ahu_code(&rooted(&single, 0)), "()");
        let star = generators::star(4);
        assert_eq!(ahu_code(&rooted(&star, 0)), "(()()())");
    }

    #[test]
    fn ahu_sorts_children() {
        // Root 0 with children: a leaf (1) and a path of two (2-3). The code
        // must not depend on child insertion order.
        let g1 = Graph::from_edges(4, [(0, 1), (0, 2), (2, 3)]).unwrap();
        let g2 = Graph::from_edges(4, [(0, 2), (0, 1), (1, 3)]).unwrap();
        assert_eq!(ahu_code(&rooted(&g1, 0)), ahu_code(&rooted(&g2, 0)));
    }

    #[test]
    fn rooted_isomorphism_depends_on_root() {
        let g = generators::path(3);
        let end = rooted(&g, 0);
        let mid = rooted(&g, 1);
        assert!(!rooted_isomorphic(&end, &mid));
        let other_end = rooted(&g, 2);
        assert!(rooted_isomorphic(&end, &other_end));
    }

    #[test]
    fn center_of_paths() {
        assert_eq!(center(&generators::path(5)).unwrap(), vec![NodeId(2)]);
        assert_eq!(
            center(&generators::path(4)).unwrap(),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(center(&generators::path(1)).unwrap(), vec![NodeId(0)]);
        assert_eq!(
            center(&generators::path(2)).unwrap(),
            vec![NodeId(0), NodeId(1)]
        );
    }

    #[test]
    fn center_of_star_is_hub() {
        assert_eq!(center(&generators::star(9)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn center_rejects_non_trees() {
        assert!(center(&generators::cycle(5)).is_none());
    }

    #[test]
    fn unrooted_isomorphism_relabeling() {
        // The same tree with two different labelings.
        let a = Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let b = Graph::from_edges(5, [(4, 3), (3, 2), (3, 1), (1, 0)]).unwrap();
        assert_eq!(tree_isomorphic(&a, &b), Some(true));
    }

    #[test]
    fn unrooted_non_isomorphic() {
        let path = generators::path(4);
        let star = generators::star(4);
        assert_eq!(tree_isomorphic(&path, &star), Some(false));
    }

    #[test]
    fn unrooted_code_distinguishes_center_arity() {
        let p2 = generators::path(2);
        let p1 = generators::path(1);
        assert_ne!(unrooted_code(&p2), unrooted_code(&p1));
    }

    #[test]
    fn unrooted_code_random_relabel_invariant() {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [5usize, 9, 16] {
            let g = generators::random_tree(n, &mut rng);
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let h = Graph::from_edges(n, g.edges().map(|(u, v)| (perm[u.0], perm[v.0]))).unwrap();
            assert_eq!(tree_isomorphic(&g, &h), Some(true), "n = {n}");
        }
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        // The iterative AHU must handle long paths.
        let g = generators::path(2_000);
        let t = rooted(&g, 0);
        let code = ahu_code(&t);
        assert_eq!(code.len(), 4_000);
    }
}
