//! Fixed-point-free automorphisms of trees.
//!
//! Theorem 2.3 of the paper concerns the property "the tree has an
//! automorphism without fixed point", the canonical example of a non-MSO
//! property that cannot be certified compactly. This module decides the
//! property exactly:
//!
//! - for trees, via the center criterion ([`tree_has_fpf_automorphism`]):
//!   every automorphism preserves the center, so a fixed-point-free
//!   automorphism exists **iff** the center is an edge whose two halves are
//!   isomorphic as rooted trees (swapping the halves moves every vertex);
//! - for arbitrary small graphs, by brute force over all permutations
//!   ([`brute_force_fpf_automorphism`]), used to cross-validate the
//!   criterion.

use crate::canon::{ahu_code, center};
use crate::graph::Graph;
use crate::node::NodeId;
use crate::rooted::RootedTree;

/// Decides whether the tree `g` has a fixed-point-free automorphism.
///
/// Returns `None` if `g` is not a tree.
///
/// Every tree automorphism maps the center to itself. If the center is a
/// single vertex, that vertex is a fixed point of every automorphism, so no
/// fixed-point-free automorphism exists. If the center is an edge `{u, v}`,
/// an automorphism swapping `u` and `v` exchanges the two halves of the
/// tree and fixes nothing; such a swap exists iff the halves are isomorphic
/// as rooted trees. Conversely an automorphism fixing both `u` and `v`
/// fixes them, so swaps are the only candidates.
///
/// # Example
///
/// ```
/// use locert_graph::{automorphism, generators};
///
/// // An even path: the central-edge swap is fixed-point-free.
/// assert_eq!(
///     automorphism::tree_has_fpf_automorphism(&generators::path(4)),
///     Some(true)
/// );
/// // An odd path has a central vertex, always fixed.
/// assert_eq!(
///     automorphism::tree_has_fpf_automorphism(&generators::path(5)),
///     Some(false)
/// );
/// ```
pub fn tree_has_fpf_automorphism(g: &Graph) -> Option<bool> {
    let c = center(g)?;
    match c.as_slice() {
        [_] => Some(false),
        [u, v] => {
            // Split on the center edge: the half containing u, rooted at u,
            // versus the half containing v, rooted at v.
            let (hu, hv) = split_on_edge(g, *u, *v);
            Some(ahu_code(&hu) == ahu_code(&hv))
        }
        _ => unreachable!("tree centers have one or two vertices"),
    }
}

/// Removes the edge `{u, v}` from the tree and returns the two halves,
/// rooted at `u` and `v` respectively.
fn split_on_edge(g: &Graph, u: NodeId, v: NodeId) -> (RootedTree, RootedTree) {
    debug_assert!(g.has_edge(u, v));
    let half = |root: NodeId, banned: NodeId| -> RootedTree {
        // Collect the vertices on root's side by BFS avoiding `banned`.
        let mut side = Vec::new();
        let mut seen = vec![false; g.num_nodes()];
        seen[banned.0] = true;
        seen[root.0] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(x) = queue.pop_front() {
            side.push(x);
            for &y in g.neighbors(x) {
                if !seen[y.0] {
                    seen[y.0] = true;
                    queue.push_back(y);
                }
            }
        }
        let (sub, map) = g.induced_subgraph(&side);
        let new_root = map
            .iter()
            .position(|&old| old == root)
            .expect("root is in its own side");
        RootedTree::from_tree(&sub, NodeId(new_root)).expect("halves of a tree are trees")
    };
    (half(u, v), half(v, u))
}

/// Brute-force search for a fixed-point-free automorphism of an arbitrary
/// graph (not just a tree), enumerating all vertex permutations.
///
/// Returns the permutation if one exists.
///
/// # Panics
///
/// Panics if `g.num_nodes() > 10` — factorial blow-up; this function exists
/// only as a ground-truth oracle for tests.
pub fn brute_force_fpf_automorphism(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.num_nodes();
    assert!(n <= 10, "brute force limited to 10 vertices");
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        if perm.iter().enumerate().all(|(i, &p)| i != p) && is_automorphism(g, &perm) {
            return Some(perm.into_iter().map(NodeId).collect());
        }
        if !next_permutation(&mut perm) {
            return None;
        }
    }
}

/// Whether `perm` (as a map `i -> perm[i]`) is a graph automorphism.
pub fn is_automorphism(g: &Graph, perm: &[usize]) -> bool {
    if perm.len() != g.num_nodes() {
        return false;
    }
    // Must be a bijection on 0..n.
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    g.edges()
        .all(|(u, v)| g.has_edge(NodeId(perm[u.0]), NodeId(perm[v.0])))
        && g.num_edges()
            == g.edges()
                .filter(|(u, v)| g.has_edge(NodeId(perm[u.0]), NodeId(perm[v.0])))
                .count()
}

/// In-place next lexicographic permutation; returns `false` after the last.
fn next_permutation(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn even_paths_have_fpf() {
        for n in [2usize, 4, 6, 8] {
            assert_eq!(
                tree_has_fpf_automorphism(&generators::path(n)),
                Some(true),
                "P_{n}"
            );
        }
    }

    #[test]
    fn odd_paths_have_none() {
        for n in [1usize, 3, 5, 7] {
            assert_eq!(
                tree_has_fpf_automorphism(&generators::path(n)),
                Some(false),
                "P_{n}"
            );
        }
    }

    #[test]
    fn stars_have_none() {
        // The hub is the center vertex, fixed by every automorphism.
        assert_eq!(tree_has_fpf_automorphism(&generators::star(6)), Some(false));
    }

    #[test]
    fn mirrored_gadget_has_fpf() {
        // Two copies of the same rooted tree joined by an edge between roots.
        // This is exactly the Theorem 2.3 yes-instance shape.
        let half = Graph::from_edges(4, [(0, 1), (0, 2), (2, 3)]).unwrap();
        let mut edges: Vec<(usize, usize)> = half.edges().map(|(u, v)| (u.0, v.0)).collect();
        edges.extend(half.edges().map(|(u, v)| (u.0 + 4, v.0 + 4)));
        edges.push((0, 4));
        let g = Graph::from_edges(8, edges).unwrap();
        assert_eq!(tree_has_fpf_automorphism(&g), Some(true));
    }

    #[test]
    fn asymmetric_gadget_has_none() {
        // Same shape but the two halves differ.
        let edges = vec![
            (0usize, 1usize),
            (0, 2),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (0, 4),
        ];
        let g = Graph::from_edges(8, edges).unwrap();
        assert_eq!(tree_has_fpf_automorphism(&g), Some(false));
    }

    #[test]
    fn non_tree_returns_none() {
        assert_eq!(tree_has_fpf_automorphism(&generators::cycle(4)), None);
    }

    #[test]
    fn brute_force_on_cycle() {
        // C_4 has the antipodal rotation, which is fixed-point-free.
        let rot = brute_force_fpf_automorphism(&generators::cycle(4));
        assert!(rot.is_some());
    }

    #[test]
    fn brute_force_agrees_with_criterion_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            let n = 2 + (rand::RngExt::random_range(&mut rng, 0..7usize));
            let g = generators::random_tree(n, &mut rng);
            let expected = brute_force_fpf_automorphism(&g).is_some();
            assert_eq!(
                tree_has_fpf_automorphism(&g),
                Some(expected),
                "disagreement on {g:?}"
            );
        }
    }

    #[test]
    fn is_automorphism_checks_bijection() {
        let g = generators::path(3);
        assert!(!is_automorphism(&g, &[0, 0, 2]));
        assert!(!is_automorphism(&g, &[0, 1]));
        assert!(is_automorphism(&g, &[2, 1, 0]));
        assert!(is_automorphism(&g, &[0, 1, 2]));
        assert!(!is_automorphism(&g, &[1, 0, 2]));
    }

    #[test]
    fn next_permutation_cycles_all() {
        let mut p = vec![0usize, 1, 2];
        let mut count = 1;
        while next_permutation(&mut p) {
            count += 1;
        }
        assert_eq!(count, 6);
        assert_eq!(p, vec![2, 1, 0]);
    }
}
