//! Plain-text graph I/O.
//!
//! The edge-list format accepted by [`parse_edge_list`]:
//!
//! - blank lines and lines starting with `#` or `c` are comments;
//! - an optional header `p <n>` pins the vertex count (otherwise it is
//!   `max endpoint + 1`);
//! - every other line is `u v` with 0-based endpoints.
//!
//! [`to_edge_list`] writes the same format back (with a header).

use crate::graph::Graph;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced when parsing an edge list fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGraphError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseGraphError {}

/// Parses the edge-list format described in the module docs.
///
/// # Errors
///
/// Returns a [`ParseGraphError`] on malformed lines, out-of-range
/// endpoints (with a `p` header), or self-loops.
pub fn parse_edge_list(src: &str) -> Result<Graph, ParseGraphError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_seen = 0usize;
    let mut any_vertex = false;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('c') {
            continue;
        }
        let err = |message: String| ParseGraphError {
            line: line_no,
            message,
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                let n: usize = parts
                    .next()
                    .ok_or_else(|| err("header `p` needs a vertex count".into()))?
                    .parse()
                    .map_err(|_| err("invalid vertex count".into()))?;
                if declared_n.replace(n).is_some() {
                    return Err(err("duplicate `p` header".into()));
                }
            }
            Some(u_str) => {
                let u: usize = u_str
                    .parse()
                    .map_err(|_| err(format!("invalid endpoint `{u_str}`")))?;
                let v_str = parts
                    .next()
                    .ok_or_else(|| err("edge line needs two endpoints".into()))?;
                let v: usize = v_str
                    .parse()
                    .map_err(|_| err(format!("invalid endpoint `{v_str}`")))?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens on edge line".into()));
                }
                if u == v {
                    return Err(err(format!("self-loop at {u}")));
                }
                max_seen = max_seen.max(u).max(v);
                any_vertex = true;
                edges.push((u, v));
            }
            None => unreachable!("non-empty line has a token"),
        }
    }
    let n = declared_n.unwrap_or(if any_vertex { max_seen + 1 } else { 0 });
    Graph::from_edges(n, edges).map_err(|e| ParseGraphError {
        line: 0,
        message: e.to_string(),
    })
}

/// Serializes a graph to the edge-list format (with a `p` header).
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p {}", g.num_nodes());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.0, v.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::spider(3, 2);
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "# a path\n\nc dimacs-style comment\n0 1\n1 2\n";
        let g = parse_edge_list(src).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn header_pins_isolated_vertices() {
        let g = parse_edge_list("p 5\n0 1\n").unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_edge_list("0 1\n2 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("self-loop"));
        let e2 = parse_edge_list("0\n").unwrap_err();
        assert_eq!(e2.line, 1);
        let e3 = parse_edge_list("0 x\n").unwrap_err();
        assert!(e3.message.contains('x'));
        let e4 = parse_edge_list("0 1 2\n").unwrap_err();
        assert!(e4.message.contains("trailing"));
        let e5 = parse_edge_list("p 3\np 4\n").unwrap_err();
        assert!(e5.message.contains("duplicate"));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn out_of_range_with_header() {
        let e = parse_edge_list("p 2\n0 5\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }
}
