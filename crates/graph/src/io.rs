//! Plain-text graph I/O.
//!
//! The edge-list format accepted by [`parse_edge_list`]:
//!
//! - blank lines and lines starting with `#` or `c` are comments;
//! - an optional header `p <n>` pins the vertex count (otherwise it is
//!   `max endpoint + 1`);
//! - every other line is `u v` with 0-based endpoints.
//!
//! [`to_edge_list`] writes the same format back (with a header).

use crate::graph::Graph;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced when parsing an edge list fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGraphError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseGraphError {}

/// Largest vertex count a `.graph` file may declare in its `p` header or
/// imply through an endpoint. A hostile header like `p 99999999999` would
/// otherwise make the parser allocate that many adjacency lists before a
/// single edge is read.
pub const MAX_VERTICES: usize = 1 << 22;

/// Largest number of edge lines a `.graph` file may carry.
pub const MAX_EDGES: usize = 1 << 24;

/// Parses the edge-list format described in the module docs.
///
/// # Errors
///
/// Returns a [`ParseGraphError`] on malformed lines, out-of-range
/// endpoints (with a `p` header), self-loops, or inputs whose declared
/// or implied size exceeds [`MAX_VERTICES`]/[`MAX_EDGES`] (the error
/// names the offending line).
pub fn parse_edge_list(src: &str) -> Result<Graph, ParseGraphError> {
    let mut declared_n: Option<usize> = None;
    // Each edge remembers its source line so endpoint range errors —
    // only detectable once the final vertex count is known — can point
    // at the offending line rather than line 0.
    let mut edge_lines: Vec<usize> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_seen = 0usize;
    let mut any_vertex = false;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('c') {
            continue;
        }
        let err = |message: String| ParseGraphError {
            line: line_no,
            message,
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                let n: usize = parts
                    .next()
                    .ok_or_else(|| err("header `p` needs a vertex count".into()))?
                    .parse()
                    .map_err(|_| err("invalid vertex count".into()))?;
                if n > MAX_VERTICES {
                    return Err(err(format!(
                        "header declares {n} vertices, cap is {MAX_VERTICES}"
                    )));
                }
                if declared_n.replace(n).is_some() {
                    return Err(err("duplicate `p` header".into()));
                }
            }
            Some(u_str) => {
                let u: usize = u_str
                    .parse()
                    .map_err(|_| err(format!("invalid endpoint `{u_str}`")))?;
                let v_str = parts
                    .next()
                    .ok_or_else(|| err("edge line needs two endpoints".into()))?;
                let v: usize = v_str
                    .parse()
                    .map_err(|_| err(format!("invalid endpoint `{v_str}`")))?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens on edge line".into()));
                }
                if u == v {
                    return Err(err(format!("self-loop at {u}")));
                }
                if u >= MAX_VERTICES || v >= MAX_VERTICES {
                    let node = if u >= MAX_VERTICES { u } else { v };
                    return Err(err(format!(
                        "endpoint {node} exceeds the vertex cap {MAX_VERTICES}"
                    )));
                }
                if edges.len() == MAX_EDGES {
                    return Err(err(format!("more than {MAX_EDGES} edge lines")));
                }
                max_seen = max_seen.max(u).max(v);
                any_vertex = true;
                edge_lines.push(line_no);
                edges.push((u, v));
            }
            None => unreachable!("non-empty line has a token"),
        }
    }
    let n = declared_n.unwrap_or(if any_vertex { max_seen + 1 } else { 0 });
    // Without a header, n = max endpoint + 1, so every endpoint is in
    // range; with one, the first out-of-range edge is the culprit.
    if let Some((&(u, v), &line)) = edges
        .iter()
        .zip(&edge_lines)
        .find(|(&(u, v), _)| u >= n || v >= n)
    {
        let node = if u >= n { u } else { v };
        return Err(ParseGraphError {
            line,
            message: format!("node {node} out of range for {n} vertices"),
        });
    }
    Graph::from_edges(n, edges).map_err(|e| ParseGraphError {
        line: 0,
        message: e.to_string(),
    })
}

/// Serializes a graph to the edge-list format (with a `p` header).
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p {}", g.num_nodes());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.0, v.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::spider(3, 2);
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "# a path\n\nc dimacs-style comment\n0 1\n1 2\n";
        let g = parse_edge_list(src).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn header_pins_isolated_vertices() {
        let g = parse_edge_list("p 5\n0 1\n").unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_edge_list("0 1\n2 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("self-loop"));
        let e2 = parse_edge_list("0\n").unwrap_err();
        assert_eq!(e2.line, 1);
        let e3 = parse_edge_list("0 x\n").unwrap_err();
        assert!(e3.message.contains('x'));
        let e4 = parse_edge_list("0 1 2\n").unwrap_err();
        assert!(e4.message.contains("trailing"));
        let e5 = parse_edge_list("p 3\np 4\n").unwrap_err();
        assert!(e5.message.contains("duplicate"));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn out_of_range_with_header() {
        let e = parse_edge_list("p 2\n0 5\n").unwrap_err();
        assert!(e.message.contains("out of range"));
        // Regression: the range check used to run after parsing, losing
        // the line number (it reported line 0).
        assert_eq!(e.line, 2);
        let e2 = parse_edge_list("p 4\n0 1\n2 3\n1 9\n").unwrap_err();
        assert_eq!(e2.line, 4);
        assert!(e2.message.contains('9'));
        // A trailing header still pins the count — and the error still
        // points at the edge line, not the header.
        let e3 = parse_edge_list("0 5\np 2\n").unwrap_err();
        assert_eq!(e3.line, 1);
    }

    #[test]
    fn hostile_sizes_are_rejected_with_line_numbers() {
        // A huge header must fail before any allocation keyed on it.
        let e = parse_edge_list("# ok\np 99999999999\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("cap"), "{}", e.message);
        // A huge endpoint implies a huge vertex count just the same.
        let big = MAX_VERTICES;
        let e2 = parse_edge_list(&format!("0 1\n0 {big}\n")).unwrap_err();
        assert_eq!(e2.line, 2);
        assert!(e2.message.contains("cap"), "{}", e2.message);
        // The cap itself is usable: MAX_VERTICES - 1 is a legal endpoint.
        let g = parse_edge_list(&format!("0 {}\n", big - 1)).unwrap();
        assert_eq!(g.num_nodes(), big);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn crlf_input_parses_and_roundtrips() {
        let src = "p 4\r\n# comment\r\n0 1\r\n1 2\r\n2 3\r\n";
        let g = parse_edge_list(src).unwrap();
        assert_eq!(g, generators::path(4));
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
        // Errors keep their line numbers under CRLF too.
        let e = parse_edge_list("0 1\r\n2 2\r\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn duplicate_edges_collapse_and_roundtrip() {
        let g = parse_edge_list("0 1\n1 0\n0 1\n1 2\n").unwrap();
        assert_eq!(g.num_edges(), 2);
        // Serialization normalizes: a second round-trip is a fixpoint.
        let text = to_edge_list(&g);
        assert_eq!(parse_edge_list(&text).unwrap(), g);
        assert_eq!(to_edge_list(&parse_edge_list(&text).unwrap()), text);
    }

    #[test]
    fn header_vs_implied_count_agree_when_tight() {
        // Same edges with and without a tight header parse identically.
        let with = parse_edge_list("p 3\n0 1\n1 2\n").unwrap();
        let without = parse_edge_list("0 1\n1 2\n").unwrap();
        assert_eq!(with, without);
        // A loose header adds isolated vertices the implied count lacks.
        let loose = parse_edge_list("p 6\n0 1\n1 2\n").unwrap();
        assert_ne!(loose, without);
        assert_eq!(loose.num_nodes(), 6);
        assert_eq!(parse_edge_list(&to_edge_list(&loose)).unwrap(), loose);
    }

    /// Seeded fuzz of the `parse ∘ to_edge_list` round-trip: random
    /// graphs (including isolated vertices), duplicated and flipped edge
    /// lines, comment noise, and CRLF rewrites must all converge to the
    /// same graph; injected bad lines must be reported at their line.
    #[test]
    fn fuzz_roundtrip_with_noise() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x10F2);
        for case in 0..60u64 {
            let n = 1 + rng.random_range(0..12usize);
            let g = if n == 1 {
                Graph::empty(1)
            } else if rng.random_bool(0.5) {
                generators::random_connected(n, rng.random_range(0..3usize), &mut rng)
            } else {
                // Forests with isolated vertices: drop some tree edges.
                let tree = generators::random_tree(n, &mut rng);
                let kept: Vec<_> = tree
                    .edges()
                    .filter(|_| rng.random_bool(0.7))
                    .map(|(u, v)| (u.0, v.0))
                    .collect();
                Graph::from_edges(n, kept).unwrap()
            };
            // Clean round-trip.
            let text = to_edge_list(&g);
            assert_eq!(parse_edge_list(&text).unwrap(), g, "case {case}");
            // Noisy rewrite: duplicate and flip edge lines, sprinkle
            // comments, optionally switch to CRLF.
            let mut noisy = String::from("# fuzz header\n");
            for line in text.lines() {
                noisy.push_str(line);
                noisy.push('\n');
                if line.contains(' ') && !line.starts_with('p') && rng.random_bool(0.4) {
                    let mut it = line.split_whitespace();
                    let (u, v) = (it.next().unwrap(), it.next().unwrap());
                    let _ = writeln!(noisy, "{v} {u}");
                }
                if rng.random_bool(0.2) {
                    noisy.push_str("c noise\n\n");
                }
            }
            let noisy = if rng.random_bool(0.5) {
                noisy.replace('\n', "\r\n")
            } else {
                noisy
            };
            assert_eq!(parse_edge_list(&noisy).unwrap(), g, "case {case}");
            // Error line numbers survive the noise: append a self-loop
            // and check the reported line is the last line.
            let mut broken = noisy.clone();
            broken.push_str("3 3\n");
            let e = parse_edge_list(&broken).unwrap_err();
            assert_eq!(e.line, broken.lines().count(), "case {case}");
        }
    }
}
