//! Breadth-first / depth-first traversal utilities.
//!
//! These are the workhorse primitives behind connectivity checks, distance
//! computations, spanning-tree provers and the diameter measurements used
//! throughout the experiment suite.

use crate::graph::Graph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// BFS distances from `source`; `None` marks unreachable vertices.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source.0] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.0].expect("queued vertices have distances");
        for &v in g.neighbors(u) {
            if dist[v.0].is_none() {
                dist[v.0] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// A BFS tree from `source`: for every reachable vertex other than the
/// source, its parent in the BFS tree; `None` for the source and for
/// unreachable vertices.
pub fn bfs_parents(g: &Graph, source: NodeId) -> Vec<Option<NodeId>> {
    let mut parent = vec![None; g.num_nodes()];
    let mut seen = vec![false; g.num_nodes()];
    let mut queue = VecDeque::new();
    seen[source.0] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if !seen[v.0] {
                seen[v.0] = true;
                parent[v.0] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Whether `g` is connected. The empty graph is not connected.
pub fn is_connected(g: &Graph) -> bool {
    if g.num_nodes() == 0 {
        return false;
    }
    bfs_distances(g, NodeId(0)).iter().all(Option::is_some)
}

/// Connected components: `component[v]` is the component index of `v`,
/// with components numbered `0..` by smallest contained vertex.
pub fn components(g: &Graph) -> Vec<usize> {
    let mut comp = vec![usize::MAX; g.num_nodes()];
    let mut next = 0;
    for s in 0..g.num_nodes() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[s] = next;
        queue.push_back(NodeId(s));
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v.0] == usize::MAX {
                    comp[v.0] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Vertex sets of the connected components, ordered by smallest vertex.
pub fn component_sets(g: &Graph) -> Vec<Vec<NodeId>> {
    let comp = components(g);
    let count = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut sets = vec![Vec::new(); count];
    for (v, &c) in comp.iter().enumerate() {
        sets[c].push(NodeId(v));
    }
    sets
}

/// Eccentricity of `v` (greatest distance to any vertex), or `None` if the
/// graph is disconnected.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<usize> {
    let dist = bfs_distances(g, v);
    let mut ecc = 0;
    for d in dist {
        ecc = ecc.max(d?);
    }
    Some(ecc)
}

/// Diameter of a connected graph, or `None` if disconnected or empty.
///
/// Runs a BFS from every vertex (`O(n·m)`), which is fine at experiment
/// scales.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.num_nodes() == 0 {
        return None;
    }
    let mut best = 0;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// The endpoints and length of a longest shortest path (a "diametral pair").
pub fn diametral_pair(g: &Graph) -> Option<(NodeId, NodeId, usize)> {
    let mut best: Option<(NodeId, NodeId, usize)> = None;
    for v in g.nodes() {
        let dist = bfs_distances(g, v);
        for (u, d) in dist.iter().enumerate() {
            let d = (*d)?;
            if best.is_none_or(|(_, _, b)| d > b) {
                best = Some((v, NodeId(u), d));
            }
        }
    }
    best
}

/// Early-exit BFS from `source` to the nearest member of `targets`:
/// returns that vertex and its distance, or `None` when no target is
/// reachable (or `targets` is empty).
///
/// Used by the fault-injection campaigns to measure *rejection locality*
/// (how far from a fault site the nearest rejecting verifier sits), where
/// scanning full distance vectors per fault would be wasteful.
pub fn nearest_of(g: &Graph, source: NodeId, targets: &[NodeId]) -> Option<(NodeId, usize)> {
    let mut is_target = vec![false; g.num_nodes()];
    for &t in targets {
        if t.0 < g.num_nodes() {
            is_target[t.0] = true;
        }
    }
    if source.0 >= g.num_nodes() {
        return None;
    }
    if is_target[source.0] {
        return Some((source, 0));
    }
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source.0] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v.0] == usize::MAX {
                dist[v.0] = dist[u.0] + 1;
                if is_target[v.0] {
                    return Some((v, dist[v.0]));
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Whether the graph contains a cycle (i.e. is not a forest).
pub fn has_cycle(g: &Graph) -> bool {
    // A forest has exactly n - #components edges.
    let comps = components(g).iter().copied().max().map_or(0, |m| m + 1);
    g.num_edges() > g.num_nodes() - comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_distances_disconnected() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn bfs_parents_form_tree() {
        let g = generators::cycle(6);
        let p = bfs_parents(&g, NodeId(0));
        assert_eq!(p[0], None);
        let tree_edges = p.iter().filter(|x| x.is_some()).count();
        assert_eq!(tree_edges, 5);
        // Every parent edge is a real edge.
        for (v, par) in p.iter().enumerate() {
            if let Some(u) = par {
                assert!(g.has_edge(NodeId(v), *u));
            }
        }
    }

    #[test]
    fn components_counts() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let c = components(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[2], c[3]);
        assert_ne!(c[0], c[2]);
        assert_ne!(c[4], c[0]);
        assert_ne!(c[4], c[2]);
        assert_eq!(component_sets(&g).len(), 3);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&generators::path(7)), Some(6));
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::clique(5)), Some(1));
        assert_eq!(diameter(&Graph::empty(1)), Some(0));
        assert_eq!(diameter(&Graph::empty(0)), None);
        assert_eq!(diameter(&Graph::empty(2)), None);
    }

    #[test]
    fn diametral_pair_on_path() {
        let g = generators::path(4);
        let (u, v, d) = diametral_pair(&g).unwrap();
        assert_eq!(d, 3);
        assert!((u, v) == (NodeId(0), NodeId(3)) || (u, v) == (NodeId(3), NodeId(0)));
    }

    #[test]
    fn eccentricity_star_center() {
        let g = generators::star(6);
        assert_eq!(eccentricity(&g, NodeId(0)), Some(1));
        assert_eq!(eccentricity(&g, NodeId(1)), Some(2));
    }

    #[test]
    fn nearest_of_finds_closest_target() {
        let g = generators::path(7);
        // From v2, targets at both ends: v0 at distance 2 beats v6 at 4.
        assert_eq!(
            nearest_of(&g, NodeId(2), &[NodeId(0), NodeId(6)]),
            Some((NodeId(0), 2))
        );
        // Source itself a target.
        assert_eq!(
            nearest_of(&g, NodeId(3), &[NodeId(3)]),
            Some((NodeId(3), 0))
        );
        // No targets / unreachable targets.
        assert_eq!(nearest_of(&g, NodeId(0), &[]), None);
        let disc = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(nearest_of(&disc, NodeId(0), &[NodeId(3)]), None);
        // Out-of-range targets are ignored rather than panicking.
        assert_eq!(nearest_of(&g, NodeId(0), &[NodeId(99)]), None);
    }

    #[test]
    fn has_cycle_detects() {
        assert!(!has_cycle(&generators::path(6)));
        assert!(has_cycle(&generators::cycle(3)));
        let forest = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]).unwrap();
        assert!(!has_cycle(&forest));
        let forest_plus = forest.with_edges([(2, 4)]).unwrap();
        assert!(has_cycle(&forest_plus));
    }
}
