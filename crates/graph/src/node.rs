//! Node indices and network identifiers.
//!
//! The certification model distinguishes two notions of "name" for a vertex:
//!
//! - [`NodeId`] is an *internal index* into a [`Graph`](crate::Graph)
//!   (contiguous, `0..n`); it is an artifact of the simulator and is never
//!   visible to verification algorithms.
//! - [`Ident`] is the *network identifier* of Section 3.3 of the paper: an
//!   arbitrary unique value from a polynomial range `[1, n^c]`. Verifiers
//!   see identifiers, never node indices.

use std::fmt;

/// Internal index of a vertex inside a [`Graph`](crate::Graph).
///
/// Indices are contiguous in `0..n`. They are a simulator artifact: local
/// verification algorithms must only ever depend on [`Ident`]s.
///
/// # Example
///
/// ```
/// use locert_graph::NodeId;
/// let v = NodeId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// A network identifier, unique per vertex, drawn from a polynomial range.
///
/// The paper assumes identifiers fit in `O(log n)` bits (range `[1, n^c]`).
/// [`Ident`] wraps a `u64`, which is ample for every experiment scale while
/// keeping bit-size accounting honest via
/// [`Ident::bits`].
///
/// # Example
///
/// ```
/// use locert_graph::Ident;
/// assert_eq!(Ident(5).bits(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ident(pub u64);

impl Ident {
    /// Returns the raw identifier value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Number of bits needed to write this identifier (at least 1).
    #[inline]
    pub fn bits(self) -> u32 {
        u64::BITS - self.0.leading_zeros().min(u64::BITS - 1)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for Ident {
    fn from(v: u64) -> Self {
        Ident(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::from(7usize);
        assert_eq!(v.index(), 7);
        assert_eq!(v.to_string(), "v7");
    }

    #[test]
    fn node_id_ordering_matches_indices() {
        assert!(NodeId(2) < NodeId(10));
        assert_eq!(NodeId(4), NodeId(4));
    }

    #[test]
    fn ident_bits_small_values() {
        assert_eq!(Ident(0).bits(), 1);
        assert_eq!(Ident(1).bits(), 1);
        assert_eq!(Ident(2).bits(), 2);
        assert_eq!(Ident(3).bits(), 2);
        assert_eq!(Ident(4).bits(), 3);
        assert_eq!(Ident(255).bits(), 8);
        assert_eq!(Ident(256).bits(), 9);
    }

    #[test]
    fn ident_bits_large_values() {
        assert_eq!(Ident(u64::MAX).bits(), 64);
        assert_eq!(Ident(1 << 40).bits(), 41);
    }

    #[test]
    fn ident_display() {
        assert_eq!(Ident(42).to_string(), "#42");
    }
}
