//! Path and cycle minors.
//!
//! Corollary 2.7 certifies `P_t`-minor-free and `C_t`-minor-free graphs.
//! For these two families, minor containment collapses to subgraph
//! containment:
//!
//! - `G` has a `P_t` minor **iff** `G` contains a path on `t` vertices
//!   (contracting edges of a path model and picking connection points
//!   yields an actual path of the same order);
//! - `G` has a `C_t` minor **iff** `G` contains a cycle of length at least
//!   `t` (contracting a cycle model yields a cycle, and any long cycle
//!   contracts down to `C_t`).
//!
//! So the ground truths here are the *longest path* (order, i.e. number of
//! vertices) and the *circumference* (length of a longest cycle), computed
//! exactly by exponential search with memoization — intended for the
//! small/medium instances of the test and experiment suites — plus a
//! linear-time exact longest path for trees.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::traversal;

/// Maximum number of vertices for the exact exponential searches.
pub const EXACT_LIMIT: usize = 28;

/// Order (vertex count) of a longest path in a tree: `diameter + 1`.
///
/// Returns `None` if `g` is not a tree.
pub fn longest_path_in_tree(g: &Graph) -> Option<usize> {
    if !g.is_tree() {
        return None;
    }
    traversal::diameter(g).map(|d| d + 1)
}

/// Order (vertex count) of a longest simple path in `g`, exact.
///
/// Uses a DFS over (endpoint, visited-set) states with pruning. Exponential
/// in the worst case; intended for `n <= `[`EXACT_LIMIT`].
///
/// # Panics
///
/// Panics if `g.num_nodes() > EXACT_LIMIT`.
pub fn longest_path_exact(g: &Graph) -> usize {
    let n = g.num_nodes();
    assert!(
        n <= EXACT_LIMIT,
        "exact longest path limited to {EXACT_LIMIT} vertices"
    );
    if n == 0 {
        return 0;
    }
    if g.is_tree() {
        return longest_path_in_tree(g).expect("tree");
    }
    let mut best = 1usize;
    let mut stack: Vec<(usize, u64, usize)> = Vec::new();
    for s in 0..n {
        stack.push((s, 1u64 << s, 1));
    }
    while let Some((u, visited, len)) = stack.pop() {
        best = best.max(len);
        if best == n {
            return n;
        }
        for &v in g.neighbors(NodeId(u)) {
            if visited & (1u64 << v.0) == 0 {
                stack.push((v.0, visited | (1u64 << v.0), len + 1));
            }
        }
    }
    best
}

/// Length (edge count) of a longest cycle in `g` (the circumference),
/// or 0 if `g` is acyclic. Exact, exponential; intended for
/// `n <= `[`EXACT_LIMIT`].
///
/// # Panics
///
/// Panics if `g.num_nodes() > EXACT_LIMIT`.
pub fn circumference_exact(g: &Graph) -> usize {
    let n = g.num_nodes();
    assert!(
        n <= EXACT_LIMIT,
        "exact circumference limited to {EXACT_LIMIT} vertices"
    );
    if !traversal::has_cycle(g) {
        return 0;
    }
    let mut best = 0usize;
    // For each start vertex s (smallest vertex on the cycle), DFS over
    // simple paths from s using only vertices >= s; closing back to s gives
    // a cycle.
    for s in 0..n {
        let mut stack: Vec<(usize, u64, usize)> = vec![(s, 1u64 << s, 0)];
        while let Some((u, visited, len)) = stack.pop() {
            for &v in g.neighbors(NodeId(u)) {
                if v.0 == s && len >= 2 {
                    best = best.max(len + 1);
                } else if v.0 > s && visited & (1u64 << v.0) == 0 {
                    stack.push((v.0, visited | (1u64 << v.0), len + 1));
                }
            }
        }
        if best == n {
            break;
        }
    }
    best
}

/// Whether `g` contains a simple path on `t` vertices, by depth-bounded
/// DFS. Exponential in `t` only (not in `n`), so usable on graphs beyond
/// [`EXACT_LIMIT`] when `t` is small — e.g. deciding `P_t`-freeness of
/// certified kernels.
pub fn has_path_of_order(g: &Graph, t: usize) -> bool {
    if t == 0 {
        return true;
    }
    if t == 1 {
        return g.num_nodes() >= 1;
    }
    let n = g.num_nodes();
    let mut on_path = vec![false; n];
    fn dfs(g: &Graph, u: usize, remaining: usize, on_path: &mut [bool]) -> bool {
        if remaining == 0 {
            return true;
        }
        for &v in g.neighbors(NodeId(u)) {
            if !on_path[v.0] {
                on_path[v.0] = true;
                if dfs(g, v.0, remaining - 1, on_path) {
                    return true;
                }
                on_path[v.0] = false;
            }
        }
        false
    }
    for s in 0..n {
        on_path[s] = true;
        if dfs(g, s, t - 1, &mut on_path) {
            return true;
        }
        on_path[s] = false;
    }
    false
}

/// Whether `g` contains a cycle of length in `[lo, cap]`, by DFS over
/// simple paths of length ≤ `cap` (smallest-vertex anchoring, as in
/// [`circumference_exact`]). Exponential in `cap` only, so usable beyond
/// [`EXACT_LIMIT`] when `cap` is small.
///
/// # Panics
///
/// Panics if `lo < 3`.
pub fn has_cycle_at_least(g: &Graph, lo: usize, cap: usize) -> bool {
    assert!(lo >= 3, "cycles have length at least 3");
    if cap < lo || !traversal::has_cycle(g) {
        return false;
    }
    let n = g.num_nodes();
    let mut on_path = vec![false; n];
    // `len` = number of vertices on the current path (which starts at the
    // anchor `s`, the smallest vertex of the cycle sought). Closing the
    // edge back to `s` yields a cycle of length exactly `len`.
    fn dfs(
        g: &Graph,
        s: usize,
        u: usize,
        len: usize,
        lo: usize,
        cap: usize,
        on_path: &mut [bool],
    ) -> bool {
        for &v in g.neighbors(NodeId(u)) {
            if v.0 == s && len >= 3 && len >= lo {
                return true;
            }
            if v.0 > s && !on_path[v.0] && len < cap {
                on_path[v.0] = true;
                if dfs(g, s, v.0, len + 1, lo, cap, on_path) {
                    return true;
                }
                on_path[v.0] = false;
            }
        }
        false
    }
    for s in 0..n {
        on_path[s] = true;
        if dfs(g, s, s, 1, lo, cap, &mut on_path) {
            return true;
        }
        on_path[s] = false;
    }
    false
}

/// Whether `g` has a `P_t` minor (a path on `t` vertices), exactly.
///
/// Uses the tree shortcut when `g` is a tree; otherwise the exact search
/// (see [`longest_path_exact`] for the size limit).
pub fn has_path_minor(g: &Graph, t: usize) -> bool {
    if t <= 1 {
        return g.num_nodes() >= t;
    }
    if let Some(lp) = longest_path_in_tree(g) {
        return lp >= t;
    }
    longest_path_exact(g) >= t
}

/// Whether `g` has a `C_t` minor (a cycle of length at least `t`), exactly.
///
/// # Panics
///
/// Panics if `t < 3` (cycles have length at least 3) or `g` exceeds the
/// exact-search size limit.
pub fn has_cycle_minor(g: &Graph, t: usize) -> bool {
    assert!(t >= 3, "C_t requires t >= 3");
    if !traversal::has_cycle(g) {
        return false;
    }
    circumference_exact(g) >= t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn longest_path_in_tree_matches_diameter() {
        assert_eq!(longest_path_in_tree(&generators::path(7)), Some(7));
        assert_eq!(longest_path_in_tree(&generators::star(5)), Some(3));
        assert_eq!(longest_path_in_tree(&generators::spider(3, 2)), Some(5));
        assert_eq!(longest_path_in_tree(&generators::cycle(4)), None);
    }

    #[test]
    fn longest_path_exact_on_cycles_and_cliques() {
        assert_eq!(longest_path_exact(&generators::cycle(6)), 6);
        assert_eq!(longest_path_exact(&generators::clique(5)), 5);
        assert_eq!(longest_path_exact(&generators::path(9)), 9);
        assert_eq!(longest_path_exact(&Graph::empty(1)), 1);
    }

    #[test]
    fn longest_path_exact_theta_graph() {
        // Two vertices joined by three paths of lengths 2, 2, 4: the longest
        // simple path chains the two longest branches.
        let g = Graph::from_edges(
            7,
            [
                (0, 2),
                (2, 1), // path A: 0-2-1
                (0, 3),
                (3, 1), // path B: 0-3-1
                (0, 4),
                (4, 5),
                (5, 6),
                (6, 1), // path C: 0-4-5-6-1
            ],
        )
        .unwrap();
        // Longest simple path: 2-0-4-5-6-1-3 (7 vertices).
        assert_eq!(longest_path_exact(&g), 7);
    }

    #[test]
    fn circumference_basics() {
        assert_eq!(circumference_exact(&generators::cycle(5)), 5);
        assert_eq!(circumference_exact(&generators::path(5)), 0);
        assert_eq!(circumference_exact(&generators::clique(5)), 5);
    }

    #[test]
    fn circumference_two_triangles() {
        // Two triangles sharing one vertex: circumference 3.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]).unwrap();
        assert_eq!(circumference_exact(&g), 3);
        // Joining them with an extra edge creates a hexagon minus a chord.
        let g2 = g.with_edges([(0, 3)]).unwrap();
        assert_eq!(circumference_exact(&g2), 5);
    }

    #[test]
    fn path_minor_thresholds() {
        let g = generators::path(6);
        assert!(has_path_minor(&g, 6));
        assert!(!has_path_minor(&g, 7));
        assert!(has_path_minor(&g, 1));
        let s = generators::star(10);
        assert!(has_path_minor(&s, 3));
        assert!(!has_path_minor(&s, 4));
    }

    #[test]
    fn cycle_minor_thresholds() {
        let g = generators::cycle(8);
        assert!(has_cycle_minor(&g, 3));
        assert!(has_cycle_minor(&g, 8));
        assert!(!has_cycle_minor(&g, 9));
        assert!(!has_cycle_minor(&generators::path(8), 3));
    }

    #[test]
    fn bounded_path_search_matches_exact() {
        let graphs = [
            generators::path(6),
            generators::cycle(7),
            generators::star(6),
            generators::clique(4),
            generators::spider(3, 2),
        ];
        for g in &graphs {
            let lp = longest_path_exact(g);
            for t in 1..=lp + 2 {
                assert_eq!(has_path_of_order(g, t), t <= lp, "graph {g:?}, t = {t}");
            }
        }
    }

    #[test]
    fn bounded_cycle_search_matches_circumference() {
        let graphs = [
            generators::cycle(5),
            generators::cycle(8),
            generators::clique(5),
            generators::path(6),
        ];
        for g in &graphs {
            let circ = circumference_exact(g);
            for lo in 3..=8 {
                assert_eq!(
                    has_cycle_at_least(g, lo, 8),
                    circ >= lo && circ <= 8,
                    "graph {g:?}, lo = {lo}"
                );
            }
        }
    }

    #[test]
    fn bounded_cycle_search_respects_cap() {
        // C_8 has only the 8-cycle: with cap 7 nothing is found.
        let g = generators::cycle(8);
        assert!(!has_cycle_at_least(&g, 3, 7));
        assert!(has_cycle_at_least(&g, 3, 8));
        assert!(has_cycle_at_least(&g, 8, 8));
        assert!(!has_cycle_at_least(&g, 9, 20));
    }

    #[test]
    fn bounded_path_search_beyond_exact_limit() {
        // Star on 100 vertices: longest path order 3, no 28-vertex cap.
        let g = generators::star(100);
        assert!(has_path_of_order(&g, 3));
        assert!(!has_path_of_order(&g, 4));
    }

    #[test]
    fn empty_graph_longest_path() {
        assert_eq!(longest_path_exact(&Graph::empty(0)), 0);
        assert!(has_path_minor(&Graph::empty(0), 0));
        assert!(!has_path_minor(&Graph::empty(0), 1));
    }
}
