//! Biconnected components and cut vertices (Tarjan–Hopcroft).
//!
//! Corollary 2.7 certifies `C_t`-minor-freeness by decomposing the graph
//! into 2-connected components and certifying `P_{t²}`-minor-freeness on
//! each; this module provides the decomposition and its ground truth.

use crate::graph::Graph;
use crate::node::NodeId;

/// The biconnected components of `g`, as edge sets, plus the cut vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BccDecomposition {
    /// Each biconnected component, as a list of edges.
    pub components: Vec<Vec<(NodeId, NodeId)>>,
    /// The cut (articulation) vertices.
    pub cut_vertices: Vec<NodeId>,
}

impl BccDecomposition {
    /// The vertex set of component `i` (sorted, deduplicated).
    pub fn component_vertices(&self, i: usize) -> Vec<NodeId> {
        let mut vs: Vec<NodeId> = self.components[i]
            .iter()
            .flat_map(|&(u, v)| [u, v])
            .collect();
        vs.sort();
        vs.dedup();
        vs
    }
}

/// Computes the biconnected components and cut vertices of `g` with an
/// iterative Tarjan–Hopcroft DFS (no recursion, safe on long paths).
///
/// Isolated vertices appear in no component; a bridge forms a component of
/// one edge.
pub fn biconnected_components(g: &Graph) -> BccDecomposition {
    let n = g.num_nodes();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut time = 0usize;
    let mut edge_stack: Vec<(NodeId, NodeId)> = Vec::new();
    let mut components = Vec::new();

    // Iterative DFS frames:
    // (vertex, parent, next neighbor index, DFS child count, edge-stack base).
    // `edge_base` is the edge-stack length just before the tree edge into
    // this vertex was pushed; popping down to it yields the biconnected
    // component hanging below that edge.
    struct Frame {
        u: usize,
        parent: Option<usize>,
        idx: usize,
        children: usize,
        edge_base: usize,
    }
    for start in 0..n {
        if disc[start] != usize::MAX {
            continue;
        }
        disc[start] = time;
        low[start] = time;
        time += 1;
        let mut stack = vec![Frame {
            u: start,
            parent: None,
            idx: 0,
            children: 0,
            edge_base: 0,
        }];
        while let Some(top) = stack.last_mut() {
            let u = top.u;
            let parent = top.parent;
            let nbrs = g.neighbors(NodeId(u));
            if top.idx < nbrs.len() {
                let v = nbrs[top.idx].0;
                top.idx += 1;
                if disc[v] == usize::MAX {
                    top.children += 1;
                    let edge_base = edge_stack.len();
                    edge_stack.push((NodeId(u), NodeId(v)));
                    disc[v] = time;
                    low[v] = time;
                    time += 1;
                    stack.push(Frame {
                        u: v,
                        parent: Some(u),
                        idx: 0,
                        children: 0,
                        edge_base,
                    });
                } else if Some(v) != parent && disc[v] < disc[u] {
                    edge_stack.push((NodeId(u), NodeId(v)));
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                // Finished u; propagate low-link and detect components.
                let frame = stack.pop().expect("frame exists");
                if let Some(p) = frame.parent {
                    low[p] = low[p].min(low[u]);
                    if low[u] >= disc[p] {
                        // Edge (p, u) closes a biconnected component. p is a
                        // cut vertex unless it is the DFS root (handled via
                        // child count when its own frame pops).
                        if stack.len() > 1 {
                            is_cut[p] = true;
                        }
                        let comp: Vec<(NodeId, NodeId)> =
                            edge_stack.drain(frame.edge_base..).collect();
                        debug_assert!(!comp.is_empty());
                        components.push(comp);
                    }
                } else if frame.children >= 2 {
                    // DFS root: cut vertex iff it has at least two children.
                    is_cut[u] = true;
                }
            }
        }
        debug_assert!(edge_stack.is_empty());
    }

    let cut_vertices = (0..n).filter(|&v| is_cut[v]).map(NodeId).collect();
    BccDecomposition {
        components,
        cut_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_every_edge_is_a_component() {
        let g = generators::path(5);
        let d = biconnected_components(&g);
        assert_eq!(d.components.len(), 4);
        for c in &d.components {
            assert_eq!(c.len(), 1);
        }
        // Internal path vertices are cut vertices.
        assert_eq!(d.cut_vertices, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn cycle_is_one_component() {
        let g = generators::cycle(6);
        let d = biconnected_components(&g);
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.components[0].len(), 6);
        assert!(d.cut_vertices.is_empty());
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // Triangles 0-1-2 and 2-3-4 share vertex 2.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]).unwrap();
        let d = biconnected_components(&g);
        assert_eq!(d.components.len(), 2);
        assert_eq!(d.cut_vertices, vec![NodeId(2)]);
        for i in 0..2 {
            assert_eq!(d.component_vertices(i).len(), 3);
        }
    }

    #[test]
    fn bridge_between_cycles() {
        // Cycle 0-1-2, bridge 2-3, cycle 3-4-5.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let d = biconnected_components(&g);
        assert_eq!(d.components.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = d.components.iter().map(Vec::len).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 3, 3]);
        assert_eq!(d.cut_vertices, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn disconnected_graphs() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3), (3, 4), (4, 2)]).unwrap();
        let d = biconnected_components(&g);
        assert_eq!(d.components.len(), 2);
        assert!(d.cut_vertices.is_empty());
    }

    #[test]
    fn star_center_is_cut() {
        let g = generators::star(5);
        let d = biconnected_components(&g);
        assert_eq!(d.components.len(), 4);
        assert_eq!(d.cut_vertices, vec![NodeId(0)]);
    }

    #[test]
    fn clique_is_single_component_no_cuts() {
        let g = generators::clique(5);
        let d = biconnected_components(&g);
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.components[0].len(), 10);
        assert!(d.cut_vertices.is_empty());
    }

    #[test]
    fn edges_partition_into_components() {
        // Every edge appears in exactly one component.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
                (6, 7),
            ],
        )
        .unwrap();
        let d = biconnected_components(&g);
        let mut all: Vec<(usize, usize)> = d
            .components
            .iter()
            .flatten()
            .map(|&(u, v)| (u.0.min(v.0), u.0.max(v.0)))
            .collect();
        all.sort();
        let mut expected: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        expected.sort();
        assert_eq!(all, expected);
    }
}
