//! Graph substrate for the `locert` workspace.
//!
//! This crate provides every graph-theoretic building block the paper
//! *"What can be certified compactly?"* (Bousquet–Feuilloley–Pierron,
//! PODC 2022) relies on:
//!
//! - [`Graph`]: simple, undirected, loopless graphs with an adjacency-list
//!   representation and a validating [`GraphBuilder`];
//! - [`RootedTree`]: rooted trees extracted from tree-shaped graphs, with
//!   depth bookkeeping;
//! - canonical forms ([`canon`]): AHU codes, rooted/unrooted tree
//!   isomorphism, and tree centers;
//! - fixed-point-free automorphisms of trees ([`automorphism`]), the
//!   non-MSO property of Theorem 2.3;
//! - content digests over the canonical edge list ([`digest`]), the
//!   cache key of the `locert-serve` certificate cache;
//! - minor checks for paths and cycles ([`minors`]), used by Corollary 2.7;
//! - deterministic and random generators ([`generators`]) for all the
//!   workloads in the experiment suite, including the paper's gadget
//!   families;
//! - enumeration and unranking of rooted trees of bounded depth
//!   ([`enumerate`]), the injection used by the Theorem 2.3 lower bound;
//! - network identifier assignments ([`ids`]) in a polynomial range, as
//!   required by the certification model of Section 3.3.
//!
//! # Example
//!
//! ```
//! use locert_graph::{Graph, generators};
//!
//! let g: Graph = generators::path(7);
//! assert!(g.is_connected());
//! assert_eq!(g.num_edges(), 6);
//! ```

#![allow(clippy::manual_memcpy)]

pub mod automorphism;
pub mod bcc;
pub mod canon;
pub mod digest;
pub mod enumerate;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod io;
pub mod minors;
pub mod node;
pub mod rooted;
pub mod traversal;

pub use graph::{Graph, GraphBuilder, GraphError};
pub use ids::IdAssignment;
pub use node::{Ident, NodeId};
pub use rooted::RootedTree;
