//! Content digests of graphs — the cache key of the serving layer.
//!
//! [`digest`] hashes the *canonical* edge list (vertex count, then every
//! edge `(u, v)` with `u < v` in lexicographic order) with 64-bit
//! FNV-1a, so any presentation of the same labeled graph — shuffled
//! edge lines, flipped endpoints, comments, redundant headers — hashes
//! identically. [`Graph`] normalizes on construction, which makes the
//! canonical order free; the digest is a pure fold over it.
//!
//! The digest is labeled-graph identity, not isomorphism: relabeling
//! *vertices* produces a different adjacency and a different digest
//! (deliberately — certificates name vertices, so a cache keyed on
//! isomorphism classes would serve wrong blobs). Relabeling network
//! *identifiers* leaves the graph, and hence the digest, untouched.
//!
//! [`digest_instance`] extends the key with the optional per-vertex
//! input word, for schemes whose certificates depend on it.

use crate::graph::Graph;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one byte slice into a running FNV-1a state.
fn fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fold_usize(h: u64, x: usize) -> u64 {
    fold(h, &(x as u64).to_le_bytes())
}

/// 64-bit content digest of a graph over its canonical edge list.
///
/// Equal iff the labeled graphs are equal: same vertex count, same edge
/// set. Stable across presentations (edge order, endpoint order,
/// comments in serialized form) and across processes — the value is
/// pinned by unit tests and safe to persist or put on the wire.
pub fn digest(g: &Graph) -> u64 {
    let mut h = fold_usize(FNV_OFFSET, g.num_nodes());
    for (u, v) in g.edges() {
        h = fold_usize(h, u.0);
        h = fold_usize(h, v.0);
    }
    h
}

/// Digest of a graph together with an optional per-vertex input word.
///
/// `digest_instance(g, None)` differs from `digest_instance(g, Some(w))`
/// for every `w` (including the empty word): the input-presence flag is
/// folded in, so input-free and input-reading requests on the same
/// graph never collide.
pub fn digest_instance(g: &Graph, inputs: Option<&[usize]>) -> u64 {
    let mut h = digest(g);
    match inputs {
        None => fold(h, &[0]),
        Some(word) => {
            h = fold(h, &[1]);
            h = fold_usize(h, word.len());
            for &letter in word {
                h = fold_usize(h, letter);
            }
            h
        }
    }
}

/// The digest formatted as 16 lowercase hex digits (journal/wire form).
pub fn digest_hex(g: &Graph) -> String {
    format!("{:016x}", digest(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::io;
    use rand::SeedableRng;

    /// Known digests, pinned: a changed value means every persisted
    /// cache key and journal entry silently changed meaning.
    #[test]
    fn known_digests_are_pinned() {
        for (g, expected) in [
            (Graph::empty(0), 0xa8c7_f832_281a_39c5_u64),
            (Graph::empty(1), 0x89cd_3129_1d2a_efa4),
            (generators::path(4), 0x55aa_a515_66e4_0e42),
            (generators::clique(4), 0x15d6_db9d_7a91_8701),
            (generators::star(5), 0xaf00_0f9d_cf5e_e0a4),
        ] {
            assert_eq!(
                digest(&g),
                expected,
                "digest drifted for {}-vertex graph with {} edges",
                g.num_nodes(),
                g.num_edges()
            );
        }
    }

    #[test]
    fn presentation_invariance_over_from_edges() {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = Graph::from_edges(4, vec![(3, 2), (1, 0), (2, 1), (0, 1)]).unwrap();
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn different_graphs_differ() {
        let path4 = generators::path(4);
        let path5 = generators::path(5);
        let star4 = generators::star(4);
        assert_ne!(digest(&path4), digest(&path5));
        assert_ne!(digest(&path4), digest(&star4));
        // An isolated vertex changes the digest even with no new edges.
        let padded = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_ne!(digest(&path4), digest(&padded));
    }

    #[test]
    fn inputs_extend_the_key_without_collisions() {
        let g = generators::path(3);
        let none = digest_instance(&g, None);
        let empty = digest_instance(&g, Some(&[]));
        let word = digest_instance(&g, Some(&[0, 1, 0]));
        let other = digest_instance(&g, Some(&[0, 1, 1]));
        assert_ne!(none, empty);
        assert_ne!(empty, word);
        assert_ne!(word, other);
    }

    #[test]
    fn hex_form_is_16_lowercase_digits() {
        let g = generators::path(4);
        let hex = digest_hex(&g);
        assert_eq!(hex.len(), 16);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(u64::from_str_radix(&hex, 16).unwrap(), digest(&g));
    }

    #[test]
    fn io_round_trip_preserves_digest() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = generators::random_connected(20, 10, &mut rng);
        let text = io::to_edge_list(&g);
        let parsed = io::parse_edge_list(&text).unwrap();
        assert_eq!(digest(&g), digest(&parsed));
    }
}
