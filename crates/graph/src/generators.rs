//! Deterministic and random graph generators.
//!
//! Every workload in the experiment suite comes from this module:
//! elementary families (paths, cycles, cliques, stars, spiders, complete
//! k-ary trees), uniformly random labeled trees (via Prüfer sequences),
//! random connected graphs, and random graphs of bounded treedepth built
//! from an explicit elimination tree (so the treedepth witness is known by
//! construction).

use crate::graph::{Graph, GraphBuilder};
use rand::prelude::IndexedRandom;
use rand::{Rng, RngExt};

/// The path `P_n` on `n` vertices (`0 - 1 - … - n-1`).
///
/// # Panics
///
/// Panics if `n == 0` (the paper only considers non-empty graphs).
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path requires at least one vertex");
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("path edges are valid")
}

/// The cycle `C_n` on `n >= 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least three vertices");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("cycle edges are valid")
}

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn clique(n: usize) -> Graph {
    assert!(n > 0, "clique requires at least one vertex");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("clique edges are valid");
        }
    }
    b.build()
}

/// The star `K_{1,n-1}`: vertex 0 adjacent to all others.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star requires at least one vertex");
    Graph::from_edges(n, (1..n).map(|i| (0, i))).expect("star edges are valid")
}

/// A spider: `legs` paths of length `leg_len` glued at a central vertex 0.
///
/// Has `1 + legs * leg_len` vertices.
///
/// # Panics
///
/// Panics if `leg_len == 0` and `legs > 0` is requested with zero-length
/// legs (use [`star`] for unit legs).
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    assert!(leg_len > 0, "spider legs must have positive length");
    let n = 1 + legs * leg_len;
    let mut b = GraphBuilder::new(n);
    for l in 0..legs {
        let mut prev = 0;
        for j in 0..leg_len {
            let v = 1 + l * leg_len + j;
            b.add_edge(prev, v).expect("spider edges are valid");
            prev = v;
        }
    }
    b.build()
}

/// The complete `k`-ary tree of the given `depth` (a single vertex at
/// depth 0). Vertex 0 is the root; children are laid out level by level.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn complete_kary_tree(k: usize, depth: usize) -> Graph {
    assert!(k > 0, "arity must be positive");
    // Count vertices: 1 + k + k^2 + ... + k^depth.
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= k;
        n += level;
    }
    let mut b = GraphBuilder::new(n);
    // Level-order: vertex i's children are k*i + 1 ... k*i + k while in range.
    for i in 0..n {
        for c in 1..=k {
            let child = k * i + c;
            if child < n {
                b.add_edge(i, child).expect("tree edges are valid");
            }
        }
    }
    b.build()
}

/// Decodes a Prüfer sequence of length `n - 2` into a labeled tree on `n`
/// vertices. With a uniformly random sequence this samples labeled trees
/// uniformly (Cayley's bijection).
///
/// # Panics
///
/// Panics if `n < 2` or `seq.len() != n - 2`, or if a sequence entry is
/// `>= n`.
pub fn tree_from_prufer(n: usize, seq: &[usize]) -> Graph {
    assert!(n >= 2, "Prüfer decoding needs n >= 2");
    assert_eq!(seq.len(), n - 2, "Prüfer sequence must have length n - 2");
    let mut degree = vec![1usize; n];
    for &x in seq {
        assert!(x < n, "Prüfer entry out of range");
        degree[x] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Min-heap via sorted scan: use a BinaryHeap of Reverse for clarity.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut leaves: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&v| degree[v] == 1).map(Reverse).collect();
    for &x in seq {
        let Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        b.add_edge(leaf, x).expect("Prüfer edges are valid");
        degree[x] -= 1;
        if degree[x] == 1 {
            leaves.push(Reverse(x));
        }
    }
    let Reverse(u) = leaves.pop().expect("two leaves remain");
    let Reverse(v) = leaves.pop().expect("two leaves remain");
    b.add_edge(u, v).expect("Prüfer edges are valid");
    b.build()
}

/// Uniformly random labeled tree on `n` vertices.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n > 0, "tree requires at least one vertex");
    if n == 1 {
        return Graph::empty(1);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("valid");
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    tree_from_prufer(n, &seq)
}

/// Random connected graph: a random tree plus `extra_edges` additional
/// uniformly random non-edges (as many as available).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected<R: Rng + ?Sized>(n: usize, extra_edges: usize, rng: &mut R) -> Graph {
    let tree = random_tree(n, rng);
    let mut edges: Vec<(usize, usize)> = tree.edges().map(|(u, v)| (u.0, v.0)).collect();
    let mut non_edges: Vec<(usize, usize)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if !tree.has_edge(u.into(), v.into()) {
                non_edges.push((u, v));
            }
        }
    }
    let take = extra_edges.min(non_edges.len());
    let sample: Vec<(usize, usize)> = non_edges.sample(rng, take).copied().collect();
    edges.extend(sample);
    Graph::from_edges(n, edges).expect("sampled edges are valid")
}

/// A random rooted tree with exactly `n` vertices and depth at most
/// `max_depth`, returned as (graph, parent array, depth array) with vertex 0
/// as the root.
///
/// Each non-root vertex picks a uniformly random earlier vertex of depth
/// `< max_depth` as its parent, so the depth bound holds by construction.
///
/// # Panics
///
/// Panics if `n == 0`, or if `max_depth == 0 && n > 1`.
pub fn random_bounded_depth_tree<R: Rng + ?Sized>(
    n: usize,
    max_depth: usize,
    rng: &mut R,
) -> (Graph, Vec<Option<usize>>, Vec<usize>) {
    assert!(n > 0, "tree requires at least one vertex");
    assert!(
        max_depth > 0 || n == 1,
        "depth 0 only allows a single vertex"
    );
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut depth = vec![0usize; n];
    let mut eligible: Vec<usize> = vec![0];
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let &p = eligible.choose(rng).expect("root is always eligible");
        parent[v] = Some(p);
        depth[v] = depth[p] + 1;
        b.add_edge(p, v).expect("tree edges are valid");
        if depth[v] < max_depth {
            eligible.push(v);
        }
    }
    (b.build(), parent, depth)
}

/// A random connected graph of treedepth at most `t`, built from an explicit
/// elimination tree: first a random rooted tree of depth `< t` on the vertex
/// set (the elimination tree), then each tree edge becomes a graph edge
/// (making the model coherent and the graph connected) and every other
/// ancestor–descendant pair becomes an edge independently with probability
/// `ancestor_edge_prob`.
///
/// Returns the graph and the elimination-tree parent array (vertex 0 is the
/// root). The graph's treedepth is at most `t` by construction
/// (Definition 3.1).
///
/// # Panics
///
/// Panics if `t == 0`, or `n == 0`, or `ancestor_edge_prob` is not in
/// `[0, 1]`.
pub fn random_bounded_treedepth<R: Rng + ?Sized>(
    n: usize,
    t: usize,
    ancestor_edge_prob: f64,
    rng: &mut R,
) -> (Graph, Vec<Option<usize>>) {
    assert!(t > 0, "treedepth bound must be positive");
    assert!(
        (0.0..=1.0).contains(&ancestor_edge_prob),
        "probability must lie in [0, 1]"
    );
    // Depth here is 0-based, so "height <= t" means depth <= t - 1.
    let (_, parent, _) = random_bounded_depth_tree(n, t - 1, rng);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = parent[v].expect("non-root has a parent");
        b.add_edge(p, v).expect("tree edges are valid");
        // Walk strict ancestors above the parent.
        let mut a = parent[p];
        while let Some(anc) = a {
            if rng.random_bool(ancestor_edge_prob) {
                b.add_edge(anc, v).expect("ancestor edges are valid");
            }
            a = parent[anc];
        }
    }
    (b.build(), parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert!(g.is_tree());
        assert_eq!(traversal::diameter(&g), Some(4));
        assert_eq!(g.degree(0.into()), 1);
        assert_eq!(g.degree(2.into()), 2);
    }

    #[test]
    fn path_single_vertex() {
        let g = path(1);
        assert_eq!(g.num_nodes(), 1);
        assert!(g.is_tree());
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert!(traversal::has_cycle(&g));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn clique_shape() {
        let g = clique(5);
        assert_eq!(g.num_edges(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert!(g.is_tree());
        assert_eq!(g.degree(0.into()), 6);
    }

    #[test]
    fn spider_shape() {
        let g = spider(3, 2);
        assert_eq!(g.num_nodes(), 7);
        assert!(g.is_tree());
        assert_eq!(g.degree(0.into()), 3);
        assert_eq!(traversal::diameter(&g), Some(4));
    }

    #[test]
    fn complete_binary_tree_shape() {
        let g = complete_kary_tree(2, 3);
        assert_eq!(g.num_nodes(), 15);
        assert!(g.is_tree());
        assert_eq!(traversal::eccentricity(&g, 0.into()), Some(3));
    }

    #[test]
    fn complete_kary_depth_zero() {
        let g = complete_kary_tree(3, 0);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn prufer_known_decoding() {
        // Classic example: sequence (3, 3, 3, 4) on 6 vertices gives a tree
        // where 3 has degree 4 (neighbors 0, 1, 2, 4) and 4-5 is an edge.
        let g = tree_from_prufer(6, &[3, 3, 3, 4]);
        assert!(g.is_tree());
        assert_eq!(g.degree(3.into()), 4);
        assert!(g.has_edge(4.into(), 5.into()));
    }

    #[test]
    fn prufer_n2() {
        let g = tree_from_prufer(2, &[]);
        assert!(g.is_tree());
        assert!(g.has_edge(0.into(), 1.into()));
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 10, 57] {
            let g = random_tree(n, &mut rng);
            assert!(g.is_tree(), "n = {n}");
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        for (n, extra) in [(1usize, 0usize), (5, 3), (20, 40), (8, 1000)] {
            let g = random_connected(n, extra, &mut rng);
            assert!(g.is_connected(), "n = {n}");
            assert!(g.num_edges() <= n * (n - 1) / 2 + 1);
        }
    }

    #[test]
    fn random_bounded_depth_tree_respects_depth() {
        let mut rng = StdRng::seed_from_u64(3);
        for (n, d) in [(10usize, 1usize), (50, 3), (100, 2)] {
            let (g, parent, depth) = random_bounded_depth_tree(n, d, &mut rng);
            assert!(g.is_tree());
            assert_eq!(parent[0], None);
            assert!(depth.iter().all(|&x| x <= d));
        }
        let (g, _, _) = random_bounded_depth_tree(1, 0, &mut rng);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn random_bounded_treedepth_is_connected_and_witnessed() {
        let mut rng = StdRng::seed_from_u64(4);
        for (n, t) in [(1usize, 1usize), (10, 3), (40, 4), (40, 2)] {
            let (g, parent) = random_bounded_treedepth(n, t, 0.5, &mut rng);
            assert!(g.is_connected());
            // Every graph edge joins an ancestor-descendant pair.
            let ancestors = |mut v: usize| -> Vec<usize> {
                let mut out = vec![v];
                while let Some(p) = parent[v] {
                    out.push(p);
                    v = p;
                }
                out
            };
            for (u, v) in g.edges() {
                let au = ancestors(u.0);
                let av = ancestors(v.0);
                assert!(
                    au.contains(&v.0) || av.contains(&u.0),
                    "edge {u}-{v} not ancestor-descendant"
                );
            }
        }
    }
}
