//! Counting, enumerating and encoding rooted trees of bounded depth.
//!
//! Theorem 2.3's lower bound hinges on the fact (Pach–Pluhár–Pongrácz–Szabó
//! \[42]) that the number of non-isomorphic rooted trees of depth `k >= 3`
//! on `n` vertices is `2^{Θ(n / log log n)}` (and `2^{Θ(√n)}` for depth 2,
//! via integer partitions). This module provides:
//!
//! - exact counts [`count_trees`] (checked `u128`) and [`count_trees_log2`]
//!   (floating point, reaches much larger `n`), via the Euler transform
//!   `F_{d} = ∏_{m ≥ 1} (1 - x^m)^{-T_{d-1}(m)}`;
//! - exhaustive enumeration [`enumerate_trees`] of all non-isomorphic
//!   rooted trees of given size and depth bound (small `n`), each returned
//!   as a parent array in preorder;
//! - the **injections from bit strings to trees** the reduction framework
//!   needs: [`string_to_tree_depth2`] (the integer-partition encoding,
//!   `n = Θ(ℓ²)`, works at any scale) and its inverse
//!   [`tree_depth2_to_string`], plus [`enumeration_injection`]
//!   (rank-based, optimal rate, small `n`).

use crate::rooted::RootedTree;

/// Exact number of non-isomorphic rooted trees with exactly `n` vertices
/// and depth at most `max_depth` (root at depth 0), or `None` on `u128`
/// overflow.
///
/// # Example
///
/// ```
/// use locert_graph::enumerate::count_trees;
/// // Depth <= 1: a star, unique for every n.
/// assert_eq!(count_trees(5, 1), Some(1));
/// // Depth <= 2 trees on n vertices are integer partitions of n - 1.
/// assert_eq!(count_trees(5, 2), Some(5)); // partitions of 4: 5
/// ```
pub fn count_trees(n: usize, max_depth: usize) -> Option<u128> {
    if n == 0 {
        return Some(0);
    }
    // t[d][m] = number of rooted trees with m vertices, depth <= d.
    // t[0][m] = [m == 1].
    let mut t = vec![0u128; n + 1];
    if n >= 1 {
        t[1] = 1;
    }
    for _ in 0..max_depth {
        t = forests_from(&t, n)?;
        // Trees of depth <= d+1 with m vertices = forests of depth-<= d
        // trees with m-1 vertices; shift by one (root).
        let mut next = vec![0u128; n + 1];
        for m in 1..=n {
            next[m] = t[m - 1];
        }
        t = next;
    }
    Some(t[n])
}

/// Given `t[m]` = number of tree types of size `m`, computes `f[m]` =
/// number of multisets of trees with total size `m` (with `f\[0] = 1`),
/// up to size `max`. Returns `None` on overflow.
fn forests_from(t: &[u128], max: usize) -> Option<Vec<u128>> {
    let mut f = vec![0u128; max + 1];
    f[0] = 1;
    for m in 1..=max {
        let types = t[m];
        if types == 0 {
            continue;
        }
        // Incorporate trees of size m: for each count j >= 1, multiply by
        // the number of multisets of j items from `types` types:
        // C(types + j - 1, j). Process as a convolution, iterating j.
        let mut g = f.clone();
        let mut choose = 1u128; // C(types + j - 1, j) built incrementally.
        for j in 1..=(max / m) {
            // choose *= (types + j - 1) / j, exactly (binomials divide).
            choose = mul_div_exact(choose, types.checked_add(j as u128 - 1)?, j as u128)?;
            for total in (j * m)..=max {
                let add = f[total - j * m].checked_mul(choose)?;
                g[total] = g[total].checked_add(add)?;
            }
        }
        f = g;
    }
    Some(f)
}

/// Computes `a * b / c` where the division is exact, guarding overflow by
/// dividing first through `gcd`s.
fn mul_div_exact(a: u128, b: u128, c: u128) -> Option<u128> {
    let g1 = gcd(a, c);
    let (a, c) = (a / g1, c / g1);
    let g2 = gcd(b, c);
    let (b, c) = (b / g2, c / g2);
    debug_assert_eq!(c, 1, "binomial recurrence divides exactly");
    a.checked_mul(b)
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Floating-point variant of [`count_trees`]: returns `log2` of the count
/// (`f64::NEG_INFINITY` if the count is zero), usable far beyond `u128`
/// range. Counts are accumulated in `f64`, so precision is a few ulps —
/// ample for plotting the `Θ(n / log log n)` growth of Theorem 2.3.
pub fn count_trees_log2(n: usize, max_depth: usize) -> f64 {
    if n == 0 {
        return f64::NEG_INFINITY;
    }
    let mut t = vec![0f64; n + 1];
    t[1] = 1.0;
    for _ in 0..max_depth {
        // Forest counts via the same convolution in f64.
        let mut f = vec![0f64; n + 1];
        f[0] = 1.0;
        for m in 1..=n {
            let types = t[m];
            if types == 0.0 {
                continue;
            }
            let mut g = f.clone();
            let mut choose = 1f64;
            for j in 1..=(n / m) {
                choose = choose * (types + j as f64 - 1.0) / j as f64;
                for total in (j * m)..=n {
                    g[total] += f[total - j * m] * choose;
                }
            }
            f = g;
        }
        let mut next = vec![0f64; n + 1];
        for m in 1..=n {
            next[m] = f[m - 1];
        }
        t = next;
    }
    t[n].log2()
}

/// A rooted tree represented canonically as a parent array in preorder
/// (entry 0 is the root with parent `usize::MAX`).
pub type ParentVec = Vec<usize>;

/// All non-isomorphic rooted trees with exactly `n` vertices and depth at
/// most `max_depth`, as preorder parent arrays.
///
/// Enumeration is canonical (children subtrees listed in non-increasing
/// canonical order), so no two results are isomorphic.
///
/// # Panics
///
/// Panics if `n > 24` (combinatorial explosion guard).
pub fn enumerate_trees(n: usize, max_depth: usize) -> Vec<ParentVec> {
    assert!(
        n <= 24,
        "exhaustive tree enumeration limited to 24 vertices"
    );
    if n == 0 {
        return Vec::new();
    }
    // Enumerate recursively: a tree of size n, depth <= d is a root plus a
    // canonical multiset of subtrees of depth <= d-1 totaling n-1 vertices.
    // Canonical multiset: a non-increasing sequence of encoded subtrees
    // (compare by (size, code) descending).
    fn trees(n: usize, d: usize, memo: &mut Memo) -> Vec<Code> {
        if n == 0 {
            return Vec::new();
        }
        if n > 1 && d == 0 {
            return Vec::new();
        }
        if let Some(hit) = memo.get(&(n, d)) {
            return hit.clone();
        }
        let mut out = Vec::new();
        if n == 1 {
            out.push(Code(vec![]));
        } else {
            // Choose a multiset of subtrees of total size n-1, each of
            // depth <= d-1, in non-increasing Code order.
            let pool_max = n - 1;
            let mut options: Vec<Code> = Vec::new();
            for m in (1..=pool_max).rev() {
                options.extend(trees(m, d - 1, memo));
            }
            // `options` is sorted by decreasing size; within a size the
            // recursive order is deterministic. Enumerate non-increasing
            // (by index) selections summing to n-1.
            fn go(
                options: &[Code],
                start: usize,
                remaining: usize,
                acc: &mut Vec<Code>,
                out: &mut Vec<Code>,
            ) {
                if remaining == 0 {
                    out.push(Code::join(acc));
                    return;
                }
                for i in start..options.len() {
                    let sz = options[i].size();
                    if sz > remaining {
                        continue;
                    }
                    acc.push(options[i].clone());
                    go(options, i, remaining - sz, acc, out);
                    acc.pop();
                }
            }
            let mut acc = Vec::new();
            go(&options, 0, n - 1, &mut acc, &mut out);
        }
        memo.insert((n, d), out.clone());
        out
    }

    /// Subtree encoding: the preorder parent array of the subtree relative
    /// to its root (children blocks in enumeration order).
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Code(Vec<usize>);
    impl Code {
        /// Number of vertices of the encoded subtree (root + entries).
        fn size(&self) -> usize {
            self.0.len() + 1
        }
        /// Joins child codes under a fresh root.
        fn join(children: &[Code]) -> Code {
            let mut v = Vec::new();
            let mut offset = 1usize; // next free index after the root (0).
            for c in children {
                v.push(0); // the child's root hangs off our root.
                for &p in &c.0 {
                    v.push(p + offset);
                }
                offset += c.size();
            }
            Code(v)
        }
    }
    type Memo = std::collections::HashMap<(usize, usize), Vec<Code>>;

    let mut memo = Memo::new();
    trees(n, max_depth, &mut memo)
        .into_iter()
        .map(|c| {
            let mut pv = vec![usize::MAX];
            pv.extend(c.0);
            pv
        })
        .collect()
}

/// Converts a preorder parent array into a [`RootedTree`].
///
/// # Panics
///
/// Panics if the array is not a valid preorder parent array.
pub fn parent_vec_to_rooted(pv: &ParentVec) -> RootedTree {
    let parents: Vec<Option<usize>> = pv
        .iter()
        .map(|&p| if p == usize::MAX { None } else { Some(p) })
        .collect();
    RootedTree::from_parent_array(&parents).expect("valid preorder parent array")
}

/// Injection from bit strings to rooted trees of depth 2 via integer
/// partitions with *distinct parts*: bit `i` of `s` (0-based) controls
/// whether child `i` has `2i + 2 + s_i` leaf children. Children sizes are
/// pairwise distinct, so the multiset of children determines the string.
///
/// The resulting tree has `1 + ℓ + Σ(2i + 2 + s_i)` vertices, i.e.
/// `n = Θ(ℓ²)` — this is the `2^{Θ(√n)}` depth-2 regime mentioned at the
/// end of the proof of Theorem 2.3.
pub fn string_to_tree_depth2(s: &[bool]) -> ParentVec {
    let mut pv = vec![usize::MAX];
    for (i, &bit) in s.iter().enumerate() {
        let child = pv.len();
        pv.push(0);
        let leaves = 2 * i + 2 + usize::from(bit);
        for _ in 0..leaves {
            pv.push(child);
        }
    }
    pv
}

/// Inverse of [`string_to_tree_depth2`] on its image (up to isomorphism:
/// only the multiset of child sizes is read). Returns `None` if the tree is
/// not in the image for the given string length `len`.
pub fn tree_depth2_to_string(t: &RootedTree, len: usize) -> Option<Vec<bool>> {
    let root = t.root();
    let kids = t.children(root);
    if kids.len() != len {
        return None;
    }
    let mut sizes: Vec<usize> = kids.iter().map(|&c| t.children(c).len()).collect();
    sizes.sort_unstable();
    let mut out = Vec::with_capacity(len);
    for (i, &sz) in sizes.iter().enumerate() {
        // Expected size: 2i + 2 + bit.
        if sz == 2 * i + 2 {
            out.push(false);
        } else if sz == 2 * i + 3 {
            out.push(true);
        } else {
            return None;
        }
    }
    // Validate depth-2 shape: grandchildren are leaves.
    for &c in kids {
        for &gc in t.children(c) {
            if !t.children(gc).is_empty() {
                return None;
            }
        }
    }
    Some(out)
}

/// Rank-based injection for small sizes: all strings of length
/// `⌊log2(count_trees(n, depth))⌋` map to distinct trees of exactly `n`
/// vertices, via the exhaustive enumeration.
///
/// Returns the enumerated trees and the supported string length.
///
/// # Panics
///
/// Panics if `n > 24` (enumeration guard).
pub fn enumeration_injection(n: usize, max_depth: usize) -> (Vec<ParentVec>, usize) {
    let all = enumerate_trees(n, max_depth);
    let bits = if all.len() <= 1 {
        0
    } else {
        (usize::BITS - 1 - (all.len().leading_zeros())) as usize
    };
    (all, bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Number of integer partitions of n (OEIS A000041).
    const PARTITIONS: [u128; 11] = [1, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42];

    #[test]
    fn depth0_counts() {
        assert_eq!(count_trees(1, 0), Some(1));
        assert_eq!(count_trees(2, 0), Some(0));
        assert_eq!(count_trees(0, 5), Some(0));
    }

    #[test]
    fn depth1_counts_are_stars() {
        for n in 1..10 {
            assert_eq!(count_trees(n, 1), Some(1), "n = {n}");
        }
    }

    #[test]
    fn depth2_counts_are_partitions() {
        // A depth-<=2 tree on n vertices = a partition of n-1 (children
        // subtree sizes, each subtree being a star).
        for n in 1..=10 {
            assert_eq!(count_trees(n, 2), Some(PARTITIONS[n - 1]), "n = {n}");
        }
    }

    #[test]
    fn unbounded_depth_matches_oeis() {
        // Rooted unlabeled trees (OEIS A000081): 1, 1, 2, 4, 9, 20, 48, 115, 286, 719.
        let expected: [u128; 10] = [1, 1, 2, 4, 9, 20, 48, 115, 286, 719];
        for (i, &e) in expected.iter().enumerate() {
            let n = i + 1;
            assert_eq!(count_trees(n, n), Some(e), "n = {n}");
        }
    }

    #[test]
    fn log2_matches_exact_counts() {
        for n in [5usize, 8, 12] {
            for d in [2usize, 3, 4] {
                let exact = count_trees(n, d).unwrap() as f64;
                let log = count_trees_log2(n, d);
                assert!((log - exact.log2()).abs() < 1e-9, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn enumeration_count_agrees() {
        for n in 1..=9 {
            for d in 0..=4 {
                let listed = enumerate_trees(n, d).len() as u128;
                assert_eq!(Some(listed), count_trees(n, d), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn enumeration_produces_valid_distinct_trees() {
        use crate::canon::ahu_code;
        let all = enumerate_trees(7, 3);
        let mut codes = std::collections::HashSet::new();
        for pv in &all {
            let t = parent_vec_to_rooted(pv);
            assert_eq!(t.num_nodes(), 7);
            assert!(t.height() <= 3);
            assert!(codes.insert(ahu_code(&t)), "duplicate tree {pv:?}");
        }
    }

    #[test]
    fn depth2_injection_roundtrip() {
        for bits in [0b0000usize, 0b1010, 0b1111, 0b0001] {
            let s: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            let pv = string_to_tree_depth2(&s);
            let t = parent_vec_to_rooted(&pv);
            assert!(t.height() <= 2);
            assert_eq!(tree_depth2_to_string(&t, 4), Some(s));
        }
    }

    #[test]
    fn depth2_injection_distinct_codes() {
        use crate::canon::ahu_code;
        let mut codes = std::collections::HashSet::new();
        for bits in 0..16usize {
            let s: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            let t = parent_vec_to_rooted(&string_to_tree_depth2(&s));
            assert!(codes.insert(ahu_code(&t)));
        }
    }

    #[test]
    fn depth2_inverse_rejects_foreign_trees() {
        let t = parent_vec_to_rooted(&vec![usize::MAX, 0, 0]);
        assert_eq!(tree_depth2_to_string(&t, 4), None);
    }

    #[test]
    fn enumeration_injection_capacity() {
        let (all, bits) = enumeration_injection(8, 3);
        assert!(1usize << bits <= all.len());
        assert!(all.len() < 2usize << bits.max(1));
    }

    #[test]
    fn counts_grow_with_depth() {
        for n in [6usize, 10, 14] {
            let c2 = count_trees(n, 2).unwrap();
            let c3 = count_trees(n, 3).unwrap();
            let c4 = count_trees(n, 4).unwrap();
            assert!(c2 <= c3 && c3 <= c4, "n = {n}");
        }
    }
}
