//! Rooted trees extracted from tree-shaped graphs.
//!
//! A [`RootedTree`] fixes a root in a tree-shaped [`Graph`] and
//! precomputes parents, children lists and depths. It is the shared
//! substrate for AHU canonical forms ([`crate::canon`]), tree automata runs
//! and the kernelization of Section 6 of the paper.

use crate::graph::Graph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// A rooted tree over the vertex set of a tree-shaped graph.
///
/// # Example
///
/// ```
/// use locert_graph::{generators, RootedTree, NodeId};
///
/// let g = generators::path(3);
/// let t = RootedTree::from_tree(&g, NodeId(1)).unwrap();
/// assert_eq!(t.depth(NodeId(1)), 0);
/// assert_eq!(t.children(NodeId(1)).len(), 2);
/// assert_eq!(t.height(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
}

impl RootedTree {
    /// Roots the tree-shaped graph `g` at `root`.
    ///
    /// Returns `None` if `g` is not a tree or `root` is out of range.
    pub fn from_tree(g: &Graph, root: NodeId) -> Option<Self> {
        if root.0 >= g.num_nodes() || !g.is_tree() {
            return None;
        }
        let n = g.num_nodes();
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut depth = vec![0usize; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[root.0] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v.0] {
                    seen[v.0] = true;
                    parent[v.0] = Some(u);
                    children[u.0].push(v);
                    depth[v.0] = depth[u.0] + 1;
                    queue.push_back(v);
                }
            }
        }
        Some(RootedTree {
            root,
            parent,
            children,
            depth,
        })
    }

    /// Builds a rooted tree directly from a parent array (`parent[root] ==
    /// None`, exactly one root).
    ///
    /// Returns `None` if the array does not describe a rooted tree (multiple
    /// or zero roots, out-of-range parents, or cycles).
    pub fn from_parent_array(parent: &[Option<usize>]) -> Option<Self> {
        let n = parent.len();
        let mut root = None;
        for (v, p) in parent.iter().enumerate() {
            match p {
                None => {
                    if root.is_some() {
                        return None;
                    }
                    root = Some(v);
                }
                Some(p) if *p >= n => return None,
                _ => {}
            }
        }
        let root = NodeId(root?);
        let mut children = vec![Vec::new(); n];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(NodeId(v));
            }
        }
        // Compute depths by BFS from the root; cycle (or disconnection)
        // detection: every vertex must be reached exactly once.
        let mut depth = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        depth[root.0] = 0;
        queue.push_back(root);
        let mut reached = 0;
        while let Some(u) = queue.pop_front() {
            reached += 1;
            for &c in &children[u.0] {
                depth[c.0] = depth[u.0] + 1;
                queue.push_back(c);
            }
        }
        if reached != n {
            return None;
        }
        Some(RootedTree {
            root,
            parent: parent.iter().map(|p| p.map(NodeId)).collect(),
            children,
            depth,
        })
    }

    /// The root.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.0]
    }

    /// Children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.0]
    }

    /// Depth of `v` (root has depth 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v.0]
    }

    /// Height of the tree: maximum depth over all vertices.
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Ancestors of `v` from `v` itself up to the root (inclusive).
    pub fn ancestors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.0] {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Whether `a` is an ancestor of `d` (a vertex is an ancestor of itself).
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        let mut cur = d;
        loop {
            if cur == a {
                return true;
            }
            match self.parent[cur.0] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Vertices of the subtree rooted at `v`, in preorder.
    pub fn subtree(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            for &c in &self.children[u.0] {
                stack.push(c);
            }
        }
        out
    }

    /// Vertices in an order such that every vertex appears after all of its
    /// descendants (children before parents): a postorder.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![(self.root, false)];
        while let Some((u, expanded)) = stack.pop() {
            if expanded {
                order.push(u);
            } else {
                stack.push((u, true));
                for &c in &self.children[u.0] {
                    stack.push((c, false));
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn from_tree_rejects_non_trees() {
        assert!(RootedTree::from_tree(&generators::cycle(4), NodeId(0)).is_none());
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(RootedTree::from_tree(&g, NodeId(0)).is_none());
        assert!(RootedTree::from_tree(&generators::path(3), NodeId(9)).is_none());
    }

    #[test]
    fn path_rooted_at_end() {
        let g = generators::path(4);
        let t = RootedTree::from_tree(&g, NodeId(0)).unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.depth(NodeId(3)), 3);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(
            t.ancestors(NodeId(3)),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn is_ancestor_and_subtree() {
        let g = generators::star(5);
        let t = RootedTree::from_tree(&g, NodeId(0)).unwrap();
        assert!(t.is_ancestor(NodeId(0), NodeId(3)));
        assert!(t.is_ancestor(NodeId(3), NodeId(3)));
        assert!(!t.is_ancestor(NodeId(3), NodeId(0)));
        assert_eq!(t.subtree(NodeId(0)).len(), 5);
        assert_eq!(t.subtree(NodeId(2)), vec![NodeId(2)]);
    }

    #[test]
    fn postorder_children_before_parents() {
        let g = generators::complete_kary_tree(2, 2);
        let t = RootedTree::from_tree(&g, NodeId(0)).unwrap();
        let order = t.postorder();
        assert_eq!(order.len(), 7);
        let pos: Vec<usize> = {
            let mut p = vec![0; 7];
            for (i, v) in order.iter().enumerate() {
                p[v.0] = i;
            }
            p
        };
        for v in g.nodes() {
            if let Some(par) = t.parent(v) {
                assert!(pos[v.0] < pos[par.0], "child {v} must precede parent {par}");
            }
        }
    }

    #[test]
    fn from_parent_array_valid() {
        let t = RootedTree::from_parent_array(&[None, Some(0), Some(0), Some(1)]).unwrap();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.height(), 2);
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn from_parent_array_rejects_bad_inputs() {
        // Two roots.
        assert!(RootedTree::from_parent_array(&[None, None]).is_none());
        // No root (2-cycle).
        assert!(RootedTree::from_parent_array(&[Some(1), Some(0)]).is_none());
        // Out of range.
        assert!(RootedTree::from_parent_array(&[None, Some(7)]).is_none());
        // Cycle among non-roots.
        assert!(RootedTree::from_parent_array(&[None, Some(2), Some(1)]).is_none());
    }

    #[test]
    fn single_vertex_tree() {
        let g = Graph::empty(1);
        let t = RootedTree::from_tree(&g, NodeId(0)).unwrap();
        assert_eq!(t.height(), 0);
        assert_eq!(t.subtree(NodeId(0)), vec![NodeId(0)]);
        assert_eq!(t.postorder(), vec![NodeId(0)]);
    }
}
