//! Network identifier assignments.
//!
//! The certification model (Section 3.3) equips vertices with unique
//! identifiers from a polynomial range `[1, n^c]`. Certification must be
//! correct for *every* such assignment, so the test suites exercise both
//! the contiguous assignment and adversarial (random, gappy) ones.

use crate::node::{Ident, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use std::collections::HashMap;

/// An injective assignment of identifiers to the vertices `0..n`.
///
/// # Example
///
/// ```
/// use locert_graph::{IdAssignment, NodeId};
///
/// let ids = IdAssignment::contiguous(4);
/// assert_eq!(ids.ident(NodeId(2)).value(), 3);
/// assert_eq!(ids.node_of(3.into()), Some(NodeId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdAssignment {
    ids: Vec<Ident>,
    reverse: HashMap<Ident, NodeId>,
}

impl IdAssignment {
    /// Builds an assignment from explicit identifiers.
    ///
    /// Returns `None` if the identifiers are not pairwise distinct.
    pub fn new(ids: Vec<Ident>) -> Option<Self> {
        let mut reverse = HashMap::with_capacity(ids.len());
        for (v, &id) in ids.iter().enumerate() {
            if reverse.insert(id, NodeId(v)).is_some() {
                return None;
            }
        }
        Some(IdAssignment { ids, reverse })
    }

    /// The canonical assignment `v ↦ v + 1`.
    pub fn contiguous(n: usize) -> Self {
        Self::new((1..=n as u64).map(Ident).collect()).expect("contiguous ids are distinct")
    }

    /// A uniformly random injective assignment into `[1, n^c]`.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` (the range must contain at least `n` values) or
    /// if `n^c` overflows `u64`.
    pub fn random_polynomial<R: Rng + ?Sized>(n: usize, c: u32, rng: &mut R) -> Self {
        assert!(c >= 1, "range exponent must be at least 1");
        let max = (n as u64)
            .checked_pow(c)
            .expect("n^c must fit in u64")
            .max(n as u64);
        // Rejection-sample distinct values (fast when max >= 2n), else
        // shuffle the full range.
        if max >= 2 * n as u64 {
            let mut chosen = std::collections::HashSet::with_capacity(n);
            let mut ids = Vec::with_capacity(n);
            while ids.len() < n {
                let x = rng.random_range(1..=max);
                if chosen.insert(x) {
                    ids.push(Ident(x));
                }
            }
            Self::new(ids).expect("sampled ids are distinct")
        } else {
            let mut all: Vec<u64> = (1..=max).collect();
            all.shuffle(rng);
            Self::new(all.into_iter().take(n).map(Ident).collect())
                .expect("shuffled ids are distinct")
        }
    }

    /// A random permutation of the contiguous identifiers `1..=n`.
    pub fn shuffled<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut ids: Vec<u64> = (1..=n as u64).collect();
        ids.shuffle(rng);
        Self::new(ids.into_iter().map(Ident).collect()).expect("permutation is injective")
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the assignment covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The identifier of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn ident(&self, v: NodeId) -> Ident {
        self.ids[v.0]
    }

    /// The vertex carrying identifier `id`, if any.
    pub fn node_of(&self, id: Ident) -> Option<NodeId> {
        self.reverse.get(&id).copied()
    }

    /// Maximum number of bits over all identifiers (0 for an empty
    /// assignment).
    pub fn max_bits(&self) -> u32 {
        self.ids.iter().map(|i| i.bits()).max().unwrap_or(0)
    }

    /// Iterator over `(vertex, identifier)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Ident)> + '_ {
        self.ids.iter().enumerate().map(|(v, &id)| (NodeId(v), id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn contiguous_roundtrip() {
        let ids = IdAssignment::contiguous(5);
        assert_eq!(ids.len(), 5);
        for v in 0..5 {
            let id = ids.ident(NodeId(v));
            assert_eq!(ids.node_of(id), Some(NodeId(v)));
        }
        assert_eq!(ids.max_bits(), 3);
    }

    #[test]
    fn duplicate_ids_rejected() {
        assert!(IdAssignment::new(vec![Ident(1), Ident(1)]).is_none());
    }

    #[test]
    fn random_polynomial_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let ids = IdAssignment::random_polynomial(20, 3, &mut rng);
        assert_eq!(ids.len(), 20);
        let mut seen = std::collections::HashSet::new();
        for (_, id) in ids.iter() {
            assert!(id.value() >= 1 && id.value() <= 8000);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn random_polynomial_tight_range() {
        // c = 1 forces the full permutation path.
        let mut rng = StdRng::seed_from_u64(8);
        let ids = IdAssignment::random_polynomial(10, 1, &mut rng);
        let mut values: Vec<u64> = ids.iter().map(|(_, id)| id.value()).collect();
        values.sort_unstable();
        assert_eq!(values, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let ids = IdAssignment::shuffled(8, &mut rng);
        let mut values: Vec<u64> = ids.iter().map(|(_, id)| id.value()).collect();
        values.sort_unstable();
        assert_eq!(values, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_assignment() {
        let ids = IdAssignment::contiguous(0);
        assert!(ids.is_empty());
        assert_eq!(ids.max_bits(), 0);
    }
}
