//! CSR observational equivalence: the flat offsets/neighbors layout
//! behind [`locert_graph::Graph`] must be indistinguishable from the
//! adjacency-set model it replaced, for every generator family.
//!
//! The reference model is a per-vertex `BTreeSet` rebuilt from the
//! graph's own edge list: if the CSR slices were unsorted, duplicated,
//! asymmetric, or misaligned against `offsets`, the slices and the sets
//! would disagree somewhere. On top of that, BFS orders, `digest()`,
//! and `.graph` text round-trips must all be stable under a rebuild —
//! those are the observations the certification stack actually makes.

use locert_graph::digest::digest;
use locert_graph::io::{parse_edge_list, to_edge_list};
use locert_graph::{generators, traversal, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeSet, VecDeque};

/// Every generator family at a size steered by `seed`.
fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 + (seed as usize % 21);
    let mut out = vec![
        ("path", generators::path(n)),
        ("cycle", generators::cycle(n.max(3))),
        ("clique", generators::clique(n.min(8))),
        ("star", generators::star(n)),
        ("spider", generators::spider(1 + n % 4, 1 + n % 5)),
        ("kary", generators::complete_kary_tree(2 + n % 2, 1 + n % 3)),
        ("random_tree", generators::random_tree(n, &mut rng)),
        (
            "random_connected",
            generators::random_connected(n, n / 2, &mut rng),
        ),
    ];
    let (g, _) = generators::random_bounded_treedepth(n.max(4), 3, 0.4, &mut rng);
    out.push(("bounded_td", g));
    out
}

/// Reference adjacency sets, rebuilt from the edge list alone.
fn reference_sets(g: &Graph) -> Vec<BTreeSet<usize>> {
    let mut sets = vec![BTreeSet::new(); g.num_nodes()];
    for (u, v) in g.edges() {
        sets[u.0].insert(v.0);
        sets[v.0].insert(u.0);
    }
    sets
}

/// BFS visit order over the reference sets (queue discipline, ascending
/// neighbor order) — the order the adjacency-set graph produced.
fn reference_bfs(sets: &[BTreeSet<usize>], source: usize) -> Vec<usize> {
    let mut seen = vec![false; sets.len()];
    let mut order = Vec::new();
    let mut queue = VecDeque::from([source]);
    seen[source] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in &sets[u] {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// BFS visit order over the CSR slices.
fn csr_bfs(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = VecDeque::from([source]);
    seen[source.0] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u.0);
        for &v in g.neighbors(u) {
            if !seen[v.0] {
                seen[v.0] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_matches_adjacency_set_model(seed in 0u64..1 << 16) {
        for (name, g) in families(seed) {
            let sets = reference_sets(&g);

            // Neighbor slices: sorted, duplicate-free, symmetric, and
            // aligned with degrees and the edge count.
            let mut degree_sum = 0;
            for v in g.nodes() {
                let slice = g.neighbors(v);
                prop_assert!(
                    slice.windows(2).all(|w| w[0] < w[1]),
                    "{name}: neighbors of {v:?} not strictly sorted"
                );
                let as_set: BTreeSet<usize> = slice.iter().map(|u| u.0).collect();
                prop_assert_eq!(
                    &as_set, &sets[v.0],
                    "{}: neighbor set of {:?} diverged", name, v
                );
                prop_assert_eq!(g.degree(v), slice.len(), "{}: degree of {:?}", name, v);
                degree_sum += slice.len();
                for &u in slice {
                    prop_assert!(g.has_edge(v, u) && g.has_edge(u, v),
                        "{name}: has_edge asymmetric on ({v:?}, {u:?})");
                }
            }
            prop_assert_eq!(degree_sum, 2 * g.num_edges(), "{}: handshake", name);

            // BFS observation: the CSR slices visit in exactly the order
            // the sorted adjacency sets did.
            prop_assert_eq!(
                csr_bfs(&g, NodeId(0)),
                reference_bfs(&sets, 0),
                "{}: BFS order changed", name
            );
            prop_assert_eq!(
                traversal::is_connected(&g),
                reference_bfs(&sets, 0).len() == g.num_nodes(),
                "{}: connectivity", name
            );
        }
    }

    #[test]
    fn csr_rebuilds_and_io_round_trips_are_fixpoints(seed in 0u64..1 << 16) {
        for (name, g) in families(seed) {
            // Rebuilding through the set-based builder is the identity.
            let mut b = GraphBuilder::new(g.num_nodes());
            for (u, v) in g.edges() {
                b.add_edge(u.0, v.0).unwrap();
            }
            let rebuilt = b.build();
            prop_assert_eq!(&rebuilt, &g, "{}: builder round-trip", name);
            prop_assert_eq!(digest(&rebuilt), digest(&g), "{}: digest drift", name);

            // `.graph` text round-trip preserves the graph and its digest.
            let parsed = parse_edge_list(&to_edge_list(&g)).unwrap();
            prop_assert_eq!(&parsed, &g, "{}: io round-trip", name);
            prop_assert_eq!(digest(&parsed), digest(&g), "{}: io digest drift", name);
        }
    }
}
