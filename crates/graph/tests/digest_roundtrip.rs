//! Digest stability under presentation relabeling: any `.graph` text
//! that parses to the same labeled graph — shuffled edge lines, flipped
//! endpoints, duplicated edges, comments, a redundant header, CRLF —
//! must produce the same [`locert_graph::digest::digest`] value after
//! an `io` round-trip. This is the property that makes the digest safe
//! as a persisted cache key: clients may serialize however they like.

use locert_graph::digest::{digest, digest_instance};
use locert_graph::io::{parse_edge_list, to_edge_list};
use locert_graph::{generators, IdAssignment};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Renders `g` as a deliberately messy edge list steered by `rng`.
fn noisy_presentation(g: &locert_graph::Graph, rng: &mut StdRng) -> String {
    let mut lines: Vec<String> = g
        .edges()
        .map(|(u, v)| {
            if rng.random_bool(0.5) {
                format!("{} {}", v.0, u.0)
            } else {
                format!("{} {}", u.0, v.0)
            }
        })
        .collect();
    // Duplicate a few edges; the parser collapses them.
    for _ in 0..rng.random_range(0..3usize) {
        if !lines.is_empty() {
            let pick = lines[rng.random_range(0..lines.len())].clone();
            lines.push(pick);
        }
    }
    lines.shuffle(rng);
    // Interleave comment and blank lines.
    let mut out = String::new();
    // The header is required when isolated vertices exist; emitting it
    // always exercises the duplicate-information path too.
    out.push_str(&format!("c noisy presentation\np {}\n", g.num_nodes()));
    let crlf = rng.random_bool(0.5);
    let eol = if crlf { "\r\n" } else { "\n" };
    for line in lines {
        if rng.random_bool(0.2) {
            out.push_str("# noise");
            out.push_str(eol);
        }
        if rng.random_bool(0.1) {
            out.push_str(eol);
        }
        out.push_str(&line);
        out.push_str(eol);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn noisy_round_trips_hash_identically(seed in 0u64..1 << 16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(2..24usize);
        let extra = rng.random_range(0..8usize);
        let g = generators::random_connected(n, extra, &mut rng);
        let reference = digest(&g);

        // The canonical round-trip is a fixpoint.
        let canonical = parse_edge_list(&to_edge_list(&g)).unwrap();
        prop_assert_eq!(digest(&canonical), reference);

        // Any messy presentation of the same labeled graph agrees.
        for _ in 0..3 {
            let noisy = noisy_presentation(&g, &mut rng);
            let parsed = parse_edge_list(&noisy).unwrap();
            prop_assert_eq!(
                digest(&parsed),
                reference,
                "presentation changed the digest:\n{}",
                noisy
            );
        }
    }

    /// Relabeling network identifiers is invisible to the digest: the
    /// instance key depends on the labeled graph and inputs only, never
    /// on the identifier assignment a deployment happens to use.
    #[test]
    fn identifier_relabeling_preserves_instance_digest(seed in 0u64..1 << 16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(2..16usize);
        let g = generators::random_connected(n, 2, &mut rng);
        let word: Vec<usize> = (0..n).map(|_| rng.random_range(0..2usize)).collect();
        let before = digest_instance(&g, Some(&word));
        // Identifier assignments live outside the graph; shuffling them
        // must leave every digest untouched (they are not hashed).
        let _shuffled = IdAssignment::shuffled(n, &mut rng);
        prop_assert_eq!(digest_instance(&g, Some(&word)), before);
        prop_assert_eq!(digest(&g), digest(&parse_edge_list(&to_edge_list(&g)).unwrap()));
    }
}
