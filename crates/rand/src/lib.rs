//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.10 API it actually uses:
//! [`Rng`]/[`RngExt`] with `random_range`/`random_bool`, [`SeedableRng`]
//! with `seed_from_u64`, [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64), and the slice helpers [`seq::SliceRandom`] and
//! [`seq::IndexedRandom`]. Everything is deterministic given a seed, which
//! is all the test- and experiment-suites rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random bits. The workspace only ever needs `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience samplers layered on [`Rng`] (rand 0.10 spells these
/// `random_*`; the extension trait keeps `Rng` object-safe).
pub trait RngExt: Rng {
    /// A uniform sample from `range` (exclusive or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable construction (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `0..span` without modulo bias (rejection sampling).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Accept x <= threshold where threshold + 1 is the largest multiple of
    // `span` that fits; when span divides 2^64 every draw is accepted.
    let threshold = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let x = rng.next_u64();
        if x <= threshold {
            return x % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state-seeded through SplitMix64 (the reference recommendation).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`, `sample`).
pub mod seq {
    use super::{Rng, RngExt};

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when
        /// `amount >= len`).
        fn sample<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }

        fn sample<R: Rng + ?Sized>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.random_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

/// The commonly glob-imported surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::{IndexedRandom, SliceRandom};
    pub use super::{Rng, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::SampleRange;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5..=5u64);
            assert_eq!(y, 5);
            let z = rng.random_range(0..=u64::MAX);
            let _ = z;
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = (5..5usize).sample_from(&mut rng);
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_sample() {
        let mut rng = StdRng::seed_from_u64(17);
        let v: Vec<u32> = (0..10).collect();
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
        let picked: Vec<u32> = v.sample(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "sample must be distinct");
        // Oversampling returns everything.
        assert_eq!(v.sample(&mut rng, 99).count(), 10);
    }
}
