//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`] with
//! `sample_size` / `measurement_time` / `warm_up_time`, benchmark groups
//! with `bench_function` / `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! statistical analysis it reports a per-benchmark mean wall time — enough
//! to compare hot paths across commits in this offline setting.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` like the real crate.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-time budget per benchmark measurement.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-time budget for warm-up.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let label = name.to_string();
        run_one(self, &label, &mut f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(c: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size: c.sample_size,
        warm_up_time: c.warm_up_time,
        measurement_time: c.measurement_time,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    eprintln!(
        "bench {label}: mean {:.1} ns over {} iters",
        bencher.mean_ns, bencher.iters
    );
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling until the sample
    /// count or the measurement budget is reached.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

/// Identifies a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    inner: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            inner: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            inner: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.inner)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("smoke");
            g.bench_function("inline", |b| b.iter(|| black_box(2 + 2)));
            g.bench_with_input(BenchmarkId::from_parameter(5), &5usize, |b, &n| {
                b.iter(|| black_box(n * n));
            });
            g.finish();
        }
        c.bench_function("top-level", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("n_t", "64_3").to_string(), "n_t/64_3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
