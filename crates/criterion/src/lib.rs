//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`] with
//! `sample_size` / `measurement_time` / `warm_up_time`, benchmark groups
//! with `bench_function` / `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! statistical analysis it reports per-benchmark min/median/mean wall
//! times — enough to compare hot paths across commits in this offline
//! setting — and [`criterion_main!`] writes the collected results as
//! `BENCH_<bench-name>.json` under the workspace `target/` directory
//! (scratch output). Set `LOCERT_BENCH_BASELINE=1` to write to the
//! workspace root instead — that is how the committed baseline used by
//! `bench-diff` is regenerated.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` like the real crate.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-time budget per benchmark measurement.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-time budget for warm-up.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let label = name.to_string();
        run_one(self, &label, &mut f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Summary statistics over one benchmark's timed samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of timed samples taken.
    pub iters: u64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
    /// Median sample in nanoseconds.
    pub median_ns: f64,
    /// Mean sample in nanoseconds.
    pub mean_ns: f64,
}

impl SampleStats {
    fn from_samples(samples: &[f64]) -> SampleStats {
        if samples.is_empty() {
            return SampleStats {
                iters: 0,
                min_ns: 0.0,
                median_ns: 0.0,
                mean_ns: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        SampleStats {
            iters: n as u64,
            min_ns: sorted[0],
            median_ns: median,
            mean_ns: sorted.iter().sum::<f64>() / n as f64,
        }
    }
}

/// All results recorded so far in this process, in run order.
static RESULTS: Mutex<Vec<(String, SampleStats)>> = Mutex::new(Vec::new());

/// Snapshot of the results recorded so far (label, stats).
pub fn collected_results() -> Vec<(String, SampleStats)> {
    RESULTS.lock().expect("results lock").clone()
}

fn run_one(c: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size: c.sample_size,
        warm_up_time: c.warm_up_time,
        measurement_time: c.measurement_time,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    let stats = SampleStats::from_samples(&bencher.samples_ns);
    eprintln!(
        "bench {label}: min {:.1} ns, median {:.1} ns, mean {:.1} ns over {} iters",
        stats.min_ns, stats.median_ns, stats.mean_ns, stats.iters
    );
    RESULTS
        .lock()
        .expect("results lock")
        .push((label.to_string(), stats));
}

/// Derives the report file name from the bench binary path: cargo names
/// bench executables `<bench-name>-<hash>`, so strip one trailing
/// `-<hex>` segment from the file stem.
fn bench_stem(argv0: &str) -> String {
    let stem = std::path::Path::new(argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && !hash.is_empty()
                && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Topmost ancestor of the working directory that contains a
/// `Cargo.toml` — the workspace root under `cargo bench`, which runs
/// bench binaries from the package directory. Falls back to `.`.
fn report_dir() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut best = None;
    let mut dir = Some(cwd.as_path());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() {
            best = Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    best.unwrap_or(cwd)
}

/// Writes every recorded result as `BENCH_<bench-name>.json` under the
/// workspace `target/` directory (see [`report_dir`]), or in the
/// workspace root itself when `LOCERT_BENCH_BASELINE` is set to anything
/// but `0` (baseline regeneration). Called by [`criterion_main!`];
/// exposed for custom harnesses.
pub fn write_report() {
    let results = collected_results();
    let name = bench_stem(&std::env::args().next().unwrap_or_default());
    let mut json = String::from("{\n  \"schema\": \"locert-criterion/v1\",\n  \"benchmarks\": [");
    for (i, (label, s)) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {:.1}, \
             \"median_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            json_escape(label),
            s.iters,
            s.min_ns,
            s.median_ns,
            s.mean_ns
        ));
    }
    json.push_str("\n  ]\n}\n");
    let root = report_dir();
    let dir = if std::env::var_os("LOCERT_BENCH_BASELINE").is_some_and(|v| v != "0") {
        root
    } else {
        let scratch = root.join("target");
        let _ = std::fs::create_dir_all(&scratch);
        scratch
    };
    let path = dir.join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {} ({} benchmarks)", path.display(), results.len()),
        Err(e) => eprintln!("criterion: cannot write {}: {e}", path.display()),
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling until the sample
    /// count or the measurement budget is reached.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        self.samples_ns.clear();
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Identifies a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    inner: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            inner: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            inner: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.inner)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group, then writes the
/// collected statistics as `BENCH_<bench-name>.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("smoke");
            g.bench_function("inline", |b| b.iter(|| black_box(2 + 2)));
            g.bench_with_input(BenchmarkId::from_parameter(5), &5usize, |b, &n| {
                b.iter(|| black_box(n * n));
            });
            g.finish();
        }
        c.bench_function("top-level", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("n_t", "64_3").to_string(), "n_t/64_3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn sample_stats_order_statistics() {
        let s = SampleStats::from_samples(&[5.0, 1.0, 3.0]);
        assert_eq!(s.iters, 3);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.mean_ns, 3.0);
        let even = SampleStats::from_samples(&[4.0, 2.0]);
        assert_eq!(even.median_ns, 3.0);
        assert_eq!(SampleStats::from_samples(&[]).iters, 0);
    }

    #[test]
    fn bench_stem_strips_cargo_hash() {
        assert_eq!(
            bench_stem("target/release/deps/certification-8f00d"),
            "certification"
        );
        assert_eq!(bench_stem("certification"), "certification");
        // A non-hex suffix is part of the name, not a cargo hash.
        assert_eq!(bench_stem("my-bench"), "my-bench");
        assert_eq!(bench_stem(""), "bench");
    }

    #[test]
    fn results_are_collected_for_the_report() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("collected-probe", |b| b.iter(|| black_box(1 + 1)));
        let results = collected_results();
        let (_, stats) = results
            .iter()
            .find(|(l, _)| l == "collected-probe")
            .expect("probe recorded");
        assert!(stats.iters >= 1);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.mean_ns + 1e-9);
    }
}
