//! The shared sixteen-scheme catalogue: one stable id string per scheme
//! family in the workspace, with a constructor and a canonical growing
//! instance family.
//!
//! Every consumer that needs "all the schemes" — the `netstorm` fault
//! campaign, the `boundcheck`/`experiments` bound sweeps, the `diffhunt`
//! oracle, and the `locert-serve` daemon's by-id request dispatch —
//! resolves entries here, so a new scheme family lands everywhere by
//! adding one [`SchemeEntry`]. The id strings are wire-stable: journals,
//! tables, repro files, and serve requests all key on them.
//!
//! Consumers choose their own instances: [`SchemeEntry::family`] is the
//! canonical *growing* family used by the certificate-size sweeps, while
//! `locert-net` pairs the same schemes with small fixed yes-instances
//! and `locert-serve` certifies whatever graph the request carries.

use crate::schemes::acyclicity::AcyclicityScheme;
use crate::schemes::combinators::AndScheme;
use crate::schemes::depth2_fo::Depth2FoScheme;
use crate::schemes::existential_fo::ExistentialFoScheme;
use crate::schemes::kernel_mso::KernelMsoScheme;
use crate::schemes::minor_free::{CtMinorFreeScheme, PathMinorFreeScheme};
use crate::schemes::mso_tree::MsoTreeScheme;
use crate::schemes::spanning_tree::{SpanningTreeScheme, VertexCountScheme};
use crate::schemes::tree_depth_bound::TreeDepthBoundScheme;
use crate::schemes::tree_diameter::TreeDiameterScheme;
use crate::schemes::treedepth::TreedepthScheme;
use crate::schemes::universal::UniversalScheme;
use crate::schemes::word_path::WordPathScheme;
use crate::Scheme;
use locert_automata::library;
use locert_automata::words::Nfa;
use locert_graph::{generators, Graph};
use locert_logic::props;
use std::collections::BTreeSet;

/// One catalogued scheme family.
pub struct SchemeEntry {
    /// Stable scheme id (wire format, journals, and tables key on it).
    pub id: &'static str,
    /// Builds the scheme for identifier width `id_bits` at instance
    /// size `n` (most families ignore `n`; counting schemes bind it).
    pub build: fn(u32, usize) -> Box<dyn Scheme>,
    /// The canonical growing yes-instance family: graph plus optional
    /// vertex inputs (word letters), as swept by the bound observatory.
    pub family: fn(usize) -> (Graph, Option<Vec<usize>>),
}

/// A triangle with a path tail: the smallest family that has a clique
/// witness yet grows unboundedly.
pub fn lollipop(n: usize) -> Graph {
    let n = n.max(4);
    let mut edges = vec![(0, 1), (1, 2), (2, 0)];
    for v in 3..n {
        edges.push((v - 1, v));
    }
    Graph::from_edges(n, edges).expect("lollipop is simple and connected")
}

/// The two-state "no two consecutive 1s" NFA (both states accepting;
/// reading `1` twice in a row has no successor).
pub fn no_11_nfa() -> Nfa {
    let set = |states: &[usize]| states.iter().copied().collect::<BTreeSet<_>>();
    Nfa::new(
        2,
        2,
        set(&[0]),
        vec![true, true],
        vec![
            vec![set(&[0]), set(&[1])], // q0: last letter was not 1.
            vec![set(&[0]), set(&[])],  // q1: last letter was 1.
        ],
    )
    .expect("well-formed NFA")
}

fn plain(g: Graph) -> (Graph, Option<Vec<usize>>) {
    (g, None)
}

/// The sixteen catalogue entries, in stable order.
pub fn entries() -> Vec<SchemeEntry> {
    fn e(
        id: &'static str,
        build: fn(u32, usize) -> Box<dyn Scheme>,
        family: fn(usize) -> (Graph, Option<Vec<usize>>),
    ) -> SchemeEntry {
        SchemeEntry { id, build, family }
    }
    vec![
        e(
            "acyclicity",
            |b, _| Box::new(AcyclicityScheme::new(b)),
            |n| plain(generators::path(n)),
        ),
        e(
            "spanning-tree",
            |b, _| Box::new(SpanningTreeScheme::new(b)),
            |n| plain(generators::cycle(n)),
        ),
        e(
            "vertex-count",
            |b, n| Box::new(VertexCountScheme::new(b, n as u64)),
            |n| plain(generators::path(n)),
        ),
        e(
            "universal-connected",
            |b, _| {
                Box::new(UniversalScheme::new(b, "universal-connected", |g| {
                    g.is_connected()
                }))
            },
            |n| plain(generators::clique(n)),
        ),
        e(
            "tree-diameter-3",
            |b, _| Box::new(TreeDiameterScheme::new(b, 3)),
            |n| plain(generators::star(n)),
        ),
        e(
            "treedepth-3",
            |b, _| Box::new(TreedepthScheme::new(b, 3)),
            |n| plain(generators::star(n)),
        ),
        e(
            "tree-depth-bound-2",
            |_, _| Box::new(TreeDepthBoundScheme::new(2)),
            |n| plain(generators::star(n)),
        ),
        e(
            "mso-perfect-matching",
            |_, _| Box::new(MsoTreeScheme::new(library::has_perfect_matching())),
            |n| {
                plain(generators::path(if n.is_multiple_of(2) {
                    n
                } else {
                    n + 1
                }))
            },
        ),
        e(
            "mso-height-5",
            |_, _| Box::new(MsoTreeScheme::new(library::height_at_most(5))),
            // Spiders with legs of length 2: height 2 from the hub, any
            // number of legs.
            |n| plain(generators::spider(((n.max(7) - 1) / 2).max(3), 2)),
        ),
        e(
            "word-no-11",
            |_, _| Box::new(WordPathScheme::new(no_11_nfa())),
            |n| {
                let alternating: Vec<usize> = (0..n)
                    .map(|i| usize::from(i % 2 == 1 && i + 1 < n))
                    .collect();
                (generators::path(n), Some(alternating))
            },
        ),
        e(
            "existential-triangle",
            |b, _| {
                Box::new(
                    ExistentialFoScheme::new(b, &props::has_clique(3))
                        .expect("has_clique(3) is existential"),
                )
            },
            |n| plain(lollipop(n)),
        ),
        e(
            "depth2-dominating",
            |b, _| {
                Box::new(
                    Depth2FoScheme::from_formula(b, &props::has_dominating_vertex())
                        .expect("has_dominating_vertex is depth-2"),
                )
            },
            |n| plain(generators::star(n)),
        ),
        e(
            "path-minor-free-4",
            |b, _| Box::new(PathMinorFreeScheme::new(b, 4)),
            |n| plain(generators::star(n)),
        ),
        e(
            "ct-minor-free-3",
            |b, _| Box::new(CtMinorFreeScheme::new(b, 3)),
            |n| plain(generators::path(n)),
        ),
        e(
            "kernel-triangle-free",
            |b, _| {
                Box::new(
                    KernelMsoScheme::new(b, 3, props::triangle_free())
                        .expect("triangle-free kernelizes"),
                )
            },
            |n| plain(generators::star(n)),
        ),
        e(
            "and-acyclic-count",
            |b, n| {
                Box::new(AndScheme::new(
                    AcyclicityScheme::new(b),
                    VertexCountScheme::new(b, n as u64),
                    16,
                ))
            },
            |n| plain(generators::path(n)),
        ),
    ]
}

/// Looks up one entry by its stable id.
pub fn by_id(id: &str) -> Option<SchemeEntry> {
    entries().into_iter().find(|e| e.id == id)
}

/// Builds a catalogued scheme by id, or `None` for an unknown id.
pub fn build(id: &str, id_bits: u32, n: usize) -> Option<Box<dyn Scheme>> {
    by_id(id).map(|e| (e.build)(id_bits, n))
}

/// The stable id strings, in catalogue order.
pub fn ids() -> Vec<&'static str> {
    entries().iter().map(|e| e.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_scheme, Instance};
    use crate::schemes::common::id_bits_for;
    use locert_graph::IdAssignment;

    #[test]
    fn sixteen_entries_with_unique_stable_ids() {
        let all = entries();
        assert_eq!(all.len(), 16);
        let ids: BTreeSet<_> = all.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), all.len(), "duplicate scheme ids");
    }

    #[test]
    fn by_id_resolves_every_id_and_rejects_unknowns() {
        for id in ids() {
            assert!(by_id(id).is_some(), "{id} must resolve");
            assert!(build(id, 16, 8).is_some(), "{id} must build");
        }
        assert!(by_id("no-such-scheme").is_none());
        assert!(build("no-such-scheme", 16, 8).is_none());
    }

    #[test]
    fn every_family_instance_certifies_honestly() {
        for entry in entries() {
            let (g, inputs) = (entry.family)(12);
            let ids = IdAssignment::contiguous(g.num_nodes());
            let inst = match &inputs {
                Some(inp) => Instance::with_inputs(&g, &ids, inp),
                None => Instance::new(&g, &ids),
            };
            let scheme = (entry.build)(id_bits_for(&inst), g.num_nodes());
            let outcome = run_scheme(scheme.as_ref(), &inst)
                .unwrap_or_else(|e| panic!("{}: prover refused: {e:?}", entry.id));
            assert!(
                outcome.rejecting().is_empty(),
                "{}: honest run rejected at {:?}",
                entry.id,
                outcome.rejecting()
            );
        }
    }
}
