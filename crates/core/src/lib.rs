//! Local certification: the framework and every scheme from the paper.
//!
//! A *local certification* (Section 3.3) is a prover that labels each
//! vertex with a certificate plus a verification algorithm run at every
//! vertex on its **radius-1 view**: its own identifier, input and
//! certificate, and the identifiers, inputs and certificates of its
//! neighbors — crucially *not* the edges among the neighbors
//! (Appendix A.1 fixes the radius to 1 for exactly this reason).
//!
//! - If the graph satisfies the property, the prover's assignment makes
//!   every vertex accept (*completeness*).
//! - If it does not, **every** assignment leaves at least one rejecting
//!   vertex (*soundness*).
//!
//! The framework ([`framework`]) provides bit-exact certificates
//! ([`bits`]), the prover/verifier traits, the network simulator, and a
//! soundness-attack harness ([`attacks`]) together with a fault-injection
//! subsystem ([`faults`]) that measures detection rates and rejection
//! locality under adversarial fault models. The [`schemes`] module
//! implements each certification from the paper:
//!
//! | scheme | paper result | size |
//! |---|---|---|
//! | [`schemes::spanning_tree`] | Proposition 3.4 | `O(log n)` |
//! | [`schemes::acyclicity`] | folklore, used throughout | `O(log n)` |
//! | [`schemes::tree_diameter`] | Section 2.3 warm-up | `O(log n)` |
//! | [`schemes::existential_fo`] | Lemma A.2 | `O(k log n)` |
//! | [`schemes::depth2_fo`] | Lemma A.3 | `O(log n)` |
//! | [`schemes::mso_tree`] | Theorem 2.2 | `O(1)` |
//! | [`schemes::word_path`] | Section 4 warm-up | `O(1)` |
//! | [`schemes::treedepth`] | Theorem 2.4 | `O(t log n)` |
//! | [`schemes::kernel_mso`] | Theorem 2.6 / Prop 6.4 | `O(t log n + f(t,φ))` |
//! | [`schemes::minor_free`] | Corollary 2.7 | `O(log n)` (fixed `t`) |
//! | [`schemes::combinators`] | closure under ∧/∨ | sum |
//!
//! The size column is not just documentation: every scheme answers
//! [`framework::Scheme::declared_bound`] with a machine-readable
//! [`framework::DeclaredBound`], provers attribute each certificate bit
//! span to a named component via [`bits::BitWriter::component`]
//! (captured by `locert_trace::ledger`), and the `boundcheck` gate fits
//! measured size curves against the declared family (DESIGN.md §10).
//!
//! The [`catalogue`] module names all sixteen scheme families with
//! stable id strings — the single registry behind the fault campaigns,
//! bound sweeps, oracle, and the `locert-serve` request dispatch.

pub mod attacks;
pub mod bits;
pub mod catalogue;
pub mod faults;
pub mod framework;
pub mod radius;
pub mod schemes;

pub use bits::{BitReader, BitWriter, Certificate};
pub use framework::{
    run_scheme, run_verification, Assignment, Instance, LocalView, Prover, ProverError, Scheme,
    VerificationOutcome, Verifier,
};
