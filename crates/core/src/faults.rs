//! Fault injection: adversarial fault models beyond certificate mutation.
//!
//! The paper's soundness guarantee ("no certificate assignment makes a
//! no-instance accept", Section 3.3) is a robustness claim about the
//! verifier. The [`attacks`](crate::attacks) harness probes exactly one
//! adversarial surface — certificate contents. This module models the
//! richer faults a deployed proof-labeling scheme faces and *measures* how
//! reliably and how locally each scheme detects them:
//!
//! - **certificate faults**: bit flips, truncation, extension, replay of
//!   another vertex's certificate, zeroing;
//! - **node faults**: byzantine always-accept vertices that present garbage
//!   to their neighbors, duplicate-identifier injection;
//! - **view faults**: dropped or duplicated neighbor entries in a vertex's
//!   radius-1 view (lost / replayed messages).
//!
//! Faults compose through a seeded [`FaultPlan`]; [`inject`] derives a
//! [`FaultyWorld`] — a corrupted certificate assignment plus per-vertex
//! view overrides — *without mutating the honest instance*, and
//! [`run_with_faults`] replays verification against it. Two metrics come
//! out of a [`run_campaign`] sweep:
//!
//! - **detection rate**: the fraction of effective faulty runs in which at
//!   least one honest vertex rejects;
//! - **rejection locality**: the BFS distance from the fault site to the
//!   nearest rejecting vertex (0 = the faulted vertex itself rejects).

use crate::bits::{BitWriter, Certificate};
use crate::framework::{Assignment, Instance, LocalView, RejectReason, Verifier};
use locert_graph::{traversal, Ident, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// One adversarial fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Flip one uniformly random bit of the site's certificate.
    BitFlip,
    /// Drop a random non-empty suffix of the site's certificate.
    Truncate,
    /// Append 1–8 random bits to the site's certificate.
    Extend,
    /// Replace the site's certificate with a random other vertex's
    /// (certificate replay).
    Replay,
    /// Swap the certificates of the site and a random other vertex.
    Swap,
    /// Zero every bit of the site's certificate, keeping its length.
    ZeroCert,
    /// The site accepts unconditionally and presents uniformly random
    /// certificate bits (same length as its honest certificate) to its
    /// neighbors.
    ByzantineAccept,
    /// The site presents a random other vertex's identifier (identifier
    /// collision).
    DuplicateId,
    /// The site's view loses one random neighbor entry (lost message).
    DropNeighbor,
    /// The site's view sees one random neighbor entry twice (replayed
    /// message).
    DuplicateNeighbor,
}

impl FaultModel {
    /// Every model, in campaign-sweep order.
    pub const ALL: [FaultModel; 10] = [
        FaultModel::BitFlip,
        FaultModel::Truncate,
        FaultModel::Extend,
        FaultModel::Replay,
        FaultModel::Swap,
        FaultModel::ZeroCert,
        FaultModel::ByzantineAccept,
        FaultModel::DuplicateId,
        FaultModel::DropNeighbor,
        FaultModel::DuplicateNeighbor,
    ];

    /// Stable short name (table column key).
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::BitFlip => "bit-flip",
            FaultModel::Truncate => "truncate",
            FaultModel::Extend => "extend",
            FaultModel::Replay => "replay",
            FaultModel::Swap => "swap",
            FaultModel::ZeroCert => "zero-cert",
            FaultModel::ByzantineAccept => "byzantine",
            FaultModel::DuplicateId => "dup-id",
            FaultModel::DropNeighbor => "drop-nbr",
            FaultModel::DuplicateNeighbor => "dup-nbr",
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One concrete fault: a model applied at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The fault model.
    pub model: FaultModel,
    /// The vertex the fault strikes.
    pub site: NodeId,
}

/// A deterministic, composable set of faults. The same plan (same seed,
/// same faults in the same order) always injects the same corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injecting it reproduces the honest world).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault; order matters (later faults see earlier corruption).
    #[must_use]
    pub fn with_fault(mut self, model: FaultModel, site: NodeId) -> Self {
        self.faults.push(Fault { model, site });
        self
    }

    /// A single fault at a seed-derived site of an `n`-vertex graph.
    pub fn single_at_random_site(model: FaultModel, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01_7B1A_DEAD_BEEF);
        let site = NodeId(if n == 0 { 0 } else { rng.random_range(0..n) });
        FaultPlan::new(seed).with_fault(model, site)
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The distinct fault sites, in plan order.
    pub fn sites(&self) -> Vec<NodeId> {
        let mut sites: Vec<NodeId> = Vec::new();
        for f in &self.faults {
            if !sites.contains(&f.site) {
                sites.push(f.site);
            }
        }
        sites
    }
}

/// The corrupted world an injection produces: certificates plus per-vertex
/// view overrides. The honest instance and assignment are left untouched.
#[derive(Debug, Clone)]
pub struct FaultyWorld {
    certs: Assignment,
    byzantine: Vec<bool>,
    presented_id: Vec<Ident>,
    drop_neighbor: Vec<Option<usize>>,
    dup_neighbor: Vec<Option<usize>>,
    effective: bool,
}

impl FaultyWorld {
    /// The corrupted certificate assignment.
    pub fn certs(&self) -> &Assignment {
        &self.certs
    }

    /// Whether `v` is byzantine (accepts unconditionally).
    pub fn is_byzantine(&self, v: NodeId) -> bool {
        self.byzantine.get(v.0).copied().unwrap_or(false)
    }

    /// Whether any fault actually changed observable state. A bit flip on
    /// an empty certificate, for instance, is a no-op: counting such runs
    /// as "undetected" would understate detection rates.
    pub fn is_effective(&self) -> bool {
        self.effective
    }

    /// The identifier `v` presents to its neighbors (differs from the
    /// honest one under identifier faults). Transport layers that carry
    /// `(id, certificate)` frames — `locert-net` — must source the id
    /// here, not from the honest assignment, so identifier faults survive
    /// the trip across the wire.
    pub fn presented_ident(&self, v: NodeId) -> Ident {
        self.presented_id[v.0]
    }

    /// The neighbor-list index dropped from `v`'s view, if any.
    pub fn dropped_entry(&self, v: NodeId) -> Option<usize> {
        self.drop_neighbor[v.0]
    }

    /// The neighbor-list index duplicated in `v`'s view, if any.
    pub fn duplicated_entry(&self, v: NodeId) -> Option<usize> {
        self.dup_neighbor[v.0]
    }
}

/// Applies `plan` to the honest world, producing a [`FaultyWorld`].
/// Deterministic in `(instance, honest, plan)`.
pub fn inject(instance: &Instance<'_>, honest: &Assignment, plan: &FaultPlan) -> FaultyWorld {
    let n = instance.graph().num_nodes();
    let mut world = FaultyWorld {
        certs: honest.clone(),
        byzantine: vec![false; n],
        presented_id: (0..n).map(|v| instance.ids().ident(NodeId(v))).collect(),
        drop_neighbor: vec![None; n],
        dup_neighbor: vec![None; n],
        effective: false,
    };
    let mut rng = StdRng::seed_from_u64(plan.seed);
    for fault in &plan.faults {
        let v = fault.site;
        if v.0 >= n {
            continue;
        }
        match fault.model {
            FaultModel::BitFlip => {
                let len = world.certs.cert(v).len_bits();
                if len > 0 {
                    let bit = rng.random_range(0..len);
                    *world.certs.cert_mut(v) = world.certs.cert(v).with_bit_flipped(bit);
                    world.effective = true;
                }
            }
            FaultModel::Truncate => {
                let len = world.certs.cert(v).len_bits();
                if len > 0 {
                    let keep = rng.random_range(0..len);
                    *world.certs.cert_mut(v) = prefix_of(world.certs.cert(v), keep);
                    world.effective = true;
                }
            }
            FaultModel::Extend => {
                let extra = rng.random_range(1..=8usize);
                let mut w = BitWriter::new();
                w.write_cert(world.certs.cert(v));
                for _ in 0..extra {
                    w.write_bit(rng.random_bool(0.5));
                }
                *world.certs.cert_mut(v) = w.finish();
                world.effective = true;
            }
            FaultModel::Replay => {
                if let Some(u) = other_vertex(n, v, &mut rng) {
                    let replayed = world.certs.cert(u).clone();
                    if replayed != *world.certs.cert(v) {
                        world.effective = true;
                    }
                    *world.certs.cert_mut(v) = replayed;
                }
            }
            FaultModel::Swap => {
                if let Some(u) = other_vertex(n, v, &mut rng) {
                    let cv = world.certs.cert(v).clone();
                    let cu = world.certs.cert(u).clone();
                    if cv != cu {
                        world.effective = true;
                    }
                    *world.certs.cert_mut(v) = cu;
                    *world.certs.cert_mut(u) = cv;
                }
            }
            FaultModel::ZeroCert => {
                let len = world.certs.cert(v).len_bits();
                let zeroed = zero_of_len(len);
                if zeroed != *world.certs.cert(v) {
                    world.effective = true;
                }
                *world.certs.cert_mut(v) = zeroed;
            }
            FaultModel::ByzantineAccept => {
                let len = world.certs.cert(v).len_bits();
                let mut w = BitWriter::new();
                for _ in 0..len {
                    w.write_bit(rng.random_bool(0.5));
                }
                *world.certs.cert_mut(v) = w.finish();
                world.byzantine[v.0] = true;
                world.effective = true;
            }
            FaultModel::DuplicateId => {
                if let Some(u) = other_vertex(n, v, &mut rng) {
                    world.presented_id[v.0] = instance.ids().ident(u);
                    world.effective = true;
                }
            }
            FaultModel::DropNeighbor => {
                let deg = instance.graph().degree(v);
                if deg > 0 {
                    world.drop_neighbor[v.0] = Some(rng.random_range(0..deg));
                    world.effective = true;
                }
            }
            FaultModel::DuplicateNeighbor => {
                let deg = instance.graph().degree(v);
                if deg > 0 {
                    world.dup_neighbor[v.0] = Some(rng.random_range(0..deg));
                    world.effective = true;
                }
            }
        }
    }
    world
}

fn other_vertex(n: usize, v: NodeId, rng: &mut StdRng) -> Option<NodeId> {
    if n < 2 {
        return None;
    }
    let pick = rng.random_range(0..n - 1);
    Some(NodeId(if pick >= v.0 { pick + 1 } else { pick }))
}

fn prefix_of(c: &Certificate, keep: usize) -> Certificate {
    let mut w = BitWriter::new();
    for i in 0..keep.min(c.len_bits()) {
        w.write_bit(c.bit(i));
    }
    w.finish()
}

fn zero_of_len(len: usize) -> Certificate {
    let mut w = BitWriter::new();
    for _ in 0..len {
        w.write_bit(false);
    }
    w.finish()
}

/// Builds vertex `v`'s radius-1 view of the faulty world: corrupted
/// certificates, presented (possibly duplicated) identifiers, and the
/// site's dropped / duplicated neighbor entries.
pub fn faulty_view_of<'a>(
    instance: &Instance<'_>,
    world: &'a FaultyWorld,
    v: NodeId,
) -> LocalView<'a> {
    let mut neighbors: Vec<(Ident, usize, &'a Certificate)> = instance
        .graph()
        .neighbors(v)
        .iter()
        .map(|&u| {
            (
                world.presented_id[u.0],
                instance.input(u),
                world.certs.cert(u),
            )
        })
        .collect();
    if let Some(i) = world.dup_neighbor[v.0] {
        if i < neighbors.len() {
            let entry = neighbors[i];
            neighbors.push(entry);
        }
    }
    if let Some(i) = world.drop_neighbor[v.0] {
        if i < neighbors.len() {
            neighbors.remove(i);
        }
    }
    LocalView {
        id: world.presented_id[v.0],
        input: instance.input(v),
        cert: world.certs.cert(v),
        neighbors,
    }
}

/// One rejection in a faulty world, linked back to its provenance: which
/// vertex rejected, why, and how far it sits from the nearest fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// The rejecting (honest) vertex.
    pub vertex: NodeId,
    /// The verifier's rejection reason at that vertex.
    pub reason: RejectReason,
    /// BFS distance from the nearest fault site to the detector; `None`
    /// when no site reaches it (or the plan was empty).
    pub distance: Option<usize>,
}

/// The outcome of verifying a faulty world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Honest (non-byzantine) vertices that rejected.
    pub rejecting: Vec<NodeId>,
    /// Per-rejector provenance (same order as `rejecting`).
    pub detections: Vec<Detection>,
    /// Whether any fault changed observable state (see
    /// [`FaultyWorld::is_effective`]).
    pub effective: bool,
    /// BFS distance from the nearest fault site to the nearest rejecting
    /// vertex; `None` when nothing rejected (or the plan was empty).
    pub locality: Option<usize>,
}

impl FaultOutcome {
    /// Whether the fault was detected: at least one honest vertex rejects.
    pub fn detected(&self) -> bool {
        !self.rejecting.is_empty()
    }
}

/// Injects `plan` and runs the verifier at every vertex of the faulty
/// world. Byzantine vertices accept unconditionally; detection therefore
/// means an *honest* vertex rejected. Never panics on arbitrary plans —
/// corrupted certificates flow through the total decode paths.
pub fn run_with_faults(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    honest: &Assignment,
    plan: &FaultPlan,
) -> FaultOutcome {
    let _span = locert_trace::span!("core.faults.run_with_faults");
    if locert_trace::enabled() {
        locert_trace::add("core.faults.injections", plan.faults().len() as u64);
    }
    let world = inject(instance, honest, plan);
    for fault in plan.faults() {
        locert_trace::journal::record_with(|| locert_trace::journal::Event::FaultInjected {
            model: fault.model.name().to_string(),
            site: fault.site.0 as u64,
            effective: world.is_effective(),
        });
    }
    let mut rejecting = Vec::new();
    let mut reasons = Vec::new();
    for v in instance.graph().nodes() {
        if world.is_byzantine(v) {
            continue;
        }
        if let Err(reason) = verifier.decide(&faulty_view_of(instance, &world, v)) {
            rejecting.push(v);
            reasons.push(reason);
        }
    }
    // Provenance: distance from each detector to its nearest fault site
    // (one BFS per in-range site; campaign plans have exactly one).
    let sites: Vec<NodeId> = plan
        .sites()
        .into_iter()
        .filter(|s| s.0 < instance.graph().num_nodes())
        .collect();
    let site_dists: Vec<Vec<Option<usize>>> = if rejecting.is_empty() {
        Vec::new()
    } else {
        sites
            .iter()
            .map(|&s| traversal::bfs_distances(instance.graph(), s))
            .collect()
    };
    let detections: Vec<Detection> = rejecting
        .iter()
        .zip(&reasons)
        .map(|(&v, &reason)| {
            let (distance, nearest_site) = site_dists
                .iter()
                .zip(&sites)
                .filter_map(|(dists, &s)| dists[v.0].map(|d| (d, s)))
                .min()
                .map(|(d, s)| (Some(d), Some(s)))
                .unwrap_or((None, None));
            locert_trace::journal::record_with(|| locert_trace::journal::Event::Detection {
                model: plan
                    .faults()
                    .iter()
                    .find(|f| Some(f.site) == nearest_site)
                    .or_else(|| plan.faults().first())
                    .map_or_else(|| "none".to_string(), |f| f.model.name().to_string()),
                site: nearest_site
                    .or_else(|| sites.first().copied())
                    .map_or(0, |s| s.0 as u64),
                detector: v.0 as u64,
                reason: reason.code().to_string(),
                distance: distance.map(|d| d as u64),
            });
            Detection {
                vertex: v,
                reason,
                distance,
            }
        })
        .collect();
    let locality = detections.iter().filter_map(|d| d.distance).min();
    FaultOutcome {
        rejecting,
        detections,
        effective: world.is_effective(),
        locality,
    }
}

/// Aggregate statistics of a detection campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Runs in which the injected fault actually changed state.
    pub effective_runs: usize,
    /// Runs skipped because the fault was a no-op on this instance.
    pub noop_runs: usize,
    /// Effective runs in which at least one honest vertex rejected.
    pub detected: usize,
    /// Sum of rejection localities over detected runs.
    pub locality_sum: usize,
    /// Tally of rejection reasons over every detection in effective runs
    /// (a run with several rejectors contributes several counts).
    pub reasons: BTreeMap<RejectReason, usize>,
    /// Tally of fault-site-to-detector BFS distances over every detection
    /// that is reachable from a fault site.
    pub distances: BTreeMap<usize, usize>,
}

impl CampaignStats {
    /// Detected fraction of effective runs (1.0 when nothing was
    /// effective, vacuously).
    pub fn detection_rate(&self) -> f64 {
        if self.effective_runs == 0 {
            1.0
        } else {
            self.detected as f64 / self.effective_runs as f64
        }
    }

    /// Mean BFS distance from fault site to nearest rejecting vertex over
    /// detected runs.
    pub fn mean_locality(&self) -> Option<f64> {
        if self.detected == 0 {
            None
        } else {
            Some(self.locality_sum as f64 / self.detected as f64)
        }
    }

    /// The most frequent rejection reason (ties break toward the
    /// `RejectReason` ordering), with its count.
    pub fn dominant_reason(&self) -> Option<(RejectReason, usize)> {
        self.reasons
            .iter()
            .max_by_key(|&(_, &count)| count)
            .map(|(&r, &count)| (r, count))
    }
}

/// Sweeps `runs` single-fault plans of `model` (seeded `base_seed..`) over
/// the instance and aggregates detection rate and rejection locality.
pub fn run_campaign(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    honest: &Assignment,
    model: FaultModel,
    runs: usize,
    base_seed: u64,
) -> CampaignStats {
    let _span = locert_trace::span!("core.faults.run_campaign");
    let n = instance.graph().num_nodes();
    let mut stats = CampaignStats::default();
    // Rounds are independent (each derives its plan from `base_seed + r`),
    // so they run in parallel; every round captures its journal events
    // locally and the flush below appends them in round order — the
    // journal is byte-identical to a sequential sweep at any worker
    // count. Stats merge in round order too, so tallies never depend on
    // the schedule.
    let rounds = locert_par::global().par_map_collect(runs, |r| {
        locert_trace::journal::capture(|| {
            // The run index is deterministic (it seeds the plan), so the
            // round mark can carry it — windowing readers get numbered
            // rounds even though the rounds execute out of order.
            locert_trace::journal::record_with(|| locert_trace::journal::Event::RoundMark {
                scope: "core.faults.campaign".to_string(),
                round: Some(r as u64),
            });
            let plan = FaultPlan::single_at_random_site(model, n, base_seed.wrapping_add(r as u64));
            let outcome = run_with_faults(verifier, instance, honest, &plan);
            locert_trace::journal::record_with(|| locert_trace::journal::Event::CampaignRound {
                model: model.name().to_string(),
                run: r as u64,
                detected: outcome.detected(),
                locality: outcome.locality.map(|d| d as u64),
            });
            outcome
        })
    });
    for (outcome, events) in rounds {
        locert_trace::journal::append_events(events);
        if !outcome.effective {
            stats.noop_runs += 1;
            continue;
        }
        stats.effective_runs += 1;
        if outcome.detected() {
            stats.detected += 1;
            stats.locality_sum += outcome.locality.unwrap_or(0);
        }
        for d in &outcome.detections {
            *stats.reasons.entry(d.reason).or_insert(0) += 1;
            if let Some(dist) = d.distance {
                *stats.distances.entry(dist).or_insert(0) += 1;
            }
        }
    }
    if locert_trace::enabled() {
        locert_trace::add("core.faults.campaign.runs", runs as u64);
        locert_trace::add(
            "core.faults.campaign.effective",
            stats.effective_runs as u64,
        );
        locert_trace::add("core.faults.campaign.noop", stats.noop_runs as u64);
        locert_trace::add("core.faults.campaign.detected", stats.detected as u64);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_verification, Prover};
    use crate::schemes::acyclicity::AcyclicityScheme;
    use crate::schemes::spanning_tree::VertexCountScheme;
    use locert_graph::{generators, IdAssignment};

    fn tree_instance(n: usize) -> (locert_graph::Graph, IdAssignment) {
        (generators::path(n), IdAssignment::contiguous(n))
    }

    #[test]
    fn empty_plan_reproduces_honest_world() {
        let (g, ids) = tree_instance(8);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(4);
        let honest = scheme.assign(&inst).unwrap();
        let outcome = run_with_faults(&scheme, &inst, &honest, &FaultPlan::new(7));
        assert!(!outcome.detected());
        assert!(!outcome.effective);
        assert_eq!(outcome.locality, None);
        // And the honest assignment is untouched by injection.
        assert!(run_verification(&scheme, &inst, &honest).accepted());
    }

    #[test]
    fn injection_is_deterministic() {
        let (g, ids) = tree_instance(10);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(4);
        let honest = scheme.assign(&inst).unwrap();
        for model in FaultModel::ALL {
            let plan = FaultPlan::single_at_random_site(model, 10, 99);
            let a = run_with_faults(&scheme, &inst, &honest, &plan);
            let b = run_with_faults(&scheme, &inst, &honest, &plan);
            assert_eq!(a, b, "model {model} not deterministic");
        }
    }

    #[test]
    fn bit_flips_on_trees_are_detected() {
        let (g, ids) = tree_instance(9);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(4);
        let honest = scheme.assign(&inst).unwrap();
        let stats = run_campaign(&scheme, &inst, &honest, FaultModel::BitFlip, 60, 0xB17);
        assert!(stats.effective_runs > 0);
        assert_eq!(
            stats.detection_rate(),
            1.0,
            "undetected bit flips: {stats:?}"
        );
    }

    #[test]
    fn byzantine_vertex_is_excluded_from_detection() {
        let (g, ids) = tree_instance(6);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(4);
        let honest = scheme.assign(&inst).unwrap();
        let plan = FaultPlan::new(3).with_fault(FaultModel::ByzantineAccept, NodeId(2));
        let outcome = run_with_faults(&scheme, &inst, &honest, &plan);
        assert!(
            !outcome.rejecting.contains(&NodeId(2)),
            "byzantine vertex must not be counted as a rejector"
        );
    }

    #[test]
    fn locality_is_distance_to_nearest_rejector() {
        // VertexCountScheme: zeroing the certificate at an endpoint of a
        // path must be noticed by the endpoint itself or its neighbor.
        let (g, ids) = tree_instance(8);
        let inst = Instance::new(&g, &ids);
        let scheme = VertexCountScheme::new(4, 8);
        let honest = scheme.assign(&inst).unwrap();
        let plan = FaultPlan::new(11).with_fault(FaultModel::ZeroCert, NodeId(0));
        let outcome = run_with_faults(&scheme, &inst, &honest, &plan);
        assert!(outcome.detected());
        assert!(
            outcome.locality.unwrap() <= 1,
            "zeroed endpoint detected {}-far",
            outcome.locality.unwrap()
        );
    }

    #[test]
    fn detections_carry_reason_and_site_distance() {
        // Zero an endpoint's VertexCount certificate: every detection
        // names a reason and a BFS distance back to the fault site, and
        // the locality equals the nearest detection's distance.
        let (g, ids) = tree_instance(8);
        let inst = Instance::new(&g, &ids);
        let scheme = VertexCountScheme::new(4, 8);
        let honest = scheme.assign(&inst).unwrap();
        let plan = FaultPlan::new(11).with_fault(FaultModel::ZeroCert, NodeId(0));
        let outcome = run_with_faults(&scheme, &inst, &honest, &plan);
        assert!(outcome.detected());
        assert_eq!(outcome.detections.len(), outcome.rejecting.len());
        for (d, &v) in outcome.detections.iter().zip(&outcome.rejecting) {
            assert_eq!(d.vertex, v);
            // On a path every vertex is reachable from the site.
            assert_eq!(d.distance, Some(v.0), "distance from site 0 on a path");
        }
        assert_eq!(
            outcome.locality,
            outcome.detections.iter().filter_map(|d| d.distance).min()
        );
        // Campaign tallies aggregate those reasons.
        let stats = run_campaign(&scheme, &inst, &honest, FaultModel::ZeroCert, 20, 0xD1);
        assert!(stats.detected > 0);
        assert!(!stats.reasons.is_empty());
        let (_, count) = stats.dominant_reason().unwrap();
        assert!(count >= 1);
        assert!(
            stats.reasons.values().sum::<usize>() >= stats.detected,
            "every detected run contributes at least one reason"
        );
    }

    #[test]
    fn composed_plans_apply_in_order() {
        let (g, ids) = tree_instance(6);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(4);
        let honest = scheme.assign(&inst).unwrap();
        let plan = FaultPlan::new(5)
            .with_fault(FaultModel::ZeroCert, NodeId(1))
            .with_fault(FaultModel::Extend, NodeId(4))
            .with_fault(FaultModel::DuplicateId, NodeId(2));
        let world = inject(&inst, &honest, &plan);
        assert!(world.is_effective());
        assert_eq!(plan.sites(), vec![NodeId(1), NodeId(4), NodeId(2)]);
        // The duplicated id really is presented by vertex 2 in a
        // neighbor's view.
        let view = faulty_view_of(&inst, &world, NodeId(3));
        assert!(view
            .neighbors
            .iter()
            .any(|&(id, _, _)| id == world.presented_id[2]));
    }

    #[test]
    fn view_faults_change_degree() {
        let (g, ids) = tree_instance(5);
        let inst = Instance::new(&g, &ids);
        let honest = Assignment::empty(5);
        let drop = FaultPlan::new(1).with_fault(FaultModel::DropNeighbor, NodeId(2));
        let world = inject(&inst, &honest, &drop);
        assert_eq!(faulty_view_of(&inst, &world, NodeId(2)).degree(), 1);
        let dup = FaultPlan::new(1).with_fault(FaultModel::DuplicateNeighbor, NodeId(2));
        let world = inject(&inst, &honest, &dup);
        assert_eq!(faulty_view_of(&inst, &world, NodeId(2)).degree(), 3);
        // Other vertices' views are untouched.
        assert_eq!(faulty_view_of(&inst, &world, NodeId(1)).degree(), 2);
    }

    #[test]
    fn noop_faults_are_counted_separately() {
        // Empty certificates: bit flips and truncations can't change
        // anything.
        let (g, ids) = tree_instance(4);
        let inst = Instance::new(&g, &ids);
        let honest = Assignment::empty(4);
        struct AcceptAll;
        impl Verifier for AcceptAll {
            fn decide(&self, _view: &LocalView<'_>) -> Result<(), crate::framework::RejectReason> {
                Ok(())
            }
        }
        let stats = run_campaign(&AcceptAll, &inst, &honest, FaultModel::BitFlip, 10, 1);
        assert_eq!(stats.effective_runs, 0);
        assert_eq!(stats.noop_runs, 10);
        assert_eq!(stats.detection_rate(), 1.0); // vacuous
        assert_eq!(stats.mean_locality(), None);
    }

    #[test]
    fn plans_survive_out_of_range_sites() {
        let (g, ids) = tree_instance(4);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(4);
        let honest = scheme.assign(&inst).unwrap();
        let plan = FaultPlan::new(2).with_fault(FaultModel::BitFlip, NodeId(99));
        let outcome = run_with_faults(&scheme, &inst, &honest, &plan);
        assert!(!outcome.effective);
        assert!(!outcome.detected());
    }

    #[test]
    fn swap_and_replay_differ() {
        let (g, ids) = tree_instance(6);
        let inst = Instance::new(&g, &ids);
        let scheme = VertexCountScheme::new(4, 6);
        let honest = scheme.assign(&inst).unwrap();
        let swap = FaultPlan::new(21).with_fault(FaultModel::Swap, NodeId(1));
        let world_swap = inject(&inst, &honest, &swap);
        // A swap conserves the certificate multiset; replay does not
        // necessarily.
        let mut honest_bits: Vec<usize> =
            (0..6).map(|v| honest.cert(NodeId(v)).len_bits()).collect();
        let mut swapped_bits: Vec<usize> = (0..6)
            .map(|v| world_swap.certs().cert(NodeId(v)).len_bits())
            .collect();
        honest_bits.sort_unstable();
        swapped_bits.sort_unstable();
        assert_eq!(honest_bits, swapped_bits);
    }

    #[test]
    fn campaigns_against_arena_backed_assignments_are_cow() {
        // Honest assignments are arena-backed (every certificate is a view
        // into one shared buffer). Fault injection mutates certificates via
        // copy-on-write: the faulty world must never write through the
        // shared arena, so the honest assignment stays bit-identical across
        // an entire campaign.
        let (g, ids) = tree_instance(9);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(4);
        let honest = scheme.assign(&inst).unwrap();
        assert!(
            (0..9).all(|v| honest.cert(NodeId(v)).is_view()),
            "honest assignment should be arena-backed"
        );
        let before: Vec<String> = (0..9).map(|v| honest.cert(NodeId(v)).to_hex()).collect();

        for model in FaultModel::ALL {
            let stats = run_campaign(&scheme, &inst, &honest, model, 25, 0xC0);
            // Sanity: campaigns ran without panicking on view-backed certs.
            assert_eq!(stats.effective_runs + stats.noop_runs, 25);
        }

        let after: Vec<String> = (0..9).map(|v| honest.cert(NodeId(v)).to_hex()).collect();
        assert_eq!(before, after, "fault campaign wrote through the arena");
        assert!(run_verification(&scheme, &inst, &honest).accepted());
    }

    #[test]
    fn bit_flip_on_view_matches_owned() {
        // with_bit_flipped must behave identically whether the certificate
        // owns its bytes or is a view into an assignment arena.
        let (g, ids) = tree_instance(5);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(4);
        let honest = scheme.assign(&inst).unwrap();
        let view = honest.cert(NodeId(2));
        assert!(view.is_view());
        let owned = Certificate::from_bytes(view.as_bytes().to_vec(), view.len_bits()).unwrap();
        assert!(!owned.is_view());
        for i in 0..view.len_bits() {
            let a = view.with_bit_flipped(i);
            let b = owned.with_bit_flipped(i);
            assert_eq!(a, b, "flip at bit {i} diverged between view and owned");
            assert!(!a.is_view(), "COW result must own its bytes");
        }
        // The view itself is untouched.
        assert_eq!(view.as_bytes(), owned.as_bytes());
    }
}
