//! Bit-exact certificates.
//!
//! Certificate sizes are the paper's central measure, so certificates are
//! genuine bit strings: [`BitWriter`] packs fixed-width fields MSB-first
//! into a [`Certificate`], [`BitReader`] unpacks them. A scheme's size on
//! an instance is the maximum certificate length in bits.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Storage behind a [`Certificate`]: either bytes the certificate owns,
/// or a window into a contiguous arena shared with other certificates
/// (see `Assignment::new`, which packs per-vertex certificates into one
/// buffer). Views clone by bumping the arena's refcount; mutation paths
/// ([`Certificate::with_bit_flipped`]) copy out to `Owned` first, so a
/// view can never write into the shared arena.
#[derive(Clone)]
enum Repr {
    Owned(Vec<u8>),
    View {
        arena: Arc<[u8]>,
        byte_off: usize,
        byte_len: usize,
    },
}

/// An immutable bit string used as a vertex certificate.
///
/// Equality and hashing are content-based: an arena view and an owned
/// copy with the same bits compare equal and hash identically.
///
/// # Example
///
/// ```
/// use locert_core::bits::{BitWriter, BitReader};
///
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(7, 5);
/// let cert = w.finish();
/// assert_eq!(cert.len_bits(), 8);
/// let mut r = BitReader::new(&cert);
/// assert_eq!(r.read(3), Some(0b101));
/// assert_eq!(r.read(5), Some(7));
/// assert_eq!(r.read(1), None);
/// ```
#[derive(Clone)]
pub struct Certificate {
    repr: Repr,
    len_bits: usize,
}

impl Default for Certificate {
    fn default() -> Self {
        Certificate::const_empty()
    }
}

impl PartialEq for Certificate {
    fn eq(&self, other: &Self) -> bool {
        self.len_bits == other.len_bits && self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Certificate {}

impl Hash for Certificate {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len_bits.hash(state);
        self.as_bytes().hash(state);
    }
}

impl fmt::Debug for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Certificate")
            .field("len_bits", &self.len_bits)
            .field("bytes", &self.as_bytes())
            .field("view", &matches!(self.repr, Repr::View { .. }))
            .finish()
    }
}

impl Certificate {
    /// The empty certificate (zero bits).
    pub fn empty() -> Self {
        Certificate::default()
    }

    /// The empty certificate as a `const` (usable in `static` items, e.g.
    /// the total fallback of `Assignment::cert`).
    pub const fn const_empty() -> Self {
        Certificate {
            repr: Repr::Owned(Vec::new()),
            len_bits: 0,
        }
    }

    /// A zero-copy view of `len_bits` bits stored at `byte_off` in a
    /// shared arena. The window must hold the bits in canonical form
    /// (trailing padding bits of the final byte zero).
    ///
    /// # Panics
    ///
    /// Panics if the window `byte_off..byte_off + ceil(len_bits / 8)`
    /// falls outside the arena.
    pub fn view(arena: Arc<[u8]>, byte_off: usize, len_bits: usize) -> Certificate {
        let byte_len = len_bits.div_ceil(8);
        assert!(
            byte_off + byte_len <= arena.len(),
            "certificate view out of arena bounds"
        );
        Certificate {
            repr: Repr::View {
                arena,
                byte_off,
                byte_len,
            },
            len_bits,
        }
    }

    /// Whether this certificate borrows a shared arena rather than
    /// owning its bytes.
    pub fn is_view(&self) -> bool {
        matches!(self.repr, Repr::View { .. })
    }

    /// For arena views, the `(byte_offset, byte_len)` window into the
    /// shared buffer; `None` for owned certificates.
    pub fn view_range(&self) -> Option<(usize, usize)> {
        match self.repr {
            Repr::Owned(_) => None,
            Repr::View {
                byte_off, byte_len, ..
            } => Some((byte_off, byte_len)),
        }
    }

    /// Length in bits.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Whether the certificate carries zero bits.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// The bit at `index` (MSB-first within each byte), or `None` past the
    /// end.
    pub fn try_bit(&self, index: usize) -> Option<bool> {
        if index >= self.len_bits {
            return None;
        }
        let byte = self.as_bytes()[index / 8];
        Some((byte >> (7 - index % 8)) & 1 == 1)
    }

    /// The bit at `index` (MSB-first within each byte). Total: out-of-range
    /// indices read as `0`, so adversarially malformed certificates can
    /// never panic a verification path — use [`Certificate::try_bit`] to
    /// distinguish padding from absence.
    pub fn bit(&self, index: usize) -> bool {
        self.try_bit(index).unwrap_or(false)
    }

    /// A copy with the bit at `index` flipped (for mutation attacks and
    /// fault injection). Total: an out-of-range `index` returns an
    /// unchanged copy. Copy-on-write: on an arena view this materializes
    /// an owned certificate — the shared arena is never written.
    pub fn with_bit_flipped(&self, index: usize) -> Certificate {
        if index >= self.len_bits {
            return self.clone();
        }
        let mut bytes = self.as_bytes().to_vec();
        bytes[index / 8] ^= 1 << (7 - index % 8);
        Certificate {
            repr: Repr::Owned(bytes),
            len_bits: self.len_bits,
        }
    }

    /// The raw bytes (the final byte's trailing bits are zero).
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned(bytes) => bytes,
            Repr::View {
                arena,
                byte_off,
                byte_len,
            } => &arena[*byte_off..byte_off + byte_len],
        }
    }

    /// Builds a certificate from raw bytes and a bit length — the
    /// binary-wire inverse of [`Certificate::as_bytes`] +
    /// [`Certificate::len_bits`]. Returns `None` unless the byte count
    /// matches `len_bits` exactly and the final byte's trailing padding
    /// bits are zero (the canonical form, as in [`Certificate::from_hex`]).
    pub fn from_bytes(bytes: Vec<u8>, len_bits: usize) -> Option<Certificate> {
        if bytes.len() != len_bits.div_ceil(8) {
            return None;
        }
        if !len_bits.is_multiple_of(8) {
            if let Some(&last) = bytes.last() {
                let used = len_bits % 8;
                if last & ((1u8 << (8 - used)) - 1) != 0 {
                    return None;
                }
            }
        }
        Some(Certificate {
            repr: Repr::Owned(bytes),
            len_bits,
        })
    }

    /// Serializes as `"<len_bits>:<hex bytes>"` (for files and CLIs).
    pub fn to_hex(&self) -> String {
        let mut s = format!("{}:", self.len_bits);
        for b in self.as_bytes() {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses the [`Certificate::to_hex`] format. Trailing bits of the
    /// final byte must be zero.
    pub fn from_hex(s: &str) -> Option<Certificate> {
        let (len_str, hex) = s.split_once(':')?;
        let len_bits: usize = len_str.parse().ok()?;
        if hex.len() % 2 != 0 || hex.len() / 2 != len_bits.div_ceil(8) {
            return None;
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        let mut chars = hex.bytes();
        while let (Some(a), Some(b)) = (chars.next(), chars.next()) {
            let hi = (a as char).to_digit(16)?;
            let lo = (b as char).to_digit(16)?;
            bytes.push((hi * 16 + lo) as u8);
        }
        // Trailing padding bits must be zero (canonical form).
        if !len_bits.is_multiple_of(8) {
            if let Some(&last) = bytes.last() {
                let used = len_bits % 8;
                if last & ((1u8 << (8 - used)) - 1) != 0 {
                    return None;
                }
            }
        }
        Some(Certificate {
            repr: Repr::Owned(bytes),
            len_bits,
        })
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b[", self.len_bits)?;
        for i in 0..self.len_bits.min(64) {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        if self.len_bits > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

/// Writes fixed-width fields MSB-first.
///
/// Writers double as the prover-side attribution point of the bit
/// ledger (`locert_trace::ledger`): [`BitWriter::component`] marks the
/// start of a named witness component, and [`BitWriter::finish_for`]
/// hands the marks to an active ledger capture. While no capture is
/// active anywhere, both cost one relaxed atomic load.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    len_bits: usize,
    /// `(component, start-bit)` attribution marks, kept only while a
    /// ledger capture is active.
    marks: Vec<(&'static str, usize)>,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the `width` low bits of `value`, MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn write(&mut self, value: u64, width: u32) -> &mut Self {
        assert!(width <= 64, "width exceeds 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        // Byte-at-a-time instead of bit-at-a-time: each iteration packs
        // up to 8 bits into the current partial byte.
        let mut remaining = width as usize;
        while remaining > 0 {
            let bit_in_byte = self.len_bits % 8;
            if bit_in_byte == 0 {
                self.bytes.push(0);
            }
            let avail = 8 - bit_in_byte;
            let take = avail.min(remaining);
            let chunk = (value >> (remaining - take)) & ((1u64 << take) - 1);
            *self.bytes.last_mut().expect("pushed") |= (chunk as u8) << (avail - take);
            self.len_bits += take;
            remaining -= take;
        }
        self
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) -> &mut Self {
        self.write(u64::from(bit), 1)
    }

    /// Appends all bits of another certificate. Byte-aligned writers
    /// append with a single memcpy (certificates are canonical, so the
    /// tail padding bits are already zero); unaligned writers fall back
    /// to 56-bit chunks.
    pub fn write_cert(&mut self, other: &Certificate) -> &mut Self {
        if self.len_bits.is_multiple_of(8) {
            self.bytes.extend_from_slice(other.as_bytes());
            self.len_bits += other.len_bits();
        } else {
            let mut r = BitReader::new(other);
            let mut rem = other.len_bits();
            while rem > 0 {
                let take = rem.min(56) as u32;
                let v = r.read(take).expect("reader stays in range");
                self.write(v, take);
                rem -= take as usize;
            }
        }
        self
    }

    /// Current length in bits.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Marks the bits written from here on as belonging to the witness
    /// component `name` (until the next mark or the end). A no-op —
    /// one relaxed atomic load — unless a `locert_trace::ledger`
    /// capture is active.
    pub fn component(&mut self, name: &'static str) -> &mut Self {
        if locert_trace::ledger::active() {
            self.marks.push((name, self.len_bits));
        }
        self
    }

    /// Finalizes into a [`Certificate`].
    pub fn finish(self) -> Certificate {
        Certificate {
            repr: Repr::Owned(self.bytes),
            len_bits: self.len_bits,
        }
    }

    /// Finalizes into a [`Certificate`] and, when a ledger capture is
    /// active on this thread, records the component attribution for
    /// `vertex` (a `NodeId` index). Every scheme prover finishes its
    /// per-vertex writers through this so captured runs yield a
    /// complete [`locert_trace::ledger::BitLedger`].
    ///
    /// Debug builds enforce the tiling invariant at the source: inside
    /// a capture, a non-empty certificate must open with a component
    /// mark at bit 0 so the attributed spans tile the whole
    /// certificate.
    pub fn finish_for(self, vertex: usize) -> Certificate {
        if locert_trace::ledger::active() {
            debug_assert!(
                self.len_bits == 0 || self.marks.first().is_some_and(|&(_, start)| start == 0),
                "certificate for vertex {vertex} has bits before the first component mark"
            );
            locert_trace::ledger::record_cert(vertex, self.len_bits, &self.marks);
        }
        self.finish()
    }
}

/// Reads fixed-width fields MSB-first; every accessor returns `None` past
/// the end (verifiers must treat malformed certificates as rejection, not
/// panic).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    len_bits: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader at bit position 0.
    pub fn new(cert: &'a Certificate) -> Self {
        BitReader {
            bytes: cert.as_bytes(),
            len_bits: cert.len_bits(),
            pos: 0,
        }
    }

    /// Reads a `width`-bit field; `None` if fewer bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read(&mut self, width: u32) -> Option<u64> {
        assert!(width <= 64, "width exceeds 64");
        if self.pos + width as usize > self.len_bits {
            return None;
        }
        // Byte-at-a-time: each iteration pulls the overlap of the field
        // with one byte, so a 64-bit read costs at most 9 iterations
        // instead of 64.
        let mut v = 0u64;
        let mut pos = self.pos;
        let mut remaining = width as usize;
        while remaining > 0 {
            let byte = u64::from(self.bytes[pos / 8]);
            let bit_in_byte = pos % 8;
            let avail = 8 - bit_in_byte;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u64 << take) - 1);
            v = (v << take) | chunk;
            pos += take;
            remaining -= take;
        }
        self.pos = pos;
        Some(v)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read(1).map(|v| v == 1)
    }

    /// Remaining bits.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos
    }

    /// Whether the reader consumed the certificate exactly.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

/// Number of bits needed to store values in `0..=max` (at least 1).
pub fn width_for(max: u64) -> u32 {
    (u64::BITS - max.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fields() {
        let mut w = BitWriter::new();
        w.write(5, 3).write(0, 2).write(u64::MAX, 64).write(1, 1);
        let c = w.finish();
        assert_eq!(c.len_bits(), 70);
        let mut r = BitReader::new(&c);
        assert_eq!(r.read(3), Some(5));
        assert_eq!(r.read(2), Some(0));
        assert_eq!(r.read(64), Some(u64::MAX));
        assert_eq!(r.read_bit(), Some(true));
        assert!(r.exhausted());
    }

    #[test]
    fn empty_certificate() {
        let c = Certificate::empty();
        assert_eq!(c.len_bits(), 0);
        assert!(c.is_empty());
        let mut r = BitReader::new(&c);
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_rejected() {
        BitWriter::new().write(4, 2);
    }

    #[test]
    fn read_past_end_is_none_not_panic() {
        let mut w = BitWriter::new();
        w.write(3, 2);
        let c = w.finish();
        let mut r = BitReader::new(&c);
        assert_eq!(r.read(3), None);
        assert_eq!(r.read(2), Some(3));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn bit_indexing_msb_first() {
        let mut w = BitWriter::new();
        w.write(0b10, 2);
        let c = w.finish();
        assert!(c.bit(0));
        assert!(!c.bit(1));
    }

    #[test]
    fn flip_bit() {
        let mut w = BitWriter::new();
        w.write(0b1010, 4);
        let c = w.finish().with_bit_flipped(1);
        let mut r = BitReader::new(&c);
        assert_eq!(r.read(4), Some(0b1110));
    }

    #[test]
    fn adversarial_indices_are_total() {
        let mut w = BitWriter::new();
        w.write(0b11, 2);
        let c = w.finish();
        // Out-of-range reads are 0, not panics.
        assert!(!c.bit(2));
        assert!(!c.bit(usize::MAX));
        assert_eq!(c.try_bit(1), Some(true));
        assert_eq!(c.try_bit(2), None);
        // Out-of-range flips are no-ops.
        assert_eq!(c.with_bit_flipped(17), c);
        assert_eq!(
            Certificate::empty().with_bit_flipped(0),
            Certificate::empty()
        );
    }

    #[test]
    fn write_cert_concatenates() {
        let mut a = BitWriter::new();
        a.write(0b101, 3);
        let ca = a.finish();
        let mut b = BitWriter::new();
        b.write(0b01, 2).write_cert(&ca);
        let cb = b.finish();
        assert_eq!(cb.len_bits(), 5);
        let mut r = BitReader::new(&cb);
        assert_eq!(r.read(2), Some(0b01));
        assert_eq!(r.read(3), Some(0b101));
    }

    #[test]
    fn hex_roundtrip() {
        let mut w = BitWriter::new();
        w.write(0b1011001, 7).write(0xABCD, 16);
        let c = w.finish();
        let hex = c.to_hex();
        assert_eq!(Certificate::from_hex(&hex), Some(c));
        // Empty certificate.
        let e = Certificate::empty();
        assert_eq!(Certificate::from_hex(&e.to_hex()), Some(e));
    }

    #[test]
    fn hex_rejects_malformed() {
        assert_eq!(Certificate::from_hex("nope"), None);
        assert_eq!(Certificate::from_hex("8:zz"), None);
        // Wrong byte count for the claimed length.
        assert_eq!(Certificate::from_hex("16:ff"), None);
        // Non-zero padding bits.
        assert_eq!(Certificate::from_hex("4:0f"), None);
        assert!(Certificate::from_hex("4:f0").is_some());
    }

    #[test]
    fn width_for_values() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(255), 8);
        assert_eq!(width_for(256), 9);
        assert_eq!(width_for(u64::MAX), 64);
    }

    #[test]
    fn component_marks_flow_into_ledger_captures() {
        // Outside a capture: marks are not even stored.
        let mut w = BitWriter::new();
        w.component("a").write(1, 3);
        assert!(w.marks.is_empty());
        let c = w.finish_for(0);
        assert_eq!(c.len_bits(), 3);
        // Inside a capture: spans tile the certificate.
        let (cert, ledger) = locert_trace::ledger::capture(|| {
            let mut w = BitWriter::new();
            w.component("root-id");
            w.write(5, 4);
            w.component("distance");
            w.write(2, 6);
            w.finish_for(7)
        });
        assert_eq!(cert.len_bits(), 10);
        assert_eq!(ledger.certs.len(), 1);
        let entry = &ledger.certs[0];
        assert_eq!(entry.vertex, 7);
        assert_eq!(entry.total_bits, 10);
        assert!(entry.fully_attributed());
        assert_eq!(entry.component_bits()["root-id"], 4);
        assert_eq!(entry.component_bits()["distance"], 6);
    }

    #[test]
    fn empty_certificate_needs_no_marks() {
        let ((), ledger) = locert_trace::ledger::capture(|| {
            let _ = BitWriter::new().finish_for(0);
        });
        assert!(ledger.certs[0].fully_attributed());
        assert_eq!(ledger.certs[0].total_bits, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "before the first component mark")]
    fn unmarked_bits_violate_the_tiling_invariant_in_debug() {
        let ((), _ledger) = locert_trace::ledger::capture(|| {
            let mut w = BitWriter::new();
            w.write(1, 2); // no component mark at bit 0.
            w.component("late");
            w.write(1, 2);
            let _ = w.finish_for(0);
        });
    }

    #[test]
    fn display_formats() {
        let mut w = BitWriter::new();
        w.write(0b110, 3);
        let c = w.finish();
        assert_eq!(c.to_string(), "3b[110]");
    }
}
