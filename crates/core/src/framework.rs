//! The certification framework: instances, views, provers, verifiers, and
//! the network simulator.
//!
//! The model is the paper's (Section 3.3 and Appendix A.1):
//!
//! - vertices carry unique identifiers from a polynomial range;
//! - the verification radius is exactly **1**: a vertex sees its own
//!   identifier, input and certificate and the identifiers, inputs and
//!   certificates of its neighbors — and *cannot* see which edges run
//!   among those neighbors;
//! - optionally, vertices carry constant-size *inputs* (the paper's
//!   locally-checkable-labeling extension), used e.g. to put letters on
//!   path graphs.

use crate::bits::Certificate;
use locert_graph::{Graph, IdAssignment, Ident, NodeId};
use std::error::Error;
use std::fmt;

/// A certification instance: a connected graph, an identifier assignment,
/// and optional constant-size inputs.
#[derive(Debug, Clone)]
pub struct Instance<'a> {
    graph: &'a Graph,
    ids: &'a IdAssignment,
    inputs: Option<&'a [usize]>,
}

impl<'a> Instance<'a> {
    /// Pairs a graph with an identifier assignment (no inputs).
    ///
    /// # Panics
    ///
    /// Panics if the assignment size disagrees with the vertex count.
    pub fn new(graph: &'a Graph, ids: &'a IdAssignment) -> Self {
        assert_eq!(
            graph.num_nodes(),
            ids.len(),
            "identifier assignment must cover every vertex"
        );
        Instance {
            graph,
            ids,
            inputs: None,
        }
    }

    /// Adds per-vertex inputs (e.g. letters on a path).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` disagrees with the vertex count.
    pub fn with_inputs(graph: &'a Graph, ids: &'a IdAssignment, inputs: &'a [usize]) -> Self {
        assert_eq!(graph.num_nodes(), ids.len(), "ids must cover every vertex");
        assert_eq!(
            graph.num_nodes(),
            inputs.len(),
            "inputs must cover every vertex"
        );
        Instance {
            graph,
            ids,
            inputs: Some(inputs),
        }
    }

    /// The graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The identifier assignment.
    pub fn ids(&self) -> &IdAssignment {
        self.ids
    }

    /// The input of vertex `v` (0 when no inputs were attached).
    pub fn input(&self, v: NodeId) -> usize {
        self.inputs.map_or(0, |ins| ins[v.0])
    }
}

/// A certificate assignment: one certificate per vertex.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    certs: Vec<Certificate>,
}

impl Assignment {
    /// Wraps per-vertex certificates (indexed by [`NodeId`]).
    pub fn new(certs: Vec<Certificate>) -> Self {
        Assignment { certs }
    }

    /// All-empty certificates for `n` vertices.
    pub fn empty(n: usize) -> Self {
        Assignment {
            certs: vec![Certificate::empty(); n],
        }
    }

    /// The certificate of `v`. Total: vertices the assignment does not
    /// cover read as the empty certificate, so adversarially truncated
    /// assignments flow into rejection rather than a panic.
    pub fn cert(&self, v: NodeId) -> &Certificate {
        static EMPTY: Certificate = Certificate::const_empty();
        self.certs.get(v.0).unwrap_or(&EMPTY)
    }

    /// Mutable access (for attack harnesses and fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range — mutation is a simulator-side
    /// operation on vertices that exist, unlike the read path which must
    /// stay total under adversarial inputs.
    pub fn cert_mut(&mut self, v: NodeId) -> &mut Certificate {
        &mut self.certs[v.0]
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// Whether no vertex is covered.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// The size of the assignment: the maximum certificate length in bits
    /// (the paper's measure).
    pub fn max_bits(&self) -> usize {
        self.certs
            .iter()
            .map(Certificate::len_bits)
            .max()
            .unwrap_or(0)
    }

    /// Total bits across all vertices (for redundancy analyses).
    pub fn total_bits(&self) -> usize {
        self.certs.iter().map(Certificate::len_bits).sum()
    }
}

/// What one vertex sees: its radius-1 view.
#[derive(Debug, Clone)]
pub struct LocalView<'a> {
    /// The vertex's own identifier.
    pub id: Ident,
    /// The vertex's own input (0 if the instance has none).
    pub input: usize,
    /// The vertex's own certificate.
    pub cert: &'a Certificate,
    /// For each incident edge: the neighbor's identifier, input and
    /// certificate. **No information about edges among neighbors.**
    pub neighbors: Vec<(Ident, usize, &'a Certificate)>,
}

impl<'a> LocalView<'a> {
    /// The degree of the vertex.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether some neighbor carries identifier `id`.
    pub fn has_neighbor(&self, id: Ident) -> bool {
        self.neighbors.iter().any(|&(nid, _, _)| nid == id)
    }

    /// The certificate of the neighbor with identifier `id`, if present.
    pub fn neighbor_cert(&self, id: Ident) -> Option<&'a Certificate> {
        self.neighbors
            .iter()
            .find(|&&(nid, _, _)| nid == id)
            .map(|&(_, _, c)| c)
    }
}

/// Builds the view of vertex `v` under `assignment`.
pub fn view_of<'a>(
    instance: &'a Instance<'a>,
    assignment: &'a Assignment,
    v: NodeId,
) -> LocalView<'a> {
    let neighbors: Vec<(Ident, usize, &Certificate)> = instance
        .graph()
        .neighbors(v)
        .iter()
        .map(|&u| {
            (
                instance.ids().ident(u),
                instance.input(u),
                assignment.cert(u),
            )
        })
        .collect();
    if locert_trace::enabled() {
        locert_trace::add("core.framework.view_of.calls", 1);
        locert_trace::record("core.framework.view.neighbors", neighbors.len() as u64);
    }
    LocalView {
        id: instance.ids().ident(v),
        input: instance.input(v),
        cert: assignment.cert(v),
        neighbors,
    }
}

/// Error produced by a prover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProverError {
    /// The instance does not satisfy the property (no certificate can
    /// exist; this is a *no*-instance).
    NotAYesInstance,
    /// The prover needs a witness it could not compute at this scale
    /// (e.g. an optimal elimination tree beyond the exact solver's limit).
    WitnessUnavailable(String),
}

impl fmt::Display for ProverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProverError::NotAYesInstance => write!(f, "instance does not satisfy the property"),
            ProverError::WitnessUnavailable(msg) => write!(f, "witness unavailable: {msg}"),
        }
    }
}

impl Error for ProverError {}

/// The honest prover of a scheme.
pub trait Prover {
    /// Computes a certificate assignment for a yes-instance.
    ///
    /// # Errors
    ///
    /// [`ProverError::NotAYesInstance`] when the property fails (so
    /// completeness tests can also drive no-instances through the
    /// prover), or [`ProverError::WitnessUnavailable`] when the instance
    /// exceeds what the prover can handle.
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError>;
}

/// The local verification algorithm of a scheme.
pub trait Verifier {
    /// The decision of one vertex given its radius-1 view.
    fn verify(&self, view: &LocalView<'_>) -> bool;
}

/// A complete certification scheme: prover + verifier + metadata.
pub trait Scheme: Prover + Verifier {
    /// Human-readable name (for experiment reports).
    fn name(&self) -> String;
}

/// The outcome of running the verifier at every vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationOutcome {
    rejecting: Vec<Ident>,
    max_bits: usize,
}

impl VerificationOutcome {
    /// Whether every vertex accepted.
    pub fn accepted(&self) -> bool {
        self.rejecting.is_empty()
    }

    /// Identifiers of the rejecting vertices.
    pub fn rejecting(&self) -> &[Ident] {
        &self.rejecting
    }

    /// The certificate size (max bits) of the assignment that was run.
    pub fn max_bits(&self) -> usize {
        self.max_bits
    }
}

/// Runs `verifier` at every vertex under `assignment`.
///
/// Total under adversarial assignments: vertices the assignment does not
/// cover see the empty certificate (and so reject in any scheme that
/// requires certificate contents) instead of panicking the simulator.
pub fn run_verification(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    assignment: &Assignment,
) -> VerificationOutcome {
    let _span = locert_trace::span!("core.run_verification");
    let traced = locert_trace::enabled();
    let mut rejecting = Vec::new();
    if traced {
        let invocations = locert_trace::Counter::named("core.framework.verifier.invocations");
        let rejections = locert_trace::Counter::named("core.framework.verifier.rejections");
        let cert_bits = locert_trace::Histogram::named("core.framework.certificate.bits");
        let per_vertex_ns = locert_trace::Histogram::named("core.framework.verifier.ns");
        for v in instance.graph().nodes() {
            cert_bits.record(assignment.cert(v).len_bits() as u64);
            let start = std::time::Instant::now();
            let accepted = verifier.verify(&view_of(instance, assignment, v));
            per_vertex_ns.record(start.elapsed().as_nanos() as u64);
            invocations.add(1);
            if !accepted {
                rejections.add(1);
                rejecting.push(instance.ids().ident(v));
            }
        }
    } else {
        rejecting = instance
            .graph()
            .nodes()
            .filter(|&v| !verifier.verify(&view_of(instance, assignment, v)))
            .map(|v| instance.ids().ident(v))
            .collect();
    }
    VerificationOutcome {
        rejecting,
        max_bits: assignment.max_bits(),
    }
}

/// Runs the full pipeline: prover, then verification at every vertex.
///
/// # Errors
///
/// Propagates the prover's error on non-yes-instances.
pub fn run_scheme(
    scheme: &dyn Scheme,
    instance: &Instance<'_>,
) -> Result<VerificationOutcome, ProverError> {
    let _span = locert_trace::span!("core.run_scheme");
    let assignment = {
        let _prover_span = locert_trace::span!("core.prover");
        scheme.assign(instance)?
    };
    if locert_trace::enabled() {
        locert_trace::add("core.prover.assignments", 1);
        locert_trace::record(
            "core.framework.assignment.max_bits",
            assignment.max_bits() as u64,
        );
        locert_trace::record(
            "core.framework.assignment.total_bits",
            assignment.total_bits() as u64,
        );
    }
    Ok(run_verification(scheme, instance, &assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use locert_graph::generators;

    /// Toy scheme: every vertex's certificate is its own degree; verified
    /// against the visible neighbor count.
    struct DegreeScheme;

    impl Prover for DegreeScheme {
        fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
            let certs = instance
                .graph()
                .nodes()
                .map(|v| {
                    let mut w = BitWriter::new();
                    w.write(instance.graph().degree(v) as u64, 16);
                    w.finish()
                })
                .collect();
            Ok(Assignment::new(certs))
        }
    }

    impl Verifier for DegreeScheme {
        fn verify(&self, view: &LocalView<'_>) -> bool {
            let mut r = crate::bits::BitReader::new(view.cert);
            r.read(16) == Some(view.degree() as u64) && r.exhausted()
        }
    }

    impl Scheme for DegreeScheme {
        fn name(&self) -> String {
            "degree".into()
        }
    }

    #[test]
    fn pipeline_accepts_honest_prover() {
        let g = generators::cycle(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let out = run_scheme(&DegreeScheme, &inst).unwrap();
        assert!(out.accepted());
        assert_eq!(out.max_bits(), 16);
    }

    #[test]
    fn corrupted_certificate_rejected_by_owner() {
        let g = generators::star(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let mut asg = DegreeScheme.assign(&inst).unwrap();
        *asg.cert_mut(NodeId(0)) = asg.cert(NodeId(0)).with_bit_flipped(15);
        let out = run_verification(&DegreeScheme, &inst, &asg);
        assert!(!out.accepted());
        assert_eq!(out.rejecting(), &[ids.ident(NodeId(0))]);
    }

    #[test]
    fn views_do_not_expose_neighbor_edges() {
        // The view type simply has no such field; spot-check the shape.
        let g = generators::clique(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        let asg = Assignment::empty(3);
        let view = view_of(&inst, &asg, NodeId(0));
        assert_eq!(view.degree(), 2);
        assert!(view.has_neighbor(Ident(2)));
        assert!(view.has_neighbor(Ident(3)));
        assert!(!view.has_neighbor(Ident(1))); // itself.
        assert!(view.neighbor_cert(Ident(2)).unwrap().is_empty());
        assert_eq!(view.neighbor_cert(Ident(9)), None);
    }

    #[test]
    fn inputs_flow_into_views() {
        let g = generators::path(3);
        let ids = IdAssignment::contiguous(3);
        let inputs = vec![7usize, 8, 9];
        let inst = Instance::with_inputs(&g, &ids, &inputs);
        let asg = Assignment::empty(3);
        let view = view_of(&inst, &asg, NodeId(1));
        assert_eq!(view.input, 8);
        let mut nbr_inputs: Vec<usize> = view.neighbors.iter().map(|&(_, i, _)| i).collect();
        nbr_inputs.sort_unstable();
        assert_eq!(nbr_inputs, vec![7, 9]);
    }

    #[test]
    fn assignment_size_accounting() {
        let mut w1 = BitWriter::new();
        w1.write(1, 5);
        let mut w2 = BitWriter::new();
        w2.write(1, 9);
        let asg = Assignment::new(vec![w1.finish(), w2.finish()]);
        assert_eq!(asg.max_bits(), 9);
        assert_eq!(asg.total_bits(), 14);
    }
}
