//! The certification framework: instances, views, provers, verifiers, and
//! the network simulator.
//!
//! The model is the paper's (Section 3.3 and Appendix A.1):
//!
//! - vertices carry unique identifiers from a polynomial range;
//! - the verification radius is exactly **1**: a vertex sees its own
//!   identifier, input and certificate and the identifiers, inputs and
//!   certificates of its neighbors — and *cannot* see which edges run
//!   among those neighbors;
//! - optionally, vertices carry constant-size *inputs* (the paper's
//!   locally-checkable-labeling extension), used e.g. to put letters on
//!   path graphs.

use crate::bits::Certificate;
use locert_graph::{Graph, IdAssignment, Ident, NodeId};
use std::error::Error;
use std::fmt;

/// A certification instance: a connected graph, an identifier assignment,
/// and optional constant-size inputs.
#[derive(Debug, Clone)]
pub struct Instance<'a> {
    graph: &'a Graph,
    ids: &'a IdAssignment,
    inputs: Option<&'a [usize]>,
}

impl<'a> Instance<'a> {
    /// Pairs a graph with an identifier assignment (no inputs).
    ///
    /// # Panics
    ///
    /// Panics if the assignment size disagrees with the vertex count.
    pub fn new(graph: &'a Graph, ids: &'a IdAssignment) -> Self {
        assert_eq!(
            graph.num_nodes(),
            ids.len(),
            "identifier assignment must cover every vertex"
        );
        Instance {
            graph,
            ids,
            inputs: None,
        }
    }

    /// Adds per-vertex inputs (e.g. letters on a path).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` disagrees with the vertex count.
    pub fn with_inputs(graph: &'a Graph, ids: &'a IdAssignment, inputs: &'a [usize]) -> Self {
        assert_eq!(graph.num_nodes(), ids.len(), "ids must cover every vertex");
        assert_eq!(
            graph.num_nodes(),
            inputs.len(),
            "inputs must cover every vertex"
        );
        Instance {
            graph,
            ids,
            inputs: Some(inputs),
        }
    }

    /// The graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The identifier assignment.
    pub fn ids(&self) -> &IdAssignment {
        self.ids
    }

    /// The input of vertex `v` (0 when no inputs were attached).
    pub fn input(&self, v: NodeId) -> usize {
        self.inputs.map_or(0, |ins| ins[v.0])
    }
}

/// A certificate assignment: one certificate per vertex.
///
/// [`Assignment::new`] packs the certificates into one contiguous byte
/// arena and stores per-vertex [`Certificate`] *views* into it: cloning
/// a certificate out of an assignment is a refcount bump, and the serve
/// cache and wire encoders serialize each certificate with a single
/// memcpy of its arena window. Mutation through [`Assignment::cert_mut`]
/// replaces the vertex's slot (typically with an owned copy-on-write
/// certificate); the arena itself is immutable for its whole life.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    certs: Vec<Certificate>,
}

impl Assignment {
    /// Wraps per-vertex certificates (indexed by [`NodeId`]), packing
    /// their bytes into one shared arena.
    pub fn new(certs: Vec<Certificate>) -> Self {
        let total: usize = certs.iter().map(|c| c.as_bytes().len()).sum();
        let mut arena = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(certs.len());
        for c in &certs {
            offsets.push(arena.len());
            arena.extend_from_slice(c.as_bytes());
        }
        let arena: std::sync::Arc<[u8]> = arena.into();
        let certs = certs
            .iter()
            .zip(offsets)
            .map(|(c, off)| Certificate::view(arena.clone(), off, c.len_bits()))
            .collect();
        Assignment { certs }
    }

    /// Wraps per-vertex certificates as-is, without arena packing.
    ///
    /// For enumeration hot loops (exhaustive and random attacks) that
    /// build millions of short-lived assignments: `new`'s arena costs
    /// two allocations per assignment, which dominates when each
    /// assignment is verified once and dropped. Honest provers use
    /// [`Assignment::new`] so long-lived assignments stay arena-backed.
    pub fn from_unpacked(certs: Vec<Certificate>) -> Self {
        Assignment { certs }
    }

    /// All-empty certificates for `n` vertices.
    pub fn empty(n: usize) -> Self {
        Assignment {
            certs: vec![Certificate::empty(); n],
        }
    }

    /// The certificate of `v`. Total: vertices the assignment does not
    /// cover read as the empty certificate, so adversarially truncated
    /// assignments flow into rejection rather than a panic.
    pub fn cert(&self, v: NodeId) -> &Certificate {
        static EMPTY: Certificate = Certificate::const_empty();
        self.certs.get(v.0).unwrap_or(&EMPTY)
    }

    /// Mutable access (for attack harnesses and fault injection). Hands
    /// the mutation to the event journal so a replay shows *which*
    /// certificates the harness touched; with the journal disabled the
    /// extra cost is one relaxed atomic load.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range — mutation is a simulator-side
    /// operation on vertices that exist, unlike the read path which must
    /// stay total under adversarial inputs.
    pub fn cert_mut(&mut self, v: NodeId) -> &mut Certificate {
        locert_trace::journal::record_with(|| locert_trace::journal::Event::CertMutated {
            vertex: v.0 as u64,
        });
        &mut self.certs[v.0]
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// Whether no vertex is covered.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// The size of the assignment: the maximum certificate length in bits
    /// (the paper's measure).
    ///
    /// Zero-length certificates contribute 0, so
    /// [`Assignment::empty`]`(n).max_bits() == 0` for every `n` —
    /// including `n == 0`, where there is no certificate at all. A
    /// certificate-free scheme genuinely has size 0 in the paper's
    /// measure; callers must not treat 0 as "no assignment".
    pub fn max_bits(&self) -> usize {
        self.certs
            .iter()
            .map(Certificate::len_bits)
            .max()
            .unwrap_or(0)
    }

    /// Total bits across all vertices (for redundancy analyses).
    ///
    /// Like [`Assignment::max_bits`], this is 0 both for the empty
    /// assignment (`n == 0`) and for assignments of all-empty
    /// certificates.
    pub fn total_bits(&self) -> usize {
        self.certs.iter().map(Certificate::len_bits).sum()
    }
}

/// What one vertex sees: its radius-1 view.
#[derive(Debug, Clone)]
pub struct LocalView<'a> {
    /// The vertex's own identifier.
    pub id: Ident,
    /// The vertex's own input (0 if the instance has none).
    pub input: usize,
    /// The vertex's own certificate.
    pub cert: &'a Certificate,
    /// For each incident edge: the neighbor's identifier, input and
    /// certificate. **No information about edges among neighbors.**
    pub neighbors: Vec<(Ident, usize, &'a Certificate)>,
}

impl<'a> LocalView<'a> {
    /// The degree of the vertex.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether some neighbor carries identifier `id`.
    pub fn has_neighbor(&self, id: Ident) -> bool {
        self.neighbors.iter().any(|&(nid, _, _)| nid == id)
    }

    /// The certificate of the neighbor with identifier `id`, if present.
    pub fn neighbor_cert(&self, id: Ident) -> Option<&'a Certificate> {
        self.neighbors
            .iter()
            .find(|&&(nid, _, _)| nid == id)
            .map(|&(_, _, c)| c)
    }
}

/// Builds the view of vertex `v` under `assignment`.
pub fn view_of<'a>(
    instance: &'a Instance<'a>,
    assignment: &'a Assignment,
    v: NodeId,
) -> LocalView<'a> {
    let neighbors: Vec<(Ident, usize, &Certificate)> = instance
        .graph()
        .neighbors(v)
        .iter()
        .map(|&u| {
            (
                instance.ids().ident(u),
                instance.input(u),
                assignment.cert(u),
            )
        })
        .collect();
    if locert_trace::enabled() {
        locert_trace::add("core.framework.view_of.calls", 1);
        locert_trace::record("core.framework.view.neighbors", neighbors.len() as u64);
    }
    LocalView {
        id: instance.ids().ident(v),
        input: instance.input(v),
        cert: assignment.cert(v),
        neighbors,
    }
}

/// Error produced by a prover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProverError {
    /// The instance does not satisfy the property (no certificate can
    /// exist; this is a *no*-instance).
    NotAYesInstance,
    /// The prover needs a witness it could not compute at this scale
    /// (e.g. an optimal elimination tree beyond the exact solver's limit).
    WitnessUnavailable(String),
}

impl fmt::Display for ProverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProverError::NotAYesInstance => write!(f, "instance does not satisfy the property"),
            ProverError::WitnessUnavailable(msg) => write!(f, "witness unavailable: {msg}"),
        }
    }
}

impl Error for ProverError {}

/// The honest prover of a scheme.
pub trait Prover {
    /// Computes a certificate assignment for a yes-instance.
    ///
    /// # Errors
    ///
    /// [`ProverError::NotAYesInstance`] when the property fails (so
    /// completeness tests can also drive no-instances through the
    /// prover), or [`ProverError::WitnessUnavailable`] when the instance
    /// exceeds what the prover can handle.
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError>;
}

/// Why a vertex rejected its radius-1 view.
///
/// The catalogue is deliberately scheme-agnostic: every verifier in the
/// workspace maps its checks onto these reasons so fault campaigns,
/// attack harnesses and the event journal can aggregate across schemes.
/// [`RejectReason::code`] gives the stable kebab-case string stored in
/// JSONL journals and provenance tables; [`RejectReason::from_code`]
/// inverts it for replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectReason {
    /// The vertex's own certificate failed to parse (bad bit index,
    /// truncated field, out-of-range value).
    MalformedCertificate,
    /// A neighbor's certificate failed to parse.
    MalformedNeighborCertificate,
    /// A neighbor or witness the certificate promises is not visible in
    /// the view.
    MissingNeighbor,
    /// Root bookkeeping is inconsistent: a forged second root, a
    /// non-root claiming root fields, or root fields disagreeing across
    /// an edge.
    RootMismatch,
    /// A claimed tree parent is not exactly one step closer to the root.
    ParentDistanceClash,
    /// An edge of the graph is not covered by the claimed tree/block
    /// structure.
    NonTreeEdge,
    /// Arithmetic bookkeeping (subtree counts, heights, distances) does
    /// not add up.
    CounterMismatch,
    /// A value that must be replicated identically across an edge (a
    /// shared map, matrix, table or orientation counter) differs.
    CopyMismatch,
    /// A tree-automaton or NFA transition is violated at this vertex.
    AutomatonStateClash,
    /// The final/root automaton state (or the kernel property) is not
    /// accepting.
    NotAccepting,
    /// A claimed adjacency row disagrees with the actually visible
    /// neighborhood.
    AdjacencyMismatch,
    /// The vertex's input label is outside the scheme's alphabet.
    BadInput,
    /// A structural degree constraint fails (e.g. degree > 2 on a path).
    DegreeViolation,
    /// Treedepth ancestor lists are inconsistent (too long, wrong head,
    /// incomparable endpoints, broken subtree spanning tree).
    AncestryViolation,
    /// The fully reconstructed object fails the certified property.
    PropertyViolation,
    /// A scheme-specific reason outside the shared catalogue.
    Other(&'static str),
}

impl RejectReason {
    /// Every catalogued reason (excluding the open-ended [`Other`]).
    ///
    /// [`Other`]: RejectReason::Other
    pub const ALL: [RejectReason; 15] = [
        RejectReason::MalformedCertificate,
        RejectReason::MalformedNeighborCertificate,
        RejectReason::MissingNeighbor,
        RejectReason::RootMismatch,
        RejectReason::ParentDistanceClash,
        RejectReason::NonTreeEdge,
        RejectReason::CounterMismatch,
        RejectReason::CopyMismatch,
        RejectReason::AutomatonStateClash,
        RejectReason::NotAccepting,
        RejectReason::AdjacencyMismatch,
        RejectReason::BadInput,
        RejectReason::DegreeViolation,
        RejectReason::AncestryViolation,
        RejectReason::PropertyViolation,
    ];

    /// The stable kebab-case code used in journals and reports.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::MalformedCertificate => "malformed-certificate",
            RejectReason::MalformedNeighborCertificate => "malformed-neighbor-certificate",
            RejectReason::MissingNeighbor => "missing-neighbor",
            RejectReason::RootMismatch => "root-mismatch",
            RejectReason::ParentDistanceClash => "parent-distance-clash",
            RejectReason::NonTreeEdge => "non-tree-edge",
            RejectReason::CounterMismatch => "counter-mismatch",
            RejectReason::CopyMismatch => "copy-mismatch",
            RejectReason::AutomatonStateClash => "automaton-state-clash",
            RejectReason::NotAccepting => "not-accepting",
            RejectReason::AdjacencyMismatch => "adjacency-mismatch",
            RejectReason::BadInput => "bad-input",
            RejectReason::DegreeViolation => "degree-violation",
            RejectReason::AncestryViolation => "ancestry-violation",
            RejectReason::PropertyViolation => "property-violation",
            RejectReason::Other(code) => code,
        }
    }

    /// Inverts [`code`](RejectReason::code) for the catalogued reasons.
    /// Codes minted through [`Other`](RejectReason::Other) cannot be
    /// reconstructed and return `None`.
    pub fn from_code(code: &str) -> Option<RejectReason> {
        RejectReason::ALL.into_iter().find(|r| r.code() == code)
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One vertex's verification verdict, with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Whether the vertex accepted.
    pub accepted: bool,
    /// Why it rejected (`None` iff `accepted`).
    pub reason: Option<RejectReason>,
    /// Certificate bits in the vertex's radius-1 view: its own
    /// certificate plus every neighbor's (the paper's per-vertex
    /// verification volume).
    pub bits_read: usize,
}

/// The local verification algorithm of a scheme.
///
/// `Sync` is a supertrait because [`run_verification`] runs vertices in
/// parallel sharing one `&dyn Verifier` — faithful to the model, where
/// every vertex runs the *same* stateless decision procedure on its own
/// radius-1 view. Interior mutability (memo caches) must be thread-safe
/// (`Mutex`, atomics), not `RefCell`.
pub trait Verifier: Sync {
    /// The decision of one vertex given its radius-1 view, with a
    /// [`RejectReason`] on rejection.
    ///
    /// # Errors
    ///
    /// The reason the vertex rejects; `Ok(())` means accept.
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason>;

    /// The bare boolean decision (provided; equivalent to
    /// `self.decide(view).is_ok()`).
    fn verify(&self, view: &LocalView<'_>) -> bool {
        self.decide(view).is_ok()
    }
}

/// The asymptotic certificate-size family a scheme claims, as a
/// machine-readable value the conformance observatory (`boundcheck`,
/// experiment E9) can fit measured sizes against.
///
/// The taxonomy mirrors the paper's bound table: `O(1)` for MSO on
/// trees and words (Thm 2.2, §4), `O(log k)` for parameterized bounds
/// independent of `n`, `O(log n)` for the FO fragments, spanning-tree
/// and minor-freeness schemes (Lemma 2.1, Prop 3.4, Cor 2.7), and
/// `poly(td)·log n` for the treedepth routes (Thm 2.4, Thm 2.6). The
/// universal fallback broadcasts the whole graph and is quadratic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclaredBound {
    /// `O(1)`: size independent of `n` and of every parameter.
    Constant,
    /// `O(log k)`: grows only with the named parameter bound `k`,
    /// never with `n`.
    LogK {
        /// The parameter value the scheme was instantiated with.
        k: u64,
    },
    /// `O(log n)`.
    LogN,
    /// `poly(td)·log n` with the treedepth parameter fixed.
    PolyTdLogN {
        /// The treedepth (or minor-order) bound `t`.
        td: u32,
    },
    /// `O(n²)`: the universal scheme's full-graph broadcast.
    QuadraticN,
}

impl DeclaredBound {
    /// Rank in the dominance order `O(1) < O(log k) < O(log n) <
    /// poly(td)·log n < O(n²)`, used to combine operand bounds.
    fn rank(&self) -> u8 {
        match self {
            DeclaredBound::Constant => 0,
            DeclaredBound::LogK { .. } => 1,
            DeclaredBound::LogN => 2,
            DeclaredBound::PolyTdLogN { .. } => 3,
            DeclaredBound::QuadraticN => 4,
        }
    }

    /// The stable family code (`o1`, `o-log-k`, `o-log-n`,
    /// `poly-td-log-n`, `o-n2`) used in baselines and reports.
    pub fn family(&self) -> &'static str {
        match self {
            DeclaredBound::Constant => "o1",
            DeclaredBound::LogK { .. } => "o-log-k",
            DeclaredBound::LogN => "o-log-n",
            DeclaredBound::PolyTdLogN { .. } => "poly-td-log-n",
            DeclaredBound::QuadraticN => "o-n2",
        }
    }

    /// Human-readable bound with parameters filled in.
    pub fn label(&self) -> String {
        match self {
            DeclaredBound::Constant => "O(1)".into(),
            DeclaredBound::LogK { k } => format!("O(log k), k={k}"),
            DeclaredBound::LogN => "O(log n)".into(),
            DeclaredBound::PolyTdLogN { td } => format!("poly(td)·log n, td={td}"),
            DeclaredBound::QuadraticN => "O(n²)".into(),
        }
    }

    /// The growth envelope `g(n)` the bound permits, up to a constant:
    /// `1` for `n`-independent families, `log₂ n` for the logarithmic
    /// ones (the `poly(td)` factor is a constant once `td` is fixed),
    /// `n²` for the universal fallback. Measured sizes conform when
    /// `max_bits(n) / g(n)` stays bounded as `n` grows.
    pub fn growth(&self, n: usize) -> f64 {
        match self {
            DeclaredBound::Constant | DeclaredBound::LogK { .. } => 1.0,
            DeclaredBound::LogN | DeclaredBound::PolyTdLogN { .. } => (n.max(2) as f64).log2(),
            DeclaredBound::QuadraticN => {
                let n = n.max(1) as f64;
                n * n
            }
        }
    }

    /// The bound of a scheme combining two sub-schemes: the dominating
    /// family, with parameters merged by maximum when the families tie.
    pub fn combine(self, other: DeclaredBound) -> DeclaredBound {
        match (self, other) {
            (DeclaredBound::LogK { k: a }, DeclaredBound::LogK { k: b }) => {
                DeclaredBound::LogK { k: a.max(b) }
            }
            (DeclaredBound::PolyTdLogN { td: a }, DeclaredBound::PolyTdLogN { td: b }) => {
                DeclaredBound::PolyTdLogN { td: a.max(b) }
            }
            (a, b) => {
                if a.rank() >= b.rank() {
                    a
                } else {
                    b
                }
            }
        }
    }
}

impl fmt::Display for DeclaredBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A complete certification scheme: prover + verifier + metadata.
pub trait Scheme: Prover + Verifier {
    /// Human-readable name (for experiment reports).
    fn name(&self) -> String;

    /// The certificate-size bound the scheme claims (the paper's
    /// theorem statement for it), checked against measured sizes by
    /// the conformance observatory.
    fn declared_bound(&self) -> DeclaredBound;
}

/// The outcome of running the verifier at every vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationOutcome {
    rejecting: Vec<Ident>,
    verdicts: Vec<Verdict>,
    max_bits: usize,
}

impl VerificationOutcome {
    /// Whether every vertex accepted.
    pub fn accepted(&self) -> bool {
        self.rejecting.is_empty()
    }

    /// Identifiers of the rejecting vertices.
    pub fn rejecting(&self) -> &[Ident] {
        &self.rejecting
    }

    /// Per-vertex verdicts, indexed by [`NodeId`].
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The verdict of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the instance that was run.
    pub fn verdict(&self, v: NodeId) -> &Verdict {
        &self.verdicts[v.0]
    }

    /// The certificate size (max bits) of the assignment that was run.
    pub fn max_bits(&self) -> usize {
        self.max_bits
    }
}

/// Runs `verifier` at every vertex under `assignment`.
///
/// Total under adversarial assignments: vertices the assignment does not
/// cover see the empty certificate (and so reject in any scheme that
/// requires certificate contents) instead of panicking the simulator.
pub fn run_verification(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    assignment: &Assignment,
) -> VerificationOutcome {
    let _span = locert_trace::span!("core.run_verification");
    let handles = locert_trace::enabled().then(|| {
        (
            locert_trace::Counter::named("core.framework.verifier.invocations"),
            locert_trace::Counter::named("core.framework.verifier.rejections"),
            locert_trace::Histogram::named("core.framework.certificate.bits"),
            locert_trace::Histogram::named("core.framework.verifier.ns"),
        )
    });
    // Decide every vertex in parallel: vertices are independent by
    // construction (each sees only its radius-1 view), and the results
    // land in per-vertex slots, so the outcome is identical to the
    // sequential loop at any worker count.
    let n = instance.graph().num_nodes();
    let decided = locert_par::global().par_map_collect(n, |i| {
        let v = NodeId(i);
        let view = view_of(instance, assignment, v);
        let bits_read = view.cert.len_bits()
            + view
                .neighbors
                .iter()
                .map(|&(_, _, c)| c.len_bits())
                .sum::<usize>();
        let start = std::time::Instant::now();
        let reason = verifier.decide(&view).err();
        if let Some((invocations, rejections, cert_bits, per_vertex_ns)) = &handles {
            per_vertex_ns.record(start.elapsed().as_nanos() as u64);
            cert_bits.record(assignment.cert(v).len_bits() as u64);
            invocations.add(1);
            if reason.is_some() {
                rejections.add(1);
            }
        }
        (reason, bits_read)
    });
    // Emit verdicts sequentially in vertex order, off the hot path: the
    // journal stays byte-identical to a single-threaded run. The round
    // mark carries no number — this function has no deterministic local
    // counter (a global one would record schedule order when running
    // inside `journal::capture` on a worker thread), so windowing
    // readers assign ordinals by marker position instead.
    locert_trace::journal::record_with(|| locert_trace::journal::Event::RoundMark {
        scope: "core.verify".to_string(),
        round: None,
    });
    let mut rejecting = Vec::new();
    let mut verdicts = Vec::with_capacity(n);
    for (i, (reason, bits_read)) in decided.into_iter().enumerate() {
        let v = NodeId(i);
        locert_trace::journal::record_with(|| locert_trace::journal::Event::Verdict {
            vertex: v.0 as u64,
            accepted: reason.is_none(),
            reason: reason.as_ref().map(|r| r.code().to_string()),
            bits_read: bits_read as u64,
        });
        if reason.is_some() {
            rejecting.push(instance.ids().ident(v));
        }
        verdicts.push(Verdict {
            accepted: reason.is_none(),
            reason,
            bits_read,
        });
    }
    if locert_trace::enabled() {
        // Read amplification: certificate bits examined across all
        // radius-1 views over bits stored, in fixed-point percent (100
        // = every stored bit read exactly once). Each vertex's
        // certificate is re-read once per incident edge, so this is
        // 100·(1 + 2m/n) on certificates of uniform length. Undefined
        // (and not recorded) for all-empty assignments.
        let read: usize = verdicts.iter().map(|v| v.bits_read).sum();
        if let Some(amp) = (read * 100).checked_div(assignment.total_bits()) {
            locert_trace::record("core.framework.verify.read_amplification", amp as u64);
        }
    }
    VerificationOutcome {
        rejecting,
        verdicts,
        max_bits: assignment.max_bits(),
    }
}

/// Runs the full pipeline: prover, then verification at every vertex.
///
/// # Errors
///
/// Propagates the prover's error on non-yes-instances.
pub fn run_scheme(
    scheme: &dyn Scheme,
    instance: &Instance<'_>,
) -> Result<VerificationOutcome, ProverError> {
    let _span = locert_trace::span!("core.run_scheme");
    locert_trace::journal::record_with(|| locert_trace::journal::Event::ProverStart {
        scheme: scheme.name(),
    });
    let result = {
        let _prover_span = locert_trace::span!("core.prover");
        scheme.assign(instance)
    };
    locert_trace::journal::record_with(|| locert_trace::journal::Event::ProverEnd {
        scheme: scheme.name(),
        ok: result.is_ok(),
        max_bits: result.as_ref().map_or(0, |a| a.max_bits() as u64),
    });
    let assignment = result?;
    if locert_trace::enabled() {
        locert_trace::add("core.prover.assignments", 1);
        locert_trace::record(
            "core.framework.assignment.max_bits",
            assignment.max_bits() as u64,
        );
        locert_trace::record(
            "core.framework.assignment.total_bits",
            assignment.total_bits() as u64,
        );
    }
    Ok(run_verification(scheme, instance, &assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use locert_graph::generators;

    /// Toy scheme: every vertex's certificate is its own degree; verified
    /// against the visible neighbor count.
    struct DegreeScheme;

    impl Prover for DegreeScheme {
        fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
            let certs = instance
                .graph()
                .nodes()
                .map(|v| {
                    let mut w = BitWriter::new();
                    w.component("degree");
                    w.write(instance.graph().degree(v) as u64, 16);
                    w.finish_for(v.0)
                })
                .collect();
            Ok(Assignment::new(certs))
        }
    }

    impl Verifier for DegreeScheme {
        fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
            let mut r = crate::bits::BitReader::new(view.cert);
            let claimed = r.read(16).ok_or(RejectReason::MalformedCertificate)?;
            if !r.exhausted() {
                return Err(RejectReason::MalformedCertificate);
            }
            if claimed != view.degree() as u64 {
                return Err(RejectReason::CounterMismatch);
            }
            Ok(())
        }
    }

    impl Scheme for DegreeScheme {
        fn name(&self) -> String {
            "degree".into()
        }

        fn declared_bound(&self) -> DeclaredBound {
            // A fixed 16-bit field regardless of n.
            DeclaredBound::Constant
        }
    }

    #[test]
    fn pipeline_accepts_honest_prover() {
        let g = generators::cycle(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let out = run_scheme(&DegreeScheme, &inst).unwrap();
        assert!(out.accepted());
        assert_eq!(out.max_bits(), 16);
    }

    #[test]
    fn corrupted_certificate_rejected_by_owner() {
        let g = generators::star(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let mut asg = DegreeScheme.assign(&inst).unwrap();
        *asg.cert_mut(NodeId(0)) = asg.cert(NodeId(0)).with_bit_flipped(15);
        let out = run_verification(&DegreeScheme, &inst, &asg);
        assert!(!out.accepted());
        assert_eq!(out.rejecting(), &[ids.ident(NodeId(0))]);
    }

    #[test]
    fn verdicts_carry_reason_and_bits_read() {
        let g = generators::star(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let mut asg = DegreeScheme.assign(&inst).unwrap();
        *asg.cert_mut(NodeId(0)) = asg.cert(NodeId(0)).with_bit_flipped(15);
        let out = run_verification(&DegreeScheme, &inst, &asg);
        assert_eq!(out.verdicts().len(), 4);
        let bad = out.verdict(NodeId(0));
        assert!(!bad.accepted);
        assert_eq!(bad.reason, Some(RejectReason::CounterMismatch));
        // Center of the star: own 16 bits + three neighbors' 16 bits.
        assert_eq!(bad.bits_read, 64);
        for v in 1..4 {
            let verdict = out.verdict(NodeId(v));
            assert!(verdict.accepted);
            assert_eq!(verdict.reason, None);
            assert_eq!(verdict.bits_read, 32);
        }
    }

    #[test]
    fn reject_reason_codes_roundtrip() {
        for reason in RejectReason::ALL {
            assert_eq!(RejectReason::from_code(reason.code()), Some(reason));
            assert_eq!(reason.to_string(), reason.code());
        }
        assert_eq!(RejectReason::Other("custom-check").code(), "custom-check");
        assert_eq!(RejectReason::from_code("custom-check"), None);
    }

    #[test]
    fn views_do_not_expose_neighbor_edges() {
        // The view type simply has no such field; spot-check the shape.
        let g = generators::clique(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        let asg = Assignment::empty(3);
        let view = view_of(&inst, &asg, NodeId(0));
        assert_eq!(view.degree(), 2);
        assert!(view.has_neighbor(Ident(2)));
        assert!(view.has_neighbor(Ident(3)));
        assert!(!view.has_neighbor(Ident(1))); // itself.
        assert!(view.neighbor_cert(Ident(2)).unwrap().is_empty());
        assert_eq!(view.neighbor_cert(Ident(9)), None);
    }

    #[test]
    fn inputs_flow_into_views() {
        let g = generators::path(3);
        let ids = IdAssignment::contiguous(3);
        let inputs = vec![7usize, 8, 9];
        let inst = Instance::with_inputs(&g, &ids, &inputs);
        let asg = Assignment::empty(3);
        let view = view_of(&inst, &asg, NodeId(1));
        assert_eq!(view.input, 8);
        let mut nbr_inputs: Vec<usize> = view.neighbors.iter().map(|&(_, i, _)| i).collect();
        nbr_inputs.sort_unstable();
        assert_eq!(nbr_inputs, vec![7, 9]);
    }

    #[test]
    fn assignment_size_accounting() {
        let mut w1 = BitWriter::new();
        w1.write(1, 5);
        let mut w2 = BitWriter::new();
        w2.write(1, 9);
        let asg = Assignment::new(vec![w1.finish(), w2.finish()]);
        assert_eq!(asg.max_bits(), 9);
        assert_eq!(asg.total_bits(), 14);
    }

    #[test]
    fn size_accounting_edge_cases() {
        // No vertices at all: both measures are 0, not a panic.
        let none = Assignment::empty(0);
        assert!(none.is_empty());
        assert_eq!(none.max_bits(), 0);
        assert_eq!(none.total_bits(), 0);
        // Vertices with zero-length certificates: still 0 — a
        // certificate-free scheme has size 0 in the paper's measure.
        let empty = Assignment::empty(5);
        assert_eq!(empty.len(), 5);
        assert_eq!(empty.max_bits(), 0);
        assert_eq!(empty.total_bits(), 0);
        // A mix of empty and non-empty certificates: empties count as
        // length 0 on both measures.
        let mut w = BitWriter::new();
        w.write(1, 3);
        let asg = Assignment::new(vec![Certificate::empty(), w.finish()]);
        assert_eq!(asg.max_bits(), 3);
        assert_eq!(asg.total_bits(), 3);
    }

    #[test]
    fn declared_bounds_order_combine_and_describe() {
        use DeclaredBound::*;
        assert_eq!(Constant.combine(LogN), LogN);
        assert_eq!(LogN.combine(Constant), LogN);
        assert_eq!(LogK { k: 3 }.combine(LogK { k: 9 }), LogK { k: 9 });
        assert_eq!(
            PolyTdLogN { td: 2 }.combine(PolyTdLogN { td: 5 }),
            PolyTdLogN { td: 5 }
        );
        assert_eq!(LogN.combine(QuadraticN), QuadraticN);
        assert_eq!(PolyTdLogN { td: 4 }.combine(LogN), PolyTdLogN { td: 4 });
        // Growth envelopes.
        assert_eq!(Constant.growth(1 << 20), 1.0);
        assert_eq!(LogK { k: 7 }.growth(1 << 20), 1.0);
        assert_eq!(LogN.growth(256), 8.0);
        assert_eq!(PolyTdLogN { td: 3 }.growth(256), 8.0);
        assert_eq!(QuadraticN.growth(10), 100.0);
        // Degenerate n never yields a zero or negative envelope.
        assert!(LogN.growth(0) >= 1.0 && LogN.growth(1) >= 1.0);
        // Stable codes and labels.
        assert_eq!(LogN.family(), "o-log-n");
        assert_eq!(PolyTdLogN { td: 3 }.to_string(), "poly(td)·log n, td=3");
        assert_eq!(DegreeScheme.declared_bound(), Constant);
    }

    #[test]
    fn honest_run_yields_a_fully_tiled_ledger() {
        let g = generators::cycle(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let (result, ledger) = locert_trace::ledger::capture(|| run_scheme(&DegreeScheme, &inst));
        assert!(result.unwrap().accepted());
        assert!(ledger.fully_attributed());
        let finals = ledger.final_certs();
        assert_eq!(finals.len(), 5);
        for v in 0..5 {
            assert_eq!(finals[&v].total_bits, 16);
            assert_eq!(finals[&v].component_bits()["degree"], 16);
        }
        assert_eq!(ledger.max_bits(), 16);
    }

    #[test]
    fn read_amplification_histogram_records_under_tracing() {
        // Serialized against other trace-global tests via the registry
        // lock inside locert-trace; use a throwaway metric window.
        let g = generators::cycle(6);
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let asg = DegreeScheme.assign(&inst).unwrap();
        locert_trace::enable();
        locert_trace::reset();
        let out = run_verification(&DegreeScheme, &inst, &asg);
        locert_trace::disable();
        let snap = locert_trace::snapshot();
        locert_trace::reset();
        assert!(out.accepted());
        let hist = &snap.histograms["core.framework.verify.read_amplification"];
        assert_eq!(hist.count, 1);
        // On a cycle every vertex reads its own cert plus two
        // neighbors': amplification is exactly 3x = 300.
        assert_eq!(hist.min, Some(300));
        assert_eq!(hist.max, Some(300));
        // All-empty assignments record nothing (the ratio is undefined).
        locert_trace::enable();
        locert_trace::reset();
        let _ = run_verification(&DegreeScheme, &inst, &Assignment::empty(6));
        locert_trace::disable();
        let snap = locert_trace::snapshot();
        locert_trace::reset();
        assert!(!snap
            .histograms
            .contains_key("core.framework.verify.read_amplification"));
    }
}
