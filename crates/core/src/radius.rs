//! Constant-radius verification (Appendix A.1).
//!
//! The paper fixes the verification radius to **1** and discusses why:
//! with radius adapted to the formula, FO properties need no certificates
//! at all — e.g. "diameter ≤ 2" is decidable by a radius-3 verifier with
//! empty certificates, while at radius 1 it needs `Ω̃(n)` bits \[10].
//!
//! This module implements the radius-`r` model — a vertex sees the entire
//! ball of radius `r` around itself, **including the edges inside the
//! ball** (unlike the radius-1 [`LocalView`](crate::framework::LocalView),
//! which hides edges among neighbors) — and the certificate-free radius-3
//! decision of "diameter ≤ 2", making the appendix's contrast executable.

use crate::framework::{Assignment, Instance};
use locert_graph::{Graph, Ident, NodeId};
use std::collections::HashMap;

/// What a vertex sees at radius `r`: the induced ball around it, with
/// identifiers, inputs and certificates of every ball member.
#[derive(Debug, Clone)]
pub struct BallView {
    /// The center's index *within* [`BallView::ball`].
    pub center: usize,
    /// The induced subgraph on the ball (local indices).
    pub ball: Graph,
    /// Identifier of each ball member.
    pub ids: Vec<Ident>,
    /// Input of each ball member.
    pub inputs: Vec<usize>,
    /// Certificate bits of each ball member (cloned).
    pub certs: Vec<crate::bits::Certificate>,
    /// Distance from the center for each ball member.
    pub dist: Vec<usize>,
}

/// Builds the radius-`r` ball view of `v`.
pub fn ball_view(
    instance: &Instance<'_>,
    assignment: &Assignment,
    v: NodeId,
    r: usize,
) -> BallView {
    let g = instance.graph();
    // BFS to depth r.
    let mut dist_of: HashMap<usize, usize> = HashMap::new();
    dist_of.insert(v.0, 0);
    let mut frontier = vec![v];
    for d in 1..=r {
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in g.neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist_of.entry(w.0) {
                    e.insert(d);
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    let mut members: Vec<usize> = dist_of.keys().copied().collect();
    members.sort_unstable();
    let index_of: HashMap<usize, usize> =
        members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    let mut edges = Vec::new();
    for &m in &members {
        for &w in g.neighbors(NodeId(m)) {
            if m < w.0 {
                if let Some(&j) = index_of.get(&w.0) {
                    edges.push((index_of[&m], j));
                }
            }
        }
    }
    let ball = Graph::from_edges(members.len(), edges).expect("induced ball is simple");
    BallView {
        center: index_of[&v.0],
        ids: members
            .iter()
            .map(|&m| instance.ids().ident(NodeId(m)))
            .collect(),
        inputs: members.iter().map(|&m| instance.input(NodeId(m))).collect(),
        certs: members
            .iter()
            .map(|&m| assignment.cert(NodeId(m)).clone())
            .collect(),
        dist: members.iter().map(|&m| dist_of[&m]).collect(),
        ball,
    }
}

/// A verifier reading radius-`r` balls.
pub trait RadiusVerifier {
    /// The verification radius.
    fn radius(&self) -> usize;
    /// One vertex's decision.
    fn verify(&self, view: &BallView) -> bool;
}

/// Runs a radius verifier at every vertex; returns the rejecting ids.
pub fn run_radius_verification(
    verifier: &dyn RadiusVerifier,
    instance: &Instance<'_>,
    assignment: &Assignment,
) -> Vec<Ident> {
    instance
        .graph()
        .nodes()
        .filter(|&v| !verifier.verify(&ball_view(instance, assignment, v, verifier.radius())))
        .map(|v| instance.ids().ident(v))
        .collect()
}

/// Appendix A.1's example: "diameter ≤ 2" with **empty certificates** at
/// radius 3.
///
/// A graph has diameter ≤ 2 iff for every vertex `v` and every vertex `u`
/// at distance exactly 3 from… there is none: equivalently, no vertex
/// sees another vertex at distance 3 in its ball. Radius 3 suffices:
/// if some pair is at distance ≥ 3, the BFS ball of one endpoint contains
/// a vertex at recorded distance exactly 3 (or the pair's distance is ∞,
/// i.e. the graph is disconnected — excluded by the model's promise).
#[derive(Debug, Clone, Copy)]
pub struct DiameterTwoAtRadiusThree;

impl RadiusVerifier for DiameterTwoAtRadiusThree {
    fn radius(&self) -> usize {
        3
    }

    fn verify(&self, view: &BallView) -> bool {
        view.dist.iter().all(|&d| d <= 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::traversal;
    use locert_graph::{generators, IdAssignment};

    fn check(g: &Graph) -> bool {
        let ids = IdAssignment::contiguous(g.num_nodes());
        let inst = Instance::new(g, &ids);
        let asg = Assignment::empty(g.num_nodes());
        run_radius_verification(&DiameterTwoAtRadiusThree, &inst, &asg).is_empty()
    }

    #[test]
    fn diameter_two_decided_without_certificates() {
        assert!(check(&generators::star(8)));
        assert!(check(&generators::clique(5)));
        assert!(check(&generators::cycle(5)));
        assert!(!check(&generators::cycle(6)));
        assert!(!check(&generators::path(4)));
        assert!(check(&generators::path(3)));
    }

    #[test]
    fn agrees_with_bfs_diameter_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(120);
        for _ in 0..15 {
            let g = generators::random_connected(9, 5, &mut rng);
            assert_eq!(
                check(&g),
                traversal::diameter(&g).unwrap() <= 2,
                "graph {g:?}"
            );
        }
    }

    #[test]
    fn ball_views_expose_internal_edges() {
        // Unlike the radius-1 model, the ball contains the edges among
        // neighbors: on a triangle, the center's radius-1 ball is the
        // whole triangle with its 3 edges.
        let g = generators::cycle(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        let asg = Assignment::empty(3);
        let view = ball_view(&inst, &asg, NodeId(0), 1);
        assert_eq!(view.ball.num_nodes(), 3);
        assert_eq!(view.ball.num_edges(), 3);
        assert_eq!(view.dist[view.center], 0);
    }

    #[test]
    fn ball_radius_truncates() {
        let g = generators::path(7);
        let ids = IdAssignment::contiguous(7);
        let inst = Instance::new(&g, &ids);
        let asg = Assignment::empty(7);
        let view = ball_view(&inst, &asg, NodeId(0), 2);
        assert_eq!(view.ball.num_nodes(), 3);
        assert_eq!(view.dist.iter().copied().max(), Some(2));
    }
}
