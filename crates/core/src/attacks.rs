//! Soundness attack harness.
//!
//! A lower-bound-free way to *test* soundness: a scheme is sound when no
//! certificate assignment makes a no-instance accept. Universally
//! quantifying over assignments is only feasible exhaustively at tiny
//! sizes ([`exhaustive_soundness`]); at realistic sizes we attack with
//! adversarial provers ([`mutation_attacks`], [`random_assignments`]) —
//! these can only *falsify* soundness, never prove it, which is exactly
//! their role in the test suite.

use crate::bits::{BitWriter, Certificate};
use crate::framework::{run_verification, view_of, Assignment, Instance, Verifier};
use locert_graph::NodeId;
use rand::{Rng, RngExt};
use std::error::Error;
use std::fmt;

/// How an exhaustive soundness check can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoundnessError {
    /// A certificate assignment fooled every vertex on the no-instance —
    /// the scheme is unsound; the witness is attached.
    Fooled(Box<Assignment>),
    /// The assignment space exceeds the caller's budget; `space` is `None`
    /// when the count itself overflows `u64`.
    BudgetExceeded {
        /// Number of assignments the sweep would have to check.
        space: Option<u64>,
        /// The caller-supplied cap.
        budget: u64,
    },
}

impl fmt::Display for SoundnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoundnessError::Fooled(asg) => {
                write!(
                    f,
                    "soundness violated: fooling assignment of {} bits",
                    asg.max_bits()
                )
            }
            SoundnessError::BudgetExceeded { space, budget } => match space {
                Some(s) => write!(
                    f,
                    "exhaustive space of {s} assignments exceeds budget {budget}"
                ),
                None => write!(f, "exhaustive space overflows u64 (budget {budget})"),
            },
        }
    }
}

impl Error for SoundnessError {}

/// Exhaustively checks that **no** assignment with per-vertex certificates
/// of at most `max_bits` bits is accepted on `instance`, enumerating on
/// the global [`locert_par`] pool.
///
/// Returns `Ok(checked)` with the number of assignments tried (under the
/// canonical enumeration order — see [`exhaustive_soundness_in`]).
///
/// # Errors
///
/// [`SoundnessError::Fooled`] with the fooling assignment if soundness
/// fails, or [`SoundnessError::BudgetExceeded`] when the search space
/// `(2^{max_bits+1} - 1)^n` exceeds `budget` — a typed error instead of a
/// panic, so campaign drivers can skip oversized sweeps gracefully.
pub fn exhaustive_soundness(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    max_bits: usize,
    budget: u64,
) -> Result<u64, SoundnessError> {
    exhaustive_soundness_in(locert_par::global(), verifier, instance, max_bits, budget)
}

/// [`exhaustive_soundness`] on an explicit pool (tests pin worker counts
/// in-process with it).
///
/// Assignments are enumerated in a canonical order — certificates sorted
/// by (length, value), combined as a mixed-radix counter with vertex 0 as
/// the least-significant digit — and the early exit always reports the
/// **least** fooling assignment under that order, whatever the worker
/// count or steal schedule. `SoundnessError::Fooled` payloads, the
/// `checked` count, and the `core.attacks.exhaustive.assignments` counter
/// are therefore byte-identical to a sequential sweep.
///
/// Candidate checks are journal-silent (no per-candidate `Verdict`
/// events) and uncounted; the single deterministic counter above is the
/// sweep's trace footprint.
///
/// # Errors
///
/// As [`exhaustive_soundness`].
pub fn exhaustive_soundness_in(
    pool: &locert_par::Pool,
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    max_bits: usize,
    budget: u64,
) -> Result<u64, SoundnessError> {
    let _span = locert_trace::span!("core.attacks.exhaustive");
    let n = instance.graph().num_nodes();
    // All bit strings of length 0..=max_bits, sorted by (length, value).
    let mut space: Vec<Certificate> = Vec::new();
    for len in 0..=max_bits {
        for value in 0..(1u64 << len) {
            let mut w = BitWriter::new();
            w.write(value, len as u32);
            space.push(w.finish());
        }
    }
    let m = space.len();
    let total = (m as u64).checked_pow(n as u32);
    if total.is_none_or(|t| t > budget) {
        return Err(SoundnessError::BudgetExceeded {
            space: total,
            budget,
        });
    }
    let total = total.expect("guarded above");
    // Decodes enumeration index -> assignment (vertex v reads digit v).
    let assignment_at = |mut idx: usize| -> Assignment {
        let mut certs = Vec::with_capacity(n);
        for _ in 0..n {
            certs.push(space[idx % m].clone());
            idx /= m;
        }
        Assignment::from_unpacked(certs)
    };
    // One candidate: journal-silent accept-all probe (short-circuits on
    // the first rejecting vertex).
    let fooled = |idx: usize| -> Option<Assignment> {
        let asg = assignment_at(idx);
        instance
            .graph()
            .nodes()
            .all(|v| verifier.verify(&view_of(instance, &asg, v)))
            .then_some(asg)
    };
    // Small chunks keep the least-index pruning responsive: a fooling
    // certificate found early cancels most of the remaining space.
    let chunk = (total as usize / (pool.threads() * 16)).clamp(1, 64);
    let found = pool.par_find_first(total as usize, chunk, fooled);
    let checked = found.as_ref().map_or(total, |(idx, _)| *idx as u64 + 1);
    if locert_trace::enabled() {
        locert_trace::add("core.attacks.exhaustive.assignments", checked);
    }
    match found {
        Some((_, asg)) => Err(SoundnessError::Fooled(Box::new(asg))),
        None => Ok(checked),
    }
}

/// Mutation attacks on a no-instance, seeded from a base assignment
/// (typically an honest assignment for a *related yes-instance*, replayed
/// here): per-vertex bit flips, pairwise certificate swaps, and
/// truncations. Returns `None` if every attack was rejected, or the
/// fooling assignment.
pub fn mutation_attacks(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    base: &Assignment,
    rng: &mut impl Rng,
    rounds: usize,
) -> Option<Assignment> {
    let n = instance.graph().num_nodes();
    // The base itself.
    if run_verification(verifier, instance, base).accepted() {
        return Some(base.clone());
    }
    for _ in 0..rounds {
        let mut asg = base.clone();
        match rng.random_range(0..3u32) {
            0 => {
                // Flip a random bit of a random non-empty certificate.
                let v = NodeId(rng.random_range(0..n));
                let c = asg.cert(v).clone();
                if c.len_bits() > 0 {
                    let bit = rng.random_range(0..c.len_bits());
                    *asg.cert_mut(v) = c.with_bit_flipped(bit);
                }
            }
            1 => {
                // Swap two vertices' certificates.
                let a = NodeId(rng.random_range(0..n));
                let b = NodeId(rng.random_range(0..n));
                let ca = asg.cert(a).clone();
                let cb = asg.cert(b).clone();
                *asg.cert_mut(a) = cb;
                *asg.cert_mut(b) = ca;
            }
            _ => {
                // Blank one certificate.
                let v = NodeId(rng.random_range(0..n));
                *asg.cert_mut(v) = Certificate::empty();
            }
        }
        if run_verification(verifier, instance, &asg).accepted() {
            return Some(asg);
        }
    }
    None
}

/// Random-assignment attack: uniformly random certificates of exactly
/// `bits` bits at every vertex, `rounds` times. Returns a fooling
/// assignment if found.
pub fn random_assignments(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    bits: usize,
    rng: &mut impl Rng,
    rounds: usize,
) -> Option<Assignment> {
    let n = instance.graph().num_nodes();
    for _ in 0..rounds {
        let certs = (0..n)
            .map(|_| {
                let mut w = BitWriter::new();
                for _ in 0..bits {
                    w.write_bit(rng.random_bool(0.5));
                }
                w.finish()
            })
            .collect();
        let asg = Assignment::from_unpacked(certs);
        if run_verification(verifier, instance, &asg).accepted() {
            return Some(asg);
        }
    }
    None
}

/// The bundled adversarial battery the differential oracle runs on every
/// no-instance: the all-empty assignment first (catches accept-everything
/// verifiers for free), then [`mutation_attacks`] off `base` when one is
/// available, then [`random_assignments`] at a few widths. Returns the
/// first fooling assignment found, or `None` when every attack was
/// rejected.
///
/// Like the individual attacks this can only *falsify* soundness; a
/// `None` is evidence, not proof.
pub fn attack_battery(
    verifier: &dyn Verifier,
    instance: &Instance<'_>,
    base: Option<&Assignment>,
    rng: &mut impl Rng,
    rounds: usize,
) -> Option<Assignment> {
    let _span = locert_trace::span!("core.attacks.battery");
    let n = instance.graph().num_nodes();
    let empty = Assignment::empty(n);
    if run_verification(verifier, instance, &empty).accepted() {
        return Some(empty);
    }
    if let Some(base) = base {
        if let Some(asg) = mutation_attacks(verifier, instance, base, rng, rounds) {
            return Some(asg);
        }
    }
    for bits in [1usize, 4, 16] {
        if let Some(asg) = random_assignments(verifier, instance, bits, rng, rounds) {
            return Some(asg);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{LocalView, RejectReason};
    use locert_graph::{generators, IdAssignment};
    use locert_par::Pool;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A verifier for "the graph is a triangle-free cycle"… simplified:
    /// accepts iff every vertex has degree 2 and its certificate equals
    /// the constant 0b1.
    struct TokenVerifier;

    impl Verifier for TokenVerifier {
        fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
            if view.degree() == 2 && view.cert.len_bits() == 1 && view.cert.bit(0) {
                Ok(())
            } else {
                Err(RejectReason::PropertyViolation)
            }
        }
    }

    #[test]
    fn exhaustive_finds_fooling_assignment_when_one_exists() {
        // On a cycle, the all-0b1 assignment fools TokenVerifier — the
        // harness must find it.
        let g = generators::cycle(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        let res = exhaustive_soundness(&TokenVerifier, &inst, 1, 1_000_000);
        assert!(res.is_err());
    }

    #[test]
    fn exhaustive_confirms_rejection_on_wrong_shape() {
        // On a path, degree-1 endpoints always reject: no assignment
        // works.
        let g = generators::path(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        let res = exhaustive_soundness(&TokenVerifier, &inst, 2, 1_000_000);
        let checked = res.expect("no fooling assignment exists");
        // (2^3 - 1) strings of length <= 2 per vertex... space = 1+2+4 = 7.
        assert_eq!(checked, 7u64.pow(3));
    }

    #[test]
    fn exhaustive_budget_guard_is_typed() {
        let g = generators::cycle(8);
        let ids = IdAssignment::contiguous(8);
        let inst = Instance::new(&g, &ids);
        let res = exhaustive_soundness(&TokenVerifier, &inst, 8, 1000);
        match res {
            Err(SoundnessError::BudgetExceeded { space, budget }) => {
                assert_eq!(budget, 1000);
                assert!(space.is_none_or(|s| s > 1000));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // A space too large even to count overflows into `space: None`.
        let g2 = generators::cycle(64);
        let ids2 = IdAssignment::contiguous(64);
        let inst2 = Instance::new(&g2, &ids2);
        match exhaustive_soundness(&TokenVerifier, &inst2, 8, u64::MAX) {
            Err(SoundnessError::BudgetExceeded { space: None, .. }) => {}
            other => panic!("expected overflowing BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn fooling_assignment_is_typed() {
        let g = generators::cycle(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        match exhaustive_soundness(&TokenVerifier, &inst, 1, 1_000_000) {
            Err(SoundnessError::Fooled(asg)) => assert_eq!(asg.max_bits(), 1),
            other => panic!("expected Fooled, got {other:?}"),
        }
    }

    /// Accepts iff degree 2 and the certificate *starts* with a 1-bit —
    /// deliberately sloppy, so many certificates ("1", "10", "11", …)
    /// fool it on a cycle and the early exit has real choices to make.
    struct PrefixTokenVerifier;

    impl Verifier for PrefixTokenVerifier {
        fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
            if view.degree() == 2 && view.cert.len_bits() >= 1 && view.cert.bit(0) {
                Ok(())
            } else {
                Err(RejectReason::PropertyViolation)
            }
        }
    }

    #[test]
    fn exhaustive_early_exit_reports_least_witness_at_any_thread_count() {
        let g = generators::cycle(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        // Sanity: the sloppy verifier has at least two distinct fooling
        // assignments in the max_bits = 2 space.
        let count_fooling = || {
            let mut space = Vec::new();
            for len in 0..=2usize {
                for value in 0..(1u64 << len) {
                    let mut w = BitWriter::new();
                    w.write(value, len as u32);
                    space.push(w.finish());
                }
            }
            let mut fooling = Vec::new();
            let m = space.len();
            for idx in 0..m * m * m {
                let certs = vec![
                    space[idx % m].clone(),
                    space[(idx / m) % m].clone(),
                    space[(idx / m / m) % m].clone(),
                ];
                let asg = Assignment::new(certs);
                if run_verification(&PrefixTokenVerifier, &inst, &asg).accepted() {
                    fooling.push(idx);
                }
            }
            fooling
        };
        let fooling = count_fooling();
        assert!(
            fooling.len() >= 2,
            "test premise: multiple fooling assignments, got {fooling:?}"
        );
        // The sequential pool is the reference semantics.
        let sequential = Pool::new(1);
        let reference =
            match exhaustive_soundness_in(&sequential, &PrefixTokenVerifier, &inst, 2, 1_000_000) {
                Err(SoundnessError::Fooled(asg)) => *asg,
                other => panic!("expected Fooled, got {other:?}"),
            };
        // The reference is the least fooling index's assignment.
        let least = fooling[0];
        let expected_certs: Vec<Certificate> =
            (0..3).map(|v| reference.cert(NodeId(v)).clone()).collect();
        {
            let mut space = Vec::new();
            for len in 0..=2usize {
                for value in 0..(1u64 << len) {
                    let mut w = BitWriter::new();
                    w.write(value, len as u32);
                    space.push(w.finish());
                }
            }
            let m = space.len();
            let least_certs: Vec<Certificate> = vec![
                space[least % m].clone(),
                space[(least / m) % m].clone(),
                space[(least / m / m) % m].clone(),
            ];
            assert_eq!(expected_certs, least_certs, "least witness mismatch");
        }
        // Parallel pools must report the exact same witness, every time.
        let parallel = Pool::new(4);
        for round in 0..10 {
            match exhaustive_soundness_in(&parallel, &PrefixTokenVerifier, &inst, 2, 1_000_000) {
                Err(SoundnessError::Fooled(asg)) => {
                    for v in 0..3 {
                        assert_eq!(
                            asg.cert(NodeId(v)),
                            reference.cert(NodeId(v)),
                            "witness diverged at vertex {v}, round {round}"
                        );
                    }
                }
                other => panic!("expected Fooled, got {other:?}"),
            }
        }
    }

    #[test]
    fn exhaustive_checked_count_matches_sequential_at_any_thread_count() {
        // No fooling assignment exists on a path (degree-1 endpoints):
        // the count is the full space at every width.
        let g = generators::path(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let checked = exhaustive_soundness_in(&pool, &TokenVerifier, &inst, 2, 1_000_000)
                .expect("no fooling assignment exists");
            assert_eq!(checked, 7u64.pow(3), "threads = {threads}");
        }
    }

    #[test]
    fn mutation_attacks_rejected_on_path() {
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let mut w = BitWriter::new();
        w.write_bit(true);
        let base = Assignment::new(vec![w.finish(); 4]);
        let mut rng = StdRng::seed_from_u64(61);
        assert!(mutation_attacks(&TokenVerifier, &inst, &base, &mut rng, 200).is_none());
    }

    /// Accepts every view — the battery's empty-assignment probe alone
    /// must catch it.
    struct AcceptAllVerifier;

    impl Verifier for AcceptAllVerifier {
        fn decide(&self, _view: &LocalView<'_>) -> Result<(), RejectReason> {
            Ok(())
        }
    }

    #[test]
    fn battery_catches_accept_all_and_clears_sound_verifier() {
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let mut rng = StdRng::seed_from_u64(63);
        let fooled = attack_battery(&AcceptAllVerifier, &inst, None, &mut rng, 10)
            .expect("accept-all verifier must be fooled");
        assert_eq!(fooled.max_bits(), 0, "the empty assignment suffices");
        // TokenVerifier on a path is unfoolable (degree-1 endpoints).
        assert!(attack_battery(&TokenVerifier, &inst, None, &mut rng, 50).is_none());
    }

    #[test]
    fn random_attack_finds_hole_in_weak_verifier() {
        // TokenVerifier on a cycle is fooled by the right random draw.
        let g = generators::cycle(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let mut rng = StdRng::seed_from_u64(62);
        let found = random_assignments(&TokenVerifier, &inst, 1, &mut rng, 500);
        assert!(found.is_some());
    }
}
