//! Treedepth certification with `O(t log n)` bits (Theorem 2.4, Section 5).
//!
//! The certificate of a vertex `u` at depth `m` of a coherent elimination
//! tree consists of
//!
//! 1. the identifiers of its ancestors, from `u` itself up to the root
//!    (`m + 1` identifiers);
//! 2. for each strict ancestor `v = α_j` at depth `j ≥ 1`, a spanning-tree
//!    entry `(exit id, distance)` for the spanning tree of `G_v` (the
//!    subgraph induced by `v`'s subtree) rooted at the *exit vertex* of
//!    `v` — a vertex of `G_v` adjacent to `v`'s parent.
//!
//! Verification (the paper's steps 1–4):
//!
//! - the list has length ≤ `t` and starts with the vertex's own id;
//! - every neighbor's list is a suffix of mine or vice versa (edges join
//!   comparable vertices);
//! - for each `j`: if my distance in tree `j` is 0 I am the exit vertex
//!   (my id equals the exit id) and I must be adjacent to a vertex whose
//!   full list is my list truncated to its last `j` entries — the
//!   *parent* of `α_j`, which pins coherence; otherwise some neighbor
//!   with the same `(j+1)`-suffix carries the same exit id at distance
//!   one less.
//!
//! Soundness (paper's Claim 1): the spanning-tree chains force, for every
//! vertex with a list of length ≥ 2, the existence of a vertex carrying
//! the list minus its first element; following these pointers yields a
//! genuine elimination forest of height ≤ `t` in which every edge joins
//! comparable vertices.

use crate::bits::{width_for, BitReader, BitWriter, Certificate};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::common::{read_ident, write_ident};
use locert_graph::{Ident, NodeId};
use locert_treedepth::{exact, heuristic, EliminationTree};

/// How the prover obtains an elimination tree of height ≤ `t`.
#[derive(Debug, Clone, Default)]
pub enum ModelStrategy {
    /// Exact solver for small graphs, separator heuristic beyond
    /// (heuristic failures surface as
    /// [`ProverError::WitnessUnavailable`]).
    #[default]
    Auto,
    /// Always the DFS elimination tree (used by `P_t`-minor-freeness,
    /// where the DFS depth bound is guaranteed).
    Dfs,
    /// An explicit witness parent array (e.g. from the workload
    /// generator).
    Explicit(Vec<Option<usize>>),
}

/// One vertex's parsed treedepth certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdCert {
    /// Ancestor identifiers from the vertex itself (index 0) to the root
    /// (last).
    pub ancestors: Vec<Ident>,
    /// `(exit id, distance)` per strict ancestor, indexed by ancestor
    /// depth − 1 (entry 0 belongs to the depth-1 ancestor).
    pub trees: Vec<(Ident, u64)>,
}

impl TdCert {
    /// The vertex's depth `m` (list length − 1).
    pub fn depth(&self) -> usize {
        self.ancestors.len() - 1
    }

    /// The suffix of the ancestor list from the depth-`j` ancestor to the
    /// root (length `j + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `j > self.depth()`.
    pub fn suffix_from_depth(&self, j: usize) -> &[Ident] {
        let m = self.depth();
        &self.ancestors[m - j..]
    }

    /// Serializes the certificate, marking the ledger components
    /// (`list-len`, `ancestor-ids`, `exit-id`, `exit-distance`).
    pub fn write(&self, w: &mut BitWriter, id_bits: u32, t: usize) {
        let len_bits = width_for(t as u64);
        w.component("list-len");
        w.write(self.ancestors.len() as u64, len_bits);
        w.component("ancestor-ids");
        for &id in &self.ancestors {
            write_ident(w, id, id_bits);
        }
        for &(exit, dist) in &self.trees {
            w.component("exit-id");
            write_ident(w, exit, id_bits);
            w.component("exit-distance");
            w.write(dist, id_bits);
        }
    }

    /// Parses a certificate written by [`TdCert::write`]. Enforces
    /// `1 ≤ list length ≤ t`.
    pub fn read(r: &mut BitReader<'_>, id_bits: u32, t: usize) -> Option<TdCert> {
        let len_bits = width_for(t as u64);
        let len = r.read(len_bits)? as usize;
        if len == 0 || len > t {
            return None;
        }
        let mut ancestors = Vec::with_capacity(len);
        for _ in 0..len {
            ancestors.push(read_ident(r, id_bits)?);
        }
        let mut trees = Vec::with_capacity(len - 1);
        for _ in 0..len - 1 {
            let exit = read_ident(r, id_bits)?;
            let dist = r.read(id_bits)?;
            trees.push((exit, dist));
        }
        Some(TdCert { ancestors, trees })
    }
}

/// Computes the honest per-vertex treedepth certificates from a coherent
/// model.
///
/// # Panics
///
/// Panics if the model is not coherent (the prover must repair first).
pub fn honest_td_certs(instance: &Instance<'_>, model: &EliminationTree) -> Vec<TdCert> {
    let g = instance.graph();
    let ids = instance.ids();
    let tree = model.tree();
    let n = g.num_nodes();
    let mut certs: Vec<TdCert> = (0..n)
        .map(|v| TdCert {
            ancestors: tree
                .ancestors(NodeId(v))
                .iter()
                .map(|&a| ids.ident(a))
                .collect(),
            trees: Vec::new(),
        })
        .collect();
    // For every non-root vertex v: a spanning tree of G_v rooted at the
    // exit vertex, recorded at each member of G_v at tree index
    // depth(v) − 1. Membership marks are epoch-stamped so the scratch
    // arrays are allocated once, not per subtree.
    let mut in_sub = vec![0u64; n];
    let mut epoch = 0u64;
    let mut dist = vec![u64::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for v in g.nodes() {
        let Some(parent) = tree.parent(v) else {
            continue;
        };
        let members = tree.subtree(v);
        let exit = members
            .iter()
            .copied()
            .find(|&x| g.has_edge(x, parent))
            .expect("coherent model has an exit vertex per subtree");
        // BFS within G_v from the exit.
        epoch += 1;
        for &x in &members {
            in_sub[x.0] = epoch;
            dist[x.0] = u64::MAX;
        }
        dist[exit.0] = 0;
        queue.clear();
        queue.push_back(exit);
        while let Some(x) = queue.pop_front() {
            for &y in g.neighbors(x) {
                if in_sub[y.0] == epoch && dist[y.0] == u64::MAX {
                    dist[y.0] = dist[x.0] + 1;
                    queue.push_back(y);
                }
            }
        }
        let j = model.depth(v); // ancestor depth of v; tree index j − 1.
        let exit_id = ids.ident(exit);
        for &x in &members {
            debug_assert_ne!(dist[x.0], u64::MAX, "coherent subtree is connected");
            let slot = j - 1;
            let c = &mut certs[x.0];
            if c.trees.len() <= slot {
                c.trees.resize(slot + 1, (Ident(0), 0));
            }
            c.trees[slot] = (exit_id, dist[x.0]);
        }
    }
    // Sanity: every vertex has exactly depth(v) tree entries.
    for v in g.nodes() {
        debug_assert_eq!(certs[v.0].trees.len(), model.depth(v));
    }
    certs
}

/// Verifies one vertex's treedepth certificate with a caller-supplied
/// extractor for neighbor certificates. Returns the parsed certificate on
/// success so composite schemes can pile on checks.
///
/// # Errors
///
/// [`RejectReason::MalformedCertificate`] /
/// [`RejectReason::MalformedNeighborCertificate`] when a certificate
/// fails to parse, [`RejectReason::AncestryViolation`] when ancestor
/// lists are too long, mis-headed, incomparable across an edge, or a
/// subtree spanning tree is broken, and
/// [`RejectReason::MissingNeighbor`] when an exit vertex cannot see its
/// subtree's parent.
pub fn verify_td_cert(
    view: &LocalView<'_>,
    t: usize,
    extract: &impl Fn(&Certificate) -> Option<TdCert>,
) -> Result<TdCert, RejectReason> {
    let mine = extract(view.cert).ok_or(RejectReason::MalformedCertificate)?;
    check_own_td(view.id, &mine, t)?;
    // Parse neighbors once.
    let mut nbrs = Vec::with_capacity(view.neighbors.len());
    for &(_, _, cert) in &view.neighbors {
        nbrs.push(extract(cert).ok_or(RejectReason::MalformedNeighborCertificate)?);
    }
    let refs: Vec<&TdCert> = nbrs.iter().collect();
    check_td_edges(view.id, &mine, &refs)?;
    Ok(mine)
}

/// The vertex-local part of [`verify_td_cert`] on an already-parsed
/// certificate: ancestor-list length and head, tree-entry count.
/// Composite schemes that embed a [`TdCert`] inside a larger certificate
/// call this (and [`check_td_edges`]) directly to avoid re-parsing.
///
/// # Errors
///
/// As the corresponding checks of [`verify_td_cert`].
pub fn check_own_td(id: Ident, mine: &TdCert, t: usize) -> Result<(), RejectReason> {
    if mine.ancestors.len() > t || mine.ancestors[0] != id {
        return Err(RejectReason::AncestryViolation);
    }
    if mine.trees.len() != mine.depth() {
        return Err(RejectReason::MalformedCertificate);
    }
    Ok(())
}

/// The edge part of [`verify_td_cert`] on already-parsed certificates:
/// cross-edge comparability and the per-ancestor spanning-tree chains.
///
/// # Errors
///
/// As the corresponding checks of [`verify_td_cert`].
pub fn check_td_edges(id: Ident, mine: &TdCert, nbrs: &[&TdCert]) -> Result<(), RejectReason> {
    let m = mine.depth();
    // Every edge joins comparable vertices: one list is a suffix of the
    // other.
    for nc in nbrs {
        let (short, long) = if nc.ancestors.len() <= mine.ancestors.len() {
            (&nc.ancestors, &mine.ancestors)
        } else {
            (&mine.ancestors, &nc.ancestors)
        };
        if &long[long.len() - short.len()..] != short.as_slice() {
            return Err(RejectReason::AncestryViolation);
        }
    }
    // Spanning-tree checks per strict ancestor.
    for j in 1..=m {
        let (exit, dist) = mine.trees[j - 1];
        let my_suffix = mine.suffix_from_depth(j);
        if dist == 0 {
            // I am the exit vertex of α_j: adjacent to α_j's parent,
            // whose full list is my suffix of length j.
            if id != exit {
                return Err(RejectReason::AncestryViolation);
            }
            let parent_list = &mine.ancestors[mine.ancestors.len() - j..];
            if !nbrs.iter().any(|nc| nc.ancestors.as_slice() == parent_list) {
                return Err(RejectReason::MissingNeighbor);
            }
        } else {
            // Some neighbor in the same subtree carries the same exit at
            // distance one less.
            let found = nbrs.iter().any(|nc| {
                nc.depth() >= j
                    && nc.suffix_from_depth(j) == my_suffix
                    && nc.trees[j - 1] == (exit, dist - 1)
            });
            if !found {
                return Err(RejectReason::AncestryViolation);
            }
        }
    }
    Ok(())
}

/// Certifies "the graph has treedepth at most `t`" (vertex-count
/// convention).
#[derive(Debug, Clone)]
pub struct TreedepthScheme {
    id_bits: u32,
    t: usize,
    strategy: ModelStrategy,
}

impl TreedepthScheme {
    /// A scheme for bound `t` with identifier fields of `id_bits` bits
    /// and the default (auto) prover strategy.
    pub fn new(id_bits: u32, t: usize) -> Self {
        TreedepthScheme {
            id_bits,
            t,
            strategy: ModelStrategy::Auto,
        }
    }

    /// Overrides the prover's model strategy.
    pub fn with_strategy(mut self, strategy: ModelStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The treedepth bound `t`.
    pub fn bound(&self) -> usize {
        self.t
    }

    fn parse(&self, cert: &Certificate) -> Option<TdCert> {
        let mut r = BitReader::new(cert);
        let c = TdCert::read(&mut r, self.id_bits, self.t)?;
        r.exhausted().then_some(c)
    }
}

/// Branch-expansion budget for the exact solver on the Auto path. Far
/// above anything the ≤ [`exact::EXACT_LIMIT`]-vertex instances of this
/// workspace need, so it only trips on a runaway search, which surfaces
/// as a typed [`ProverError`] instead of an unbounded hang.
const EXACT_BRANCH_BUDGET: u64 = 1 << 28;

/// Finds a coherent model of height ≤ `t` per `strategy` (shared with
/// [`crate::schemes::kernel_mso`]).
pub fn model_for(
    instance: &Instance<'_>,
    t: usize,
    strategy: &ModelStrategy,
) -> Result<EliminationTree, ProverError> {
    let g = instance.graph();
    // Treedepth and elimination trees are defined on non-empty connected
    // graphs (the paper's standing convention); the solvers assert this,
    // so refuse with a typed error before dispatching to them.
    if g.num_nodes() == 0 || !g.is_connected() {
        return Err(ProverError::WitnessUnavailable(
            "instance is empty or disconnected (connected-graph promise)".into(),
        ));
    }
    let model = match strategy {
        ModelStrategy::Explicit(parents) => EliminationTree::new(g, parents)
            .map_err(|e| ProverError::WitnessUnavailable(e.to_string()))?,
        ModelStrategy::Dfs => heuristic::dfs_elimination_tree(g),
        ModelStrategy::Auto => {
            if g.num_nodes() <= exact::EXACT_LIMIT {
                exact::optimal_elimination_tree_within(g, EXACT_BRANCH_BUDGET)
                    .map_err(|e| ProverError::WitnessUnavailable(e.to_string()))?
            } else {
                heuristic::separator_elimination_tree(g)
            }
        }
    };
    if model.height() > t {
        // With the exact solver this is a definite no; otherwise the
        // heuristic may simply have failed.
        return Err(
            if matches!(strategy, ModelStrategy::Auto) && g.num_nodes() <= exact::EXACT_LIMIT {
                ProverError::NotAYesInstance
            } else if matches!(strategy, ModelStrategy::Dfs) {
                // DFS depth witnesses a long path, used by minor-freeness
                // where this is a definite no as well; generic treedepth
                // callers should prefer Auto/Explicit.
                ProverError::NotAYesInstance
            } else {
                ProverError::WitnessUnavailable(format!(
                    "model of height {} exceeds bound {t}",
                    model.height()
                ))
            },
        );
    }
    Ok(model.make_coherent(g))
}

impl Prover for TreedepthScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.treedepth.prover");
        let model = model_for(instance, self.t, &self.strategy)?;
        let certs = honest_td_certs(instance, &model)
            .iter()
            .enumerate()
            .map(|(v, c)| {
                let mut w = BitWriter::new();
                c.write(&mut w, self.id_bits, self.t);
                w.finish_for(v)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl Verifier for TreedepthScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        verify_td_cert(view, self.t, &|c| self.parse(c)).map(|_| ())
    }
}

impl Scheme for TreedepthScheme {
    fn name(&self) -> String {
        format!("treedepth<= {}", self.t)
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Theorem 2.4: O(t log n) — t ancestor ids plus t spanning-tree
        // entries of identifier width.
        DeclaredBound::PolyTdLogN { td: self.t as u32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::{run_scheme, run_verification};
    use crate::schemes::common::id_bits_for;
    use locert_graph::{generators, Graph, IdAssignment};
    use locert_treedepth::bounds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn completeness_on_paths() {
        // td(P_n) = ⌈log2(n+1)⌉.
        for n in [1usize, 3, 7, 15, 31] {
            let g = generators::path(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let t = bounds::treedepth_of_path(n);
            let scheme = TreedepthScheme::new(id_bits_for(&inst), t);
            let out = run_scheme(&scheme, &inst).unwrap();
            assert!(out.accepted(), "P_{n} at t = {t}");
            // O(t log n): list ≤ t ids + (t−1) tree entries of 2 ids.
            let l = id_bits_for(&inst) as usize;
            assert!(out.max_bits() <= 8 + t * l + (t - 1) * 2 * l);
        }
    }

    #[test]
    fn prover_exact_refusal_below_true_treedepth() {
        let g = generators::path(15); // td = 4.
        let ids = IdAssignment::contiguous(15);
        let inst = Instance::new(&g, &ids);
        let scheme = TreedepthScheme::new(id_bits_for(&inst), 3);
        assert_eq!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn explicit_witness_strategy() {
        let mut rng = StdRng::seed_from_u64(141);
        let (g, parents) = generators::random_bounded_treedepth(40, 4, 0.5, &mut rng);
        let ids = IdAssignment::shuffled(40, &mut rng);
        let inst = Instance::new(&g, &ids);
        let scheme = TreedepthScheme::new(id_bits_for(&inst), 4)
            .with_strategy(ModelStrategy::Explicit(parents));
        let out = run_scheme(&scheme, &inst).unwrap();
        assert!(out.accepted());
    }

    #[test]
    fn larger_instances_via_heuristics() {
        let mut rng = StdRng::seed_from_u64(142);
        let (g, parents) = generators::random_bounded_treedepth(200, 5, 0.4, &mut rng);
        let ids = IdAssignment::shuffled(200, &mut rng);
        let inst = Instance::new(&g, &ids);
        // Explicit witness always works.
        let scheme = TreedepthScheme::new(id_bits_for(&inst), 5)
            .with_strategy(ModelStrategy::Explicit(parents));
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
    }

    #[test]
    fn cliques_at_their_treedepth() {
        for n in 2..=5 {
            let g = generators::clique(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            assert!(
                run_scheme(&TreedepthScheme::new(id_bits_for(&inst), n), &inst)
                    .unwrap()
                    .accepted()
            );
            assert_eq!(
                run_scheme(&TreedepthScheme::new(id_bits_for(&inst), n - 1), &inst).unwrap_err(),
                ProverError::NotAYesInstance
            );
        }
    }

    #[test]
    fn forged_list_rejected() {
        let g = generators::path(7);
        let ids = IdAssignment::contiguous(7);
        let inst = Instance::new(&g, &ids);
        let scheme = TreedepthScheme::new(id_bits_for(&inst), 3);
        let mut asg = scheme.assign(&inst).unwrap();
        // Corrupt a middle vertex's first ancestor id.
        let c = asg.cert(NodeId(3)).clone();
        let len_bits = width_for(3) as usize;
        *asg.cert_mut(NodeId(3)) = c.with_bit_flipped(len_bits + 1);
        assert!(!run_verification(&scheme, &inst, &asg).accepted());
    }

    #[test]
    fn replayed_certificates_under_tighter_bound_rejected() {
        // Certificates valid for t = 4 cannot pass the t = 3 verifier on
        // P_15 (lists of length 4 exceed the bound).
        let g = generators::path(15);
        let ids = IdAssignment::contiguous(15);
        let inst = Instance::new(&g, &ids);
        let loose = TreedepthScheme::new(id_bits_for(&inst), 4);
        let base = loose.assign(&inst).unwrap();
        let tight = TreedepthScheme::new(id_bits_for(&inst), 3);
        assert!(!run_verification(&tight, &inst, &base).accepted());
        let mut rng = StdRng::seed_from_u64(143);
        assert!(attacks::mutation_attacks(&tight, &inst, &base, &mut rng, 500).is_none());
    }

    #[test]
    fn random_attacks_rejected() {
        let g = generators::path(15); // td 4.
        let ids = IdAssignment::contiguous(15);
        let inst = Instance::new(&g, &ids);
        let scheme = TreedepthScheme::new(id_bits_for(&inst), 3);
        let mut rng = StdRng::seed_from_u64(144);
        assert!(attacks::random_assignments(&scheme, &inst, 40, &mut rng, 400).is_none());
    }

    #[test]
    fn exhaustive_soundness_p2_at_t1() {
        // P_2 has treedepth 2; at t = 1 every certificate is a
        // single-entry list, forcing two adjacent "roots" — impossible.
        // Exhaust every assignment with up to 6-bit certificates.
        let g = generators::path(2);
        let ids = IdAssignment::contiguous(2);
        let inst = Instance::new(&g, &ids);
        let scheme = TreedepthScheme::new(2, 1);
        let res = attacks::exhaustive_soundness(&scheme, &inst, 6, 1_000_000);
        assert!(res.is_ok(), "fooling assignment found: {res:?}");
    }

    #[test]
    fn coherence_enforced_by_exit_checks() {
        // Hand-build certificates from an *incoherent* model of P_4:
        // chain 1 -> 0 -> 2 -> 3 (vertex indices), where vertex 2's
        // subtree has no vertex adjacent to its parent 0 — the honest
        // prover would repair this; hand-written certificates for it must
        // be rejected. We simulate by taking the honest prover on the
        // coherent repair and verifying it differs, then forging the
        // incoherent lists directly.
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let t = 4;
        let scheme = TreedepthScheme::new(id_bits_for(&inst), t);
        // Incoherent lists: 1 root; 0 child of 1; 2 child of 0; 3 child of 2.
        // Vertex 2's subtree {2, 3} has no neighbor of 0 — exit vertex
        // check at depth-2 trees must fail for any dist labels we try.
        let id = |v: usize| ids.ident(NodeId(v));
        let lists: Vec<Vec<Ident>> = vec![
            vec![id(0), id(1)],
            vec![id(1)],
            vec![id(2), id(0), id(1)],
            vec![id(3), id(2), id(0), id(1)],
        ];
        // Try all small dist labelings for the forged trees.
        let mut fooled = false;
        for d2 in 0..2u64 {
            for d3 in 0..3u64 {
                let certs: Vec<Certificate> = (0..4)
                    .map(|v| {
                        let mut trees = Vec::new();
                        match v {
                            0 => trees.push((id(0), 0)), // G_0 = {0,2,3}? exit claims.
                            2 => {
                                trees.push((id(2), d2)); // in G_0's tree.
                                trees.push((id(2), 0)); // exit of G_2.
                            }
                            3 => {
                                trees.push((id(3), d2 + 1));
                                trees.push((id(3), d3));
                                trees.push((id(3), 0));
                            }
                            _ => {}
                        }
                        let c = TdCert {
                            ancestors: lists[v].clone(),
                            trees,
                        };
                        let mut w = BitWriter::new();
                        c.write(&mut w, id_bits_for(&inst), t);
                        w.finish()
                    })
                    .collect();
                if run_verification(&scheme, &inst, &Assignment::new(certs)).accepted() {
                    fooled = true;
                }
            }
        }
        assert!(!fooled, "incoherent forged model was accepted");
    }

    #[test]
    fn auto_strategy_heuristic_on_large_paths() {
        // Beyond the exact-solver limit the Auto strategy falls back to
        // the separator heuristic, which is optimal on paths.
        let n = 1023; // td = 10.
        let g = generators::path(n);
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let scheme = TreedepthScheme::new(id_bits_for(&inst), 10);
        let out = run_scheme(&scheme, &inst).unwrap();
        assert!(out.accepted());
        // Below the true treedepth the heuristic cannot find a model and
        // honestly reports WitnessUnavailable (not a soundness claim).
        let tight = TreedepthScheme::new(id_bits_for(&inst), 9);
        assert!(matches!(
            run_scheme(&tight, &inst).unwrap_err(),
            ProverError::WitnessUnavailable(_)
        ));
    }

    #[test]
    fn adversarial_handcrafted_certificates() {
        // Target P_4 at t = 3 (true treedepth 3) and attack specific
        // fields of the certificate structure.
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let t = 3;
        let b = id_bits_for(&inst);
        let scheme = TreedepthScheme::new(b, t);
        let honest = scheme.assign(&inst).unwrap();
        assert!(run_verification(&scheme, &inst, &honest).accepted());
        let id = |v: usize| ids.ident(NodeId(v));

        let write = |c: &TdCert| {
            let mut w = BitWriter::new();
            c.write(&mut w, b, t);
            w.finish()
        };

        // (a) A list that does not start with the vertex's own id.
        let mut bad = honest.clone();
        let parsed = scheme.parse(honest.cert(NodeId(2))).unwrap();
        let mut forged = parsed.clone();
        forged.ancestors[0] = id(3);
        *bad.cert_mut(NodeId(2)) = write(&forged);
        assert!(!run_verification(&scheme, &inst, &bad).accepted());

        // (b) Suffix-incomparable neighbor lists: vertex 1 claims root A,
        // vertex 2 claims a disjoint chain.
        let certs: Vec<Certificate> = vec![
            write(&TdCert {
                ancestors: vec![id(0), id(1)],
                trees: vec![(id(0), 0)],
            }),
            write(&TdCert {
                ancestors: vec![id(1)],
                trees: vec![],
            }),
            write(&TdCert {
                ancestors: vec![id(2), id(3)],
                trees: vec![(id(2), 0)],
            }),
            write(&TdCert {
                ancestors: vec![id(3)],
                trees: vec![],
            }),
        ];
        assert!(!run_verification(&scheme, &inst, &Assignment::new(certs)).accepted());

        // (c) A broken distance chain inside a subtree spanning tree:
        // take honest certs and bump one ST distance by 2.
        let mut bad2 = honest.clone();
        let mut parsed2 = scheme.parse(honest.cert(NodeId(3))).unwrap();
        if let Some(slot) = parsed2.trees.first_mut() {
            slot.1 += 2;
            *bad2.cert_mut(NodeId(3)) = write(&parsed2);
            assert!(!run_verification(&scheme, &inst, &bad2).accepted());
        }

        // (d) A forged exit identifier pointing at a non-neighbor.
        let mut bad3 = honest.clone();
        let mut parsed3 = scheme.parse(honest.cert(NodeId(0))).unwrap();
        if let Some(slot) = parsed3.trees.first_mut() {
            slot.0 = id(3);
            *bad3.cert_mut(NodeId(0)) = write(&parsed3);
            assert!(!run_verification(&scheme, &inst, &bad3).accepted());
        }
    }

    #[test]
    fn star_treedepth_2() {
        let g = generators::star(20);
        let ids = IdAssignment::contiguous(20);
        let inst = Instance::new(&g, &ids);
        let scheme = TreedepthScheme::new(id_bits_for(&inst), 2);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
    }

    #[test]
    fn disconnected_and_empty_instances_are_typed_errors() {
        // Regression: model_for used to hand disconnected graphs to the
        // exact/heuristic solvers, which assert connectivity and panicked.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        for strategy in [ModelStrategy::Auto, ModelStrategy::Dfs] {
            let scheme = TreedepthScheme::new(id_bits_for(&inst), 3).with_strategy(strategy);
            assert!(matches!(
                run_scheme(&scheme, &inst).unwrap_err(),
                ProverError::WitnessUnavailable(_)
            ));
        }
        let empty = Graph::empty(0);
        let ids0 = IdAssignment::contiguous(0);
        let inst0 = Instance::new(&empty, &ids0);
        assert!(matches!(
            model_for(&inst0, 1, &ModelStrategy::Auto).unwrap_err(),
            ProverError::WitnessUnavailable(_)
        ));
    }

    #[test]
    fn single_vertex() {
        let g = Graph::empty(1);
        let ids = IdAssignment::contiguous(1);
        let inst = Instance::new(&g, &ids);
        let scheme = TreedepthScheme::new(1, 1);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
    }
}
