//! MSO-on-words certification on path graphs (Section 4 warm-up).
//!
//! The paper's first intuition for Theorem 2.2: a word is a labeled path;
//! an MSO word property is an NFA language (Büchi–Elgot–Trakhtenbrot, see
//! [`locert_automata::mso_words`]); an accepting run, written position by
//! position into the certificates, is locally checkable. Certificates are
//! constant-size: position mod 3 (to orient the path), the run state, and
//! an automaton fingerprint.
//!
//! Letters come from the instance *inputs*. The scheme runs under the
//! promise that the graph is a path (compose with
//! [`crate::schemes::acyclicity`] + a degree check otherwise).

use crate::bits::{width_for, BitReader, BitWriter};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use locert_automata::words::Nfa;
use locert_graph::NodeId;

fn fingerprint(a: &Nfa) -> u64 {
    let s = format!("{a:?}");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h & 0xffff
}

/// Certifies that the word spelled by a labeled path belongs to an NFA's
/// language (in either reading direction — an unrooted path has no
/// canonical orientation).
#[derive(Debug, Clone)]
pub struct WordPathScheme {
    nfa: Nfa,
    state_bits: u32,
    fp: u64,
}

impl WordPathScheme {
    /// Builds the scheme for `nfa` (e.g. the output of
    /// [`locert_automata::mso_words::compile`]).
    pub fn new(nfa: Nfa) -> Self {
        let state_bits = width_for(nfa.num_states().max(1) as u64 - 1);
        let fp = fingerprint(&nfa);
        WordPathScheme {
            nfa,
            state_bits,
            fp,
        }
    }

    /// Certificate size in bits — constant for a fixed automaton.
    pub fn certificate_bits(&self) -> usize {
        2 + self.state_bits as usize + 16
    }

    fn parse(&self, cert: &crate::bits::Certificate) -> Option<(u64, usize)> {
        let mut r = BitReader::new(cert);
        let d = r.read(2)?;
        let q = r.read(self.state_bits)? as usize;
        let fp = r.read(16)?;
        (d < 3 && q < self.nfa.num_states() && fp == self.fp && r.exhausted()).then_some((d, q))
    }

    /// An accepting run over `word` (state after reading each letter), if
    /// any.
    fn accepting_run(&self, word: &[usize]) -> Option<Vec<usize>> {
        // Forward reachable sets.
        let mut sets: Vec<Vec<usize>> = Vec::with_capacity(word.len() + 1);
        sets.push(self.nfa.start_states().iter().copied().collect());
        for &a in word {
            let prev = sets.last().expect("non-empty");
            let mut next: Vec<usize> = prev
                .iter()
                .flat_map(|&q| self.nfa.successors(q, a).iter().copied())
                .collect();
            next.sort_unstable();
            next.dedup();
            sets.push(next);
        }
        // Pick an accepting final state and walk back.
        let mut state = *sets
            .last()
            .expect("non-empty")
            .iter()
            .find(|&&q| self.nfa.is_accepting(q))?;
        let mut run = vec![0usize; word.len()];
        for i in (0..word.len()).rev() {
            run[i] = state;
            state = *sets[i]
                .iter()
                .find(|&&p| self.nfa.successors(p, word[i]).contains(&state))
                .expect("forward sets guarantee a predecessor");
        }
        // `state` is now the chosen start state (unused beyond the walk).
        Some(run)
    }
}

impl Prover for WordPathScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.word_path.prover");
        let g = instance.graph();
        let n = g.num_nodes();
        // Must be a path: a tree with max degree ≤ 2.
        if !g.is_tree() || g.nodes().any(|v| g.degree(v) > 2) {
            return Err(ProverError::NotAYesInstance);
        }
        // Order vertices along the path.
        let start = g
            .nodes()
            .find(|&v| g.degree(v) <= 1)
            .expect("a path has an endpoint");
        let mut order = Vec::with_capacity(n);
        let mut prev: Option<NodeId> = None;
        let mut cur = start;
        loop {
            order.push(cur);
            let next = g.neighbors(cur).iter().copied().find(|&u| Some(u) != prev);
            match next {
                Some(u) => {
                    prev = Some(cur);
                    cur = u;
                }
                None => break,
            }
        }
        debug_assert_eq!(order.len(), n);
        // Letters must be in range.
        let letters: Vec<usize> = order.iter().map(|&v| instance.input(v)).collect();
        if letters.iter().any(|&a| a >= self.nfa.alphabet()) {
            return Err(ProverError::NotAYesInstance);
        }
        // Try both reading directions.
        let (run, oriented) = match self.accepting_run(&letters) {
            Some(r) => (r, order.clone()),
            None => {
                let mut rev_letters = letters.clone();
                rev_letters.reverse();
                let r = self
                    .accepting_run(&rev_letters)
                    .ok_or(ProverError::NotAYesInstance)?;
                let mut rev_order = order.clone();
                rev_order.reverse();
                (r, rev_order)
            }
        };
        let mut certs = vec![crate::bits::Certificate::empty(); n];
        for (pos, &v) in oriented.iter().enumerate() {
            let mut w = BitWriter::new();
            w.component("pos-mod-3");
            w.write((pos % 3) as u64, 2);
            w.component("automaton-state");
            w.write(run[pos] as u64, self.state_bits);
            w.component("automaton-fingerprint");
            w.write(self.fp, 16);
            certs[v.0] = w.finish_for(v.0);
        }
        Ok(Assignment::new(certs))
    }
}

impl Verifier for WordPathScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        if view.input >= self.nfa.alphabet() {
            return Err(RejectReason::BadInput);
        }
        let (d, q) = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        if view.degree() > 2 {
            return Err(RejectReason::DegreeViolation);
        }
        let mut pred: Option<usize> = None;
        let mut succ = false;
        for &(_, _, cert) in &view.neighbors {
            let (nd, nq) = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            if nd == (d + 2) % 3 {
                if pred.is_some() {
                    return Err(RejectReason::CounterMismatch); // two predecessors.
                }
                pred = Some(nq);
            } else if nd == (d + 1) % 3 {
                if succ {
                    return Err(RejectReason::CounterMismatch); // two successors.
                }
                succ = true;
            } else {
                return Err(RejectReason::CounterMismatch);
            }
        }
        // Transition check: my state follows from my predecessor's state
        // (or a start state at the first position) on my letter.
        let ok_transition = match pred {
            Some(p) => self.nfa.successors(p, view.input).contains(&q),
            None => self
                .nfa
                .start_states()
                .iter()
                .any(|&s| self.nfa.successors(s, view.input).contains(&q)),
        };
        if !ok_transition {
            return Err(RejectReason::AutomatonStateClash);
        }
        // Last position: accepting state.
        if !succ && !self.nfa.is_accepting(q) {
            return Err(RejectReason::NotAccepting);
        }
        Ok(())
    }
}

impl Scheme for WordPathScheme {
    fn name(&self) -> String {
        format!("word-path[{} states]", self.nfa.num_states())
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Position counter + NFA state + fingerprint: all independent of n
        // (Theorem 4.1's O(1) regime for fixed formulas on words).
        DeclaredBound::Constant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::{run_scheme, run_verification};
    use locert_automata::mso_words::{self, PosVar, WordFormula};
    use locert_automata::words::Dfa;
    use locert_graph::{generators, IdAssignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// "Even number of 1s" as an NFA.
    fn even_ones() -> Nfa {
        Nfa::from_dfa(&Dfa::new(2, 2, 0, vec![true, false], vec![vec![0, 1], vec![1, 0]]).unwrap())
    }

    fn instance_for<'a>(
        g: &'a locert_graph::Graph,
        ids: &'a IdAssignment,
        letters: &'a [usize],
    ) -> Instance<'a> {
        Instance::with_inputs(g, ids, letters)
    }

    #[test]
    fn accepts_even_ones_paths() {
        let scheme = WordPathScheme::new(even_ones());
        let g = generators::path(6);
        let ids = IdAssignment::contiguous(6);
        let letters = vec![1, 0, 1, 0, 0, 0];
        let inst = instance_for(&g, &ids, &letters);
        let out = run_scheme(&scheme, &inst).unwrap();
        assert!(out.accepted());
        assert_eq!(out.max_bits(), scheme.certificate_bits());
        let odd = vec![1, 0, 0, 0, 0, 0];
        let inst2 = instance_for(&g, &ids, &odd);
        assert_eq!(
            run_scheme(&scheme, &inst2).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn constant_size_in_n() {
        let scheme = WordPathScheme::new(even_ones());
        let mut sizes = Vec::new();
        for n in [2usize, 64, 1024] {
            let g = generators::path(n);
            let ids = IdAssignment::contiguous(n);
            let letters = vec![0usize; n];
            let inst = instance_for(&g, &ids, &letters);
            let out = run_scheme(&scheme, &inst).unwrap();
            assert!(out.accepted());
            sizes.push(out.max_bits());
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn direction_sensitive_language() {
        // "The first letter is 1": not reversal-closed; the prover must
        // pick the right orientation.
        let f = WordFormula::Exists(
            PosVar(0),
            Box::new(WordFormula::And(
                Box::new(WordFormula::Not(Box::new(WordFormula::Exists(
                    PosVar(1),
                    Box::new(WordFormula::Succ(PosVar(1), PosVar(0))),
                )))),
                Box::new(WordFormula::Letter(PosVar(0), 1)),
            )),
        );
        let nfa = mso_words::compile(&f, 2).unwrap();
        let scheme = WordPathScheme::new(nfa);
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        // Letters 1,0,0,0 along vertex order: accepted reading forward.
        let inst = instance_for(&g, &ids, &[1, 0, 0, 0]);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        // Letters 0,0,0,1: accepted reading backward.
        let inst2 = instance_for(&g, &ids, &[0, 0, 0, 1]);
        assert!(run_scheme(&scheme, &inst2).unwrap().accepted());
        // Letters 0,1,0,0: rejected both ways.
        let inst3 = instance_for(&g, &ids, &[0, 1, 0, 0]);
        assert_eq!(
            run_scheme(&scheme, &inst3).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn compiled_mso_sentence_end_to_end() {
        // "No two consecutive 1s", compiled from MSO, certified on paths.
        let f = WordFormula::Not(Box::new(WordFormula::Exists(
            PosVar(0),
            Box::new(WordFormula::Exists(
                PosVar(1),
                Box::new(WordFormula::And(
                    Box::new(WordFormula::Succ(PosVar(0), PosVar(1))),
                    Box::new(WordFormula::And(
                        Box::new(WordFormula::Letter(PosVar(0), 1)),
                        Box::new(WordFormula::Letter(PosVar(1), 1)),
                    )),
                )),
            )),
        )));
        let nfa = mso_words::compile(&f, 2).unwrap();
        let scheme = WordPathScheme::new(nfa);
        let g = generators::path(5);
        let ids = IdAssignment::contiguous(5);
        let inst = instance_for(&g, &ids, &[1, 0, 1, 0, 1]);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        let inst2 = instance_for(&g, &ids, &[1, 1, 0, 0, 0]);
        assert_eq!(
            run_scheme(&scheme, &inst2).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn forged_run_rejected() {
        let scheme = WordPathScheme::new(even_ones());
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let letters = [1usize, 1, 0, 0];
        let inst = instance_for(&g, &ids, &letters);
        let mut asg = scheme.assign(&inst).unwrap();
        let c = asg.cert(NodeId(1)).clone();
        *asg.cert_mut(NodeId(1)) = c.with_bit_flipped(2);
        assert!(!run_verification(&scheme, &inst, &asg).accepted());
    }

    #[test]
    fn random_attacks_on_no_instance() {
        let scheme = WordPathScheme::new(even_ones());
        let g = generators::path(5);
        let ids = IdAssignment::contiguous(5);
        let letters = [1usize, 0, 0, 0, 0];
        let inst = instance_for(&g, &ids, &letters);
        let mut rng = StdRng::seed_from_u64(131);
        assert!(attacks::random_assignments(
            &scheme,
            &inst,
            scheme.certificate_bits(),
            &mut rng,
            500
        )
        .is_none());
    }

    #[test]
    fn prover_rejects_non_paths() {
        let scheme = WordPathScheme::new(even_ones());
        let g = generators::star(4);
        let ids = IdAssignment::contiguous(4);
        let letters = [0usize; 4];
        let inst = instance_for(&g, &ids, &letters);
        assert_eq!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn single_vertex_path() {
        let scheme = WordPathScheme::new(even_ones());
        let g = locert_graph::Graph::empty(1);
        let ids = IdAssignment::contiguous(1);
        let letters = [0usize];
        let inst = instance_for(&g, &ids, &letters);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        let letters1 = [1usize];
        let inst2 = instance_for(&g, &ids, &letters1);
        assert_eq!(
            run_scheme(&scheme, &inst2).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }
}
