//! Quantifier-depth-2 FO certification (Lemma A.3).
//!
//! The paper shows that, on connected graphs, every FO sentence of
//! quantifier depth ≤ 2 is (semantically) a boolean combination of three
//! properties:
//!
//! 1. the graph has at most one vertex;
//! 2. the graph is a clique;
//! 3. the graph has a dominating vertex.
//!
//! These carve connected graphs into four *regions* ([`Region`]):
//! single vertex; clique on ≥ 2 vertices; dominated non-clique; none of
//! the above. A depth-2 sentence therefore has a fixed truth value per
//! region, which [`Depth2FoScheme::from_formula`] extracts by evaluating
//! the sentence on one representative per region. The certification then
//! certifies the region with `O(log n)` bits:
//!
//! - `Single`: every vertex checks degree 0;
//! - `Clique`: certified vertex count + everyone checks degree `n − 1`;
//! - `DomOnly`: vertex count rooted at the dominator (root checks degree
//!   `n − 1`) plus a second tree pointing at a *non*-dominating witness
//!   (which checks degree `< n − 1`);
//! - `Neither`: certified vertex count + everyone checks degree `< n−1`.

use crate::bits::{BitReader, BitWriter, Certificate};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::spanning_tree::{
    try_honest_count_fields, try_honest_tree_fields, verify_count_fields, verify_tree_position,
    CountFields, TreeFields,
};
use locert_graph::{generators, Graph, NodeId};
use locert_logic::depth::{is_fo, quantifier_depth};
use locert_logic::eval::models;
use locert_logic::Formula;

/// The four semantic regions of connected graphs under depth-2 FO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// A single vertex.
    Single,
    /// A clique on at least two vertices.
    Clique,
    /// Has a dominating vertex but is not a clique.
    DomOnly,
    /// No dominating vertex.
    Neither,
}

impl Region {
    fn tag(self) -> u64 {
        match self {
            Region::Single => 0,
            Region::Clique => 1,
            Region::DomOnly => 2,
            Region::Neither => 3,
        }
    }

    fn from_tag(tag: u64) -> Option<Region> {
        Some(match tag {
            0 => Region::Single,
            1 => Region::Clique,
            2 => Region::DomOnly,
            3 => Region::Neither,
            _ => return None,
        })
    }
}

/// Classifies a connected graph into its [`Region`].
pub fn classify(g: &Graph) -> Region {
    let n = g.num_nodes();
    if n <= 1 {
        return Region::Single;
    }
    if g.nodes().all(|v| g.degree(v) == n - 1) {
        return Region::Clique;
    }
    if g.nodes().any(|v| g.degree(v) == n - 1) {
        return Region::DomOnly;
    }
    Region::Neither
}

/// Certifies a depth-2 FO sentence via region certification.
#[derive(Debug, Clone)]
pub struct Depth2FoScheme {
    id_bits: u32,
    /// Truth per region, indexed by [`Region::tag`].
    truth: [bool; 4],
}

impl Depth2FoScheme {
    /// Builds the scheme from a depth-≤ 2 FO sentence by evaluating it on
    /// one representative per region (sound by Lemma A.3, which proves the
    /// sentence's truth is constant per region on connected graphs).
    ///
    /// Returns `None` if the sentence is not FO, not closed, or has
    /// quantifier depth `> 2`.
    pub fn from_formula(id_bits: u32, sentence: &Formula) -> Option<Self> {
        if !is_fo(sentence) || !sentence.is_sentence() || quantifier_depth(sentence) > 2 {
            return None;
        }
        let representatives = [
            Graph::empty(1),       // Single
            generators::clique(3), // Clique
            generators::star(4),   // DomOnly
            generators::path(4),   // Neither
        ];
        let mut truth = [false; 4];
        for (i, g) in representatives.iter().enumerate() {
            truth[i] = models(g, sentence);
        }
        Some(Depth2FoScheme { id_bits, truth })
    }

    /// Builds the scheme directly from a per-region truth table.
    pub fn from_truth_table(id_bits: u32, truth: [bool; 4]) -> Self {
        Depth2FoScheme { id_bits, truth }
    }

    /// The per-region truth table.
    pub fn truth_table(&self) -> [bool; 4] {
        self.truth
    }

    fn parse(
        &self,
        cert: &Certificate,
    ) -> Option<(Region, Option<CountFields>, Option<TreeFields>)> {
        let mut r = BitReader::new(cert);
        let region = Region::from_tag(r.read(2)?)?;
        match region {
            Region::Single => r.exhausted().then_some((region, None, None)),
            Region::Clique | Region::Neither => {
                let cf = CountFields::read(&mut r, self.id_bits)?;
                r.exhausted().then_some((region, Some(cf), None))
            }
            Region::DomOnly => {
                let cf = CountFields::read(&mut r, self.id_bits)?;
                let tf = TreeFields::read(&mut r, self.id_bits)?;
                r.exhausted().then_some((region, Some(cf), Some(tf)))
            }
        }
    }
}

impl Prover for Depth2FoScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.depth2_fo.prover");
        let g = instance.graph();
        // Lemma A.3's region dichotomy only holds on connected graphs;
        // classify() reads degrees alone and would mislabel disconnected
        // inputs, and the spanning-tree helpers below require
        // connectivity. (The single-vertex graph is connected; the empty
        // graph is not.)
        if !g.is_connected() {
            return Err(ProverError::WitnessUnavailable(
                "instance is empty or disconnected (connected-graph promise)".into(),
            ));
        }
        let region = classify(g);
        if !self.truth[region.tag() as usize] {
            return Err(ProverError::NotAYesInstance);
        }
        let n = g.num_nodes();
        let certs: Vec<Certificate> = match region {
            Region::Single => {
                let mut w = BitWriter::new();
                w.component("region-tag");
                w.write(region.tag(), 2);
                vec![w.finish_for(0)]
            }
            Region::Clique | Region::Neither => {
                let counts = try_honest_count_fields(instance, NodeId(0))
                    .ok_or(ProverError::NotAYesInstance)?;
                g.nodes()
                    .map(|v| {
                        let mut w = BitWriter::new();
                        w.component("region-tag");
                        w.write(region.tag(), 2);
                        counts[v.0].write(&mut w, self.id_bits);
                        w.finish_for(v.0)
                    })
                    .collect()
            }
            Region::DomOnly => {
                let dom = g
                    .nodes()
                    .find(|&v| g.degree(v) == n - 1)
                    .ok_or(ProverError::NotAYesInstance)?;
                let witness = g
                    .nodes()
                    .find(|&v| g.degree(v) < n - 1)
                    .ok_or(ProverError::NotAYesInstance)?;
                let counts =
                    try_honest_count_fields(instance, dom).ok_or(ProverError::NotAYesInstance)?;
                let wtree = try_honest_tree_fields(instance, witness)
                    .ok_or(ProverError::NotAYesInstance)?;
                g.nodes()
                    .map(|v| {
                        let mut w = BitWriter::new();
                        w.component("region-tag");
                        w.write(region.tag(), 2);
                        counts[v.0].write(&mut w, self.id_bits);
                        wtree[v.0].write(&mut w, self.id_bits);
                        w.finish_for(v.0)
                    })
                    .collect()
            }
        };
        Ok(Assignment::new(certs))
    }
}

impl Verifier for Depth2FoScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let (region, _, _) = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        if !self.truth[region.tag() as usize] {
            return Err(RejectReason::PropertyViolation);
        }
        // Region tags agree across neighbors.
        for &(_, _, cert) in &view.neighbors {
            let (r, _, _) = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            if r != region {
                return Err(RejectReason::CopyMismatch);
            }
        }
        match region {
            Region::Single => {
                if view.degree() == 0 {
                    Ok(())
                } else {
                    Err(RejectReason::DegreeViolation)
                }
            }
            Region::Clique => {
                let cf = verify_count_fields(view, self.id_bits, &|c| {
                    self.parse(c).and_then(|(_, cf, _)| cf)
                })?;
                if view.degree() as u64 == cf.total - 1 {
                    Ok(())
                } else {
                    Err(RejectReason::DegreeViolation)
                }
            }
            Region::Neither => {
                let cf = verify_count_fields(view, self.id_bits, &|c| {
                    self.parse(c).and_then(|(_, cf, _)| cf)
                })?;
                // No vertex dominates (also implies non-clique for n ≥ 2).
                if cf.total >= 2 && (view.degree() as u64) < cf.total - 1 {
                    Ok(())
                } else {
                    Err(RejectReason::DegreeViolation)
                }
            }
            Region::DomOnly => {
                let cf = verify_count_fields(view, self.id_bits, &|c| {
                    self.parse(c).and_then(|(_, cf, _)| cf)
                })?;
                // Dominator = the count tree's root.
                if view.id == cf.tree.root && view.degree() as u64 != cf.total - 1 {
                    return Err(RejectReason::DegreeViolation);
                }
                // Witness tree: points at a non-dominating vertex.
                let (_, _, Some(wt)) = self
                    .parse(view.cert)
                    .ok_or(RejectReason::MalformedCertificate)?
                else {
                    return Err(RejectReason::MalformedCertificate);
                };
                verify_tree_position(view, self.id_bits, &wt, |c| {
                    self.parse(c).and_then(|(_, _, t)| t)
                })?;
                if view.id == wt.root && view.degree() as u64 >= cf.total - 1 {
                    return Err(RejectReason::DegreeViolation);
                }
                Ok(())
            }
        }
    }
}

impl Scheme for Depth2FoScheme {
    fn name(&self) -> String {
        format!("depth2-fo{:?}", self.truth)
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Region tag plus count/tree fields at identifier width (Lemma A.3).
        DeclaredBound::LogN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::run_scheme;
    use crate::schemes::common::id_bits_for;
    use locert_graph::IdAssignment;
    use locert_logic::props;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classify_regions() {
        assert_eq!(classify(&Graph::empty(1)), Region::Single);
        assert_eq!(classify(&generators::clique(4)), Region::Clique);
        assert_eq!(classify(&generators::clique(2)), Region::Clique);
        assert_eq!(classify(&generators::star(5)), Region::DomOnly);
        assert_eq!(classify(&generators::path(4)), Region::Neither);
        assert_eq!(classify(&generators::cycle(5)), Region::Neither);
        assert_eq!(classify(&generators::path(3)), Region::DomOnly);
    }

    #[test]
    fn from_formula_guards_fragment() {
        assert!(Depth2FoScheme::from_formula(4, &props::diameter_at_most_2()).is_none());
        assert!(Depth2FoScheme::from_formula(4, &props::is_clique()).is_some());
        assert!(Depth2FoScheme::from_formula(4, &props::has_dominating_vertex()).is_some());
        assert!(Depth2FoScheme::from_formula(4, &props::bipartite()).is_none());
    }

    #[test]
    fn truth_tables_match_semantics() {
        let clique = Depth2FoScheme::from_formula(4, &props::is_clique()).unwrap();
        assert_eq!(clique.truth_table(), [true, true, false, false]);
        let dom = Depth2FoScheme::from_formula(4, &props::has_dominating_vertex()).unwrap();
        assert_eq!(dom.truth_table(), [true, true, true, false]);
        let single = Depth2FoScheme::from_formula(4, &props::at_most_one_vertex()).unwrap();
        assert_eq!(single.truth_table(), [true, false, false, false]);
    }

    /// End-to-end: scheme decision equals brute-force model checking on a
    /// zoo of graphs, for several depth-2 sentences.
    #[test]
    fn scheme_decision_matches_model_checking() {
        use locert_logic::ast::not;
        let sentences = vec![
            props::is_clique(),
            props::has_dominating_vertex(),
            props::at_most_one_vertex(),
            not(props::is_clique()),
            not(props::has_dominating_vertex()),
            props::min_degree_1(),
        ];
        let graphs = vec![
            Graph::empty(1),
            generators::clique(2),
            generators::clique(5),
            generators::star(4),
            generators::star(7),
            generators::path(3),
            generators::path(6),
            generators::cycle(4),
            generators::cycle(7),
            generators::spider(3, 2),
        ];
        for phi in &sentences {
            for g in &graphs {
                let ids = IdAssignment::contiguous(g.num_nodes());
                let inst = Instance::new(g, &ids);
                let scheme = Depth2FoScheme::from_formula(id_bits_for(&inst), phi).unwrap();
                let expected = models(g, phi);
                match run_scheme(&scheme, &inst) {
                    Ok(out) => {
                        assert!(out.accepted());
                        assert!(expected, "accepted a no-instance: {phi} on {g:?}");
                    }
                    Err(ProverError::NotAYesInstance) => {
                        assert!(!expected, "refused a yes-instance: {phi} on {g:?}");
                    }
                    Err(e) => {
                        panic!("prover error for {} ({phi} on {g:?}): {e}", scheme.name())
                    }
                }
            }
        }
    }

    #[test]
    fn forged_region_rejected() {
        // Claim "clique" on a star: leaves fail the degree check.
        let g = generators::star(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let scheme =
            Depth2FoScheme::from_truth_table(id_bits_for(&inst), [false, true, false, false]);
        // Prover refuses (star is DomOnly)…
        assert_eq!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
        // …and random/forged certificates do not help.
        let mut rng = StdRng::seed_from_u64(111);
        let bits = 2 + 5 * id_bits_for(&inst) as usize;
        assert!(attacks::random_assignments(&scheme, &inst, bits, &mut rng, 300).is_none());
    }

    #[test]
    fn dominating_vertex_forgery_rejected() {
        // On a path of 5, claim DomOnly with a forged dominator: the fake
        // root's degree check fails; exhaust small certificates too.
        let g = generators::path(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let scheme =
            Depth2FoScheme::from_truth_table(id_bits_for(&inst), [false, false, true, false]);
        let mut rng = StdRng::seed_from_u64(112);
        let bits = 2 + 8 * id_bits_for(&inst) as usize;
        assert!(attacks::random_assignments(&scheme, &inst, bits, &mut rng, 400).is_none());
    }

    #[test]
    fn disconnected_instance_is_a_typed_error_not_a_panic() {
        // Regression: classify() reads degrees only, so 2 x K_2 was
        // labeled Clique and the prover panicked inside the spanning-tree
        // helpers ("connected instance").
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme = Depth2FoScheme::from_truth_table(id_bits_for(&inst), [true; 4]);
        assert!(matches!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::WitnessUnavailable(_)
        ));
        // The empty graph is not connected either.
        let empty = Graph::empty(0);
        let ids0 = IdAssignment::contiguous(0);
        let inst0 = Instance::new(&empty, &ids0);
        assert!(matches!(
            run_scheme(&scheme, &inst0).unwrap_err(),
            ProverError::WitnessUnavailable(_)
        ));
    }

    #[test]
    fn certificate_sizes_logarithmic() {
        for n in [4usize, 16, 64, 256] {
            let g = generators::star(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let scheme =
                Depth2FoScheme::from_formula(id_bits_for(&inst), &props::has_dominating_vertex())
                    .unwrap();
            let out = run_scheme(&scheme, &inst).unwrap();
            assert!(out.accepted());
            // 2 + 5L (count fields) + 3L (witness tree) bits.
            assert!(out.max_bits() <= 2 + 8 * id_bits_for(&inst) as usize);
        }
    }
}
