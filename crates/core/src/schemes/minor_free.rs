//! Minor-freeness certification for paths and cycles (Corollary 2.7).
//!
//! **`P_t`-minor-freeness** is fully certified: a graph has a `P_t` minor
//! iff it contains a path on `t` vertices, so `P_t`-minor-free graphs
//! have DFS trees of depth ≤ `t − 1` — which are elimination trees. The
//! prover therefore always finds a `(t−1)`-model (DFS), and the property
//! itself is the FO sentence "no path on `t` vertices", certified by the
//! Theorem 2.6 kernelization ([`crate::schemes::kernel_mso`]). Total
//! size: `O(log n)` for fixed `t`.
//!
//! **`C_t`-minor-freeness** follows the paper's reduction: every
//! 2-connected component of a `C_t`-minor-free graph is
//! `P_{t²}`-minor-free (the paper proves this in Appendix D.3), so one
//! certifies the block decomposition and then `P_{t²}`-freeness per
//! block. The paper delegates the block-decomposition certification to
//! its companion paper \[8]; we follow suit: [`CtMinorFreeScheme`] runs
//! under the *certified-decomposition promise* — block membership is
//! provided in the certificates and the \[8] machinery that would pin it
//! down is out of scope (documented substitution, see DESIGN.md). Within
//! each block, the full `P_{t²}` scheme runs with all its checks against
//! the block-restricted view.

use crate::bits::{BitReader, BitWriter, Certificate};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::kernel_mso::KernelMsoScheme;
use crate::schemes::treedepth::ModelStrategy;
use locert_graph::bcc::biconnected_components;
use locert_graph::{IdAssignment, Ident, NodeId};
use locert_logic::props;

/// Certifies "the graph is `P_t`-minor-free" with `O(log n)` bits (fixed
/// `t`).
#[derive(Debug)]
pub struct PathMinorFreeScheme {
    inner: KernelMsoScheme,
    t: usize,
}

impl PathMinorFreeScheme {
    /// A scheme for `P_t` with identifier fields of `id_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `t < 2`.
    pub fn new(id_bits: u32, t: usize) -> Self {
        assert!(t >= 2, "P_t needs t >= 2");
        let phi = props::path_minor_free(t);
        let inner = KernelMsoScheme::new(id_bits, t - 1, phi)
            .expect("path-freeness is a closed FO sentence")
            .with_strategy(ModelStrategy::Dfs)
            // Equivalent to ¬∃ path on t vertices, but polynomial in |H|
            // instead of |H|^t (see locert_graph::minors).
            .with_evaluator(move |h| !locert_graph::minors::has_path_of_order(h, t));
        PathMinorFreeScheme { inner, t }
    }

    /// The forbidden path order `t`.
    pub fn t(&self) -> usize {
        self.t
    }
}

impl Prover for PathMinorFreeScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.minor_free.path.prover");
        // The DFS model strategy cannot fail on yes-instances: any DFS
        // root-to-leaf chain is a real path, so depth ≤ t − 1 whenever
        // the graph is P_t-minor-free.
        self.inner.assign(instance)
    }
}

impl Verifier for PathMinorFreeScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        self.inner.decide(view)
    }
}

impl Scheme for PathMinorFreeScheme {
    fn name(&self) -> String {
        format!("P{}-minor-free", self.t)
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Corollary 2.7: kernelization at treedepth t − 1, O(log n) for
        // fixed t.
        self.inner.declared_bound()
    }
}

/// Certifies "the graph is `C_t`-minor-free" per block, under the
/// certified-decomposition promise (see the module docs).
///
/// Certificate layout per vertex: the number of blocks containing it,
/// then for each block `(block id, sub-certificate length, P_{t²}
/// sub-certificate for the block-induced subgraph)`. A block id is the
/// pair of the block's two smallest member identifiers — unique because
/// two distinct blocks share at most one vertex.
#[derive(Debug)]
pub struct CtMinorFreeScheme {
    id_bits: u32,
    t: usize,
    inner: KernelMsoScheme,
}

impl CtMinorFreeScheme {
    /// A scheme for `C_t` with identifier fields of `id_bits` bits.
    ///
    /// Per block, the certified FO property is "`P_{t²+1}`-free ∧ no
    /// cycle of length in `[t, t²]`": on `P_{t²+1}`-free graphs every
    /// cycle has length ≤ `t²`, so the conjunction is exactly
    /// `C_t`-minor-freeness, and the first conjunct also bounds the
    /// block's treedepth by `t²` so Theorem 2.6 applies (the paper's
    /// Appendix D.3 lemma guarantees completeness: blocks of
    /// `C_t`-minor-free graphs *are* `P_{t²}`-free).
    ///
    /// # Panics
    ///
    /// Panics if `t < 3`.
    pub fn new(id_bits: u32, t: usize) -> Self {
        assert!(t >= 3, "C_t needs t >= 3");
        let max_len = t * t;
        let phi = props::ct_minor_free_bounded(t, max_len);
        let inner = KernelMsoScheme::new(id_bits, max_len, phi)
            .expect("closed FO sentence")
            .with_strategy(ModelStrategy::Dfs)
            .with_evaluator(move |h| {
                !locert_graph::minors::has_path_of_order(h, max_len + 1)
                    && !locert_graph::minors::has_cycle_at_least(h, t, max_len)
            });
        CtMinorFreeScheme { id_bits, t, inner }
    }

    fn parse(&self, cert: &Certificate) -> Option<Vec<((Ident, Ident), Certificate)>> {
        let mut r = BitReader::new(cert);
        let count = r.read(16)? as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let block = (Ident(r.read(self.id_bits)?), Ident(r.read(self.id_bits)?));
            let len = r.read(20)? as usize;
            if len > r.remaining() {
                return None;
            }
            let mut w = BitWriter::new();
            for _ in 0..len {
                w.write_bit(r.read_bit()?);
            }
            out.push((block, w.finish()));
        }
        r.exhausted().then_some(out)
    }
}

impl Prover for CtMinorFreeScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.minor_free.cycle.prover");
        let g = instance.graph();
        let ids = instance.ids();
        let decomposition = biconnected_components(g);
        // Per-vertex block certificate lists.
        let mut per_vertex: Vec<Vec<((Ident, Ident), Certificate)>> =
            vec![Vec::new(); g.num_nodes()];
        for (bi, _) in decomposition.components.iter().enumerate() {
            let members = decomposition.component_vertices(bi);
            // Block id: the two smallest member identifiers (unique,
            // since distinct blocks share at most one vertex).
            let mut member_ids: Vec<Ident> = members.iter().map(|&v| ids.ident(v)).collect();
            member_ids.sort();
            let block_id = (member_ids[0], member_ids[1]);
            // Run the P_{t²} scheme on the block-induced subgraph with the
            // members' own identifiers.
            let (sub, map) = g.induced_subgraph(&members);
            let sub_ids = IdAssignment::new(map.iter().map(|&v| ids.ident(v)).collect())
                .expect("identifiers stay distinct");
            let sub_inst = Instance::new(&sub, &sub_ids);
            let sub_asg = self.inner.assign(&sub_inst)?;
            for (local, &global) in map.iter().enumerate() {
                per_vertex[global.0].push((block_id, sub_asg.cert(NodeId(local)).clone()));
            }
        }
        let certs = per_vertex
            .into_iter()
            .enumerate()
            .map(|(v, blocks)| {
                let mut w = BitWriter::new();
                w.component("block-count");
                w.write(blocks.len() as u64, 16);
                for (block_id, cert) in blocks {
                    w.component("block-id");
                    w.write(block_id.0.value(), self.id_bits);
                    w.write(block_id.1.value(), self.id_bits);
                    w.component("length-header");
                    w.write(cert.len_bits() as u64, 20);
                    w.component("embedded");
                    w.write_cert(&cert);
                }
                w.finish_for(v)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl Verifier for CtMinorFreeScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let mine = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        // Block ids must be distinct within a vertex.
        let mut block_ids: Vec<(Ident, Ident)> = mine.iter().map(|&(b, _)| b).collect();
        block_ids.sort();
        block_ids.dedup();
        if block_ids.len() != mine.len() {
            return Err(RejectReason::MalformedCertificate);
        }
        // Parse neighbors.
        let mut nbr_blocks = Vec::with_capacity(view.neighbors.len());
        for &(nid, ninput, cert) in &view.neighbors {
            let nb = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            nbr_blocks.push((nid, ninput, nb));
        }
        // Every edge lies in exactly one common block (the promise layer:
        // a pair of adjacent vertices shares exactly one block).
        for (_, _, nb) in &nbr_blocks {
            let common = mine
                .iter()
                .filter(|(b, _)| nb.iter().any(|(nb_id, _)| nb_id == b))
                .count();
            if common != 1 {
                return Err(RejectReason::NonTreeEdge);
            }
        }
        // Run the P_{t²} verifier inside each of my blocks, restricting
        // the view to same-block neighbors. Inner reasons propagate.
        for (block, sub_cert) in &mine {
            let neighbors: Vec<(Ident, usize, &Certificate)> = nbr_blocks
                .iter()
                .filter_map(|(nid, ninput, nb)| {
                    nb.iter()
                        .find(|(b, _)| b == block)
                        .map(|(_, c)| (*nid, *ninput, c))
                })
                .collect();
            let sub_view = LocalView {
                id: view.id,
                input: view.input,
                cert: sub_cert,
                neighbors,
            };
            self.inner.decide(&sub_view)?;
        }
        Ok(())
    }
}

impl Scheme for CtMinorFreeScheme {
    fn name(&self) -> String {
        format!("C{}-minor-free", self.t)
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Per-block P_{t²} kernels at O(log n) each; a vertex lies in at
        // most deg(v) blocks but the paper's measure counts the dominant
        // identifier-width fields, still O(log n) for fixed t on the
        // bounded-degree families exercised here.
        self.inner.declared_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_scheme, run_verification};
    use crate::schemes::common::id_bits_for;
    use locert_graph::{generators, minors, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_free_stars_and_spiders() {
        // A star has no P_4; a spider with legs of length 2 has P_5 but
        // no P_6.
        let star = generators::star(9);
        let ids = IdAssignment::contiguous(9);
        let inst = Instance::new(&star, &ids);
        let scheme = PathMinorFreeScheme::new(id_bits_for(&inst), 4);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        let spider = generators::spider(3, 2);
        let ids7 = IdAssignment::contiguous(7);
        let inst7 = Instance::new(&spider, &ids7);
        assert!(
            run_scheme(&PathMinorFreeScheme::new(id_bits_for(&inst7), 6), &inst7)
                .unwrap()
                .accepted()
        );
        assert_eq!(
            run_scheme(&PathMinorFreeScheme::new(id_bits_for(&inst7), 5), &inst7).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn path_free_matches_ground_truth_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(161);
        for _ in 0..10 {
            let g = generators::random_tree(10, &mut rng);
            let ids = IdAssignment::contiguous(10);
            let inst = Instance::new(&g, &ids);
            for t in 3..=6 {
                let expected = !minors::has_path_minor(&g, t);
                let scheme = PathMinorFreeScheme::new(id_bits_for(&inst), t);
                match run_scheme(&scheme, &inst) {
                    Ok(out) => {
                        assert!(out.accepted());
                        assert!(expected, "accepted P_{t}-minor graph {g:?}");
                    }
                    Err(ProverError::NotAYesInstance) => {
                        assert!(!expected, "refused P_{t}-minor-free graph {g:?}");
                    }
                    Err(e) => panic!("prover error for {} on tree {g:?}: {e}", scheme.name()),
                }
            }
        }
    }

    #[test]
    fn path_free_size_logarithmic() {
        let mut sizes = Vec::new();
        for n in [8usize, 64, 512] {
            let g = generators::star(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let scheme = PathMinorFreeScheme::new(id_bits_for(&inst), 4);
            let out = run_scheme(&scheme, &inst).unwrap();
            assert!(out.accepted());
            sizes.push(out.max_bits());
        }
        // Doubling n adds only O(1) id bits.
        assert!(sizes[2] - sizes[1] <= 40, "sizes {sizes:?}");
    }

    /// The paper's Appendix D.3 lemma, validated empirically: blocks of
    /// C_t-minor-free graphs are P_{t²}-minor-free.
    #[test]
    fn blocks_of_ct_free_graphs_are_path_bounded() {
        let mut rng = StdRng::seed_from_u64(162);
        for _ in 0..20 {
            let g = generators::random_connected(12, 4, &mut rng);
            for t in [4usize, 5] {
                if minors::has_cycle_minor(&g, t) {
                    continue;
                }
                let d = biconnected_components(&g);
                for bi in 0..d.components.len() {
                    let (sub, _) = g.induced_subgraph(&d.component_vertices(bi));
                    assert!(
                        !minors::has_path_minor(&sub, t * t),
                        "C_{t}-free graph has a block with a P_{} minor: {g:?}",
                        t * t
                    );
                }
            }
        }
    }

    #[test]
    fn ct_free_accepts_trees_and_small_cycles() {
        // Trees are C_3-minor-free.
        let g = generators::spider(3, 2);
        let ids = IdAssignment::contiguous(7);
        let inst = Instance::new(&g, &ids);
        let scheme = CtMinorFreeScheme::new(id_bits_for(&inst), 3);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        // A triangle is C_4-minor-free but not C_3-minor-free.
        let tri = generators::cycle(3);
        let ids3 = IdAssignment::contiguous(3);
        let inst3 = Instance::new(&tri, &ids3);
        assert!(
            run_scheme(&CtMinorFreeScheme::new(id_bits_for(&inst3), 4), &inst3)
                .unwrap()
                .accepted()
        );
        assert_eq!(
            run_scheme(&CtMinorFreeScheme::new(id_bits_for(&inst3), 3), &inst3).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn ct_free_on_cactus_like_graphs() {
        // Two triangles joined by a bridge: C_4-minor-free.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let scheme = CtMinorFreeScheme::new(id_bits_for(&inst), 4);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        // A C_6 has a C_4 minor: the cycle-range conjunct refuses it.
        let c6 = generators::cycle(6);
        let ids6 = IdAssignment::contiguous(6);
        let inst6 = Instance::new(&c6, &ids6);
        let scheme6 = CtMinorFreeScheme::new(id_bits_for(&inst6), 4);
        assert_eq!(
            run_scheme(&scheme6, &inst6).unwrap_err(),
            ProverError::NotAYesInstance
        );
        // A C_17 additionally violates the path bound (P_17 ⊄ allowed).
        let big = generators::cycle(17);
        let ids17 = IdAssignment::contiguous(17);
        let inst17 = Instance::new(&big, &ids17);
        let scheme4 = CtMinorFreeScheme::new(id_bits_for(&inst17), 4);
        assert_eq!(
            run_scheme(&scheme4, &inst17).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn ct_replay_with_wrong_blocks_rejected() {
        // Take honest certificates for two triangles sharing a bridge,
        // replay them with a forged extra edge merging the blocks: the
        // common-block check fails at the new edge's endpoints.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let scheme = CtMinorFreeScheme::new(id_bits_for(&inst), 4);
        let honest = scheme.assign(&inst).unwrap();
        let merged = g.with_edges([(0, 4)]).unwrap();
        let inst2 = Instance::new(&merged, &ids);
        assert!(!run_verification(&scheme, &inst2, &honest).accepted());
    }
}
