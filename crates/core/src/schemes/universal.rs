//! The universal certification (Section 1.2): *any* property of connected
//! graphs is certifiable by broadcasting the whole graph.
//!
//! Every vertex receives the full map — vertex count, the identifier
//! list, the adjacency matrix — plus its own index in the map. Each
//! vertex checks that (1) its neighbors carry the identical map, (2) the
//! map's row at its own index matches its *actual* neighborhood exactly,
//! and (3) the map graph satisfies the property.
//!
//! Soundness for connected targets: every real vertex pins its own row,
//! so the map restricted to real identifiers is exactly `G`; phantom map
//! vertices cannot claim edges into the real part (the real endpoint
//! would see a foreign identifier), so they form separate components —
//! killed by requiring the map to be connected.
//!
//! Size: `n² + O(n log n)` bits — the paper's generic upper bound, and
//! the upper-bound companion to the `Ω̃(n)` lower bound of Theorem 2.3
//! (e.g. instantiated with the fixed-point-free-automorphism property via
//! [`crate::schemes::universal::fpf_automorphism_scheme`]).

use crate::bits::{BitReader, BitWriter, Certificate};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::common::{read_ident, write_ident};
use locert_graph::{automorphism, Graph, Ident};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How the broadcast map is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapEncoding {
    /// Upper-triangular adjacency matrix: `n²/2` bits — the paper's
    /// generic `O(n²)` bound.
    Matrix,
    /// Edge list: `O(m log n)` bits — `Õ(n)` on trees, matching the
    /// Theorem 2.3 lower bound for fixed-point-free automorphism.
    EdgeList,
}

/// Certifies an arbitrary (isomorphism-invariant) property of connected
/// graphs by broadcasting the full graph description.
pub struct UniversalScheme {
    id_bits: u32,
    /// Maximum representable vertex count (field width guard).
    n_bits: u32,
    encoding: MapEncoding,
    property: Arc<dyn Fn(&Graph) -> bool + Send + Sync>,
    name: String,
}

impl std::fmt::Debug for UniversalScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniversalScheme")
            .field("id_bits", &self.id_bits)
            .field("name", &self.name)
            .finish()
    }
}

impl UniversalScheme {
    /// Builds the scheme for `property` (evaluated on the broadcast map;
    /// it must be isomorphism-invariant and should imply connectivity or
    /// tolerate checking it — the verifier additionally rejects
    /// disconnected maps).
    pub fn new(
        id_bits: u32,
        name: impl Into<String>,
        property: impl Fn(&Graph) -> bool + Send + Sync + 'static,
    ) -> Self {
        UniversalScheme {
            id_bits,
            n_bits: 16,
            encoding: MapEncoding::Matrix,
            property: Arc::new(property),
            name: name.into(),
        }
    }

    /// Switches to the sparse edge-list encoding (`O(m log n)` bits).
    pub fn sparse(mut self) -> Self {
        self.encoding = MapEncoding::EdgeList;
        self
    }

    fn parse(&self, cert: &Certificate) -> Option<(Vec<Ident>, Graph, usize)> {
        let mut r = BitReader::new(cert);
        let n = r.read(self.n_bits)? as usize;
        if n == 0 || n > 4096 {
            return None;
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(read_ident(&mut r, self.id_bits)?);
        }
        // Distinct identifiers.
        if ids.iter().collect::<BTreeSet<_>>().len() != n {
            return None;
        }
        let mut edges = Vec::new();
        match self.encoding {
            MapEncoding::Matrix => {
                for i in 0..n {
                    for j in (i + 1)..n {
                        if r.read_bit()? {
                            edges.push((i, j));
                        }
                    }
                }
            }
            MapEncoding::EdgeList => {
                let vb = crate::bits::width_for(n as u64 - 1);
                let m = r.read(20)? as usize;
                for _ in 0..m {
                    let i = r.read(vb)? as usize;
                    let j = r.read(vb)? as usize;
                    if i >= n || j >= n || i >= j {
                        return None; // canonical: i < j.
                    }
                    edges.push((i, j));
                }
            }
        }
        let self_idx = r.read(self.n_bits)? as usize;
        if self_idx >= n || !r.exhausted() {
            return None;
        }
        let g = Graph::from_edges(n, edges).ok()?;
        Some((ids, g, self_idx))
    }
}

impl Prover for UniversalScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.universal.prover");
        let g = instance.graph();
        if !(self.property)(g) || !g.is_connected() {
            return Err(ProverError::NotAYesInstance);
        }
        let n = g.num_nodes();
        if n >= (1usize << self.n_bits) {
            return Err(ProverError::WitnessUnavailable(
                "graph exceeds the universal scheme's size field".into(),
            ));
        }
        let ids = instance.ids();
        let certs = g
            .nodes()
            .map(|v| {
                let mut w = BitWriter::new();
                w.component("size-field");
                w.write(n as u64, self.n_bits);
                w.component("id-list");
                for u in g.nodes() {
                    write_ident(&mut w, ids.ident(u), self.id_bits);
                }
                w.component("adjacency");
                match self.encoding {
                    MapEncoding::Matrix => {
                        for i in 0..n {
                            for j in (i + 1)..n {
                                w.write_bit(g.has_edge(i.into(), j.into()));
                            }
                        }
                    }
                    MapEncoding::EdgeList => {
                        let vb = crate::bits::width_for(n as u64 - 1);
                        w.write(g.num_edges() as u64, 20);
                        for (a, b) in g.edges() {
                            w.write(a.0 as u64, vb);
                            w.write(b.0 as u64, vb);
                        }
                    }
                }
                w.component("self-index");
                w.write(v.0 as u64, self.n_bits);
                w.finish_for(v.0)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl Verifier for UniversalScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let (ids, map, self_idx) = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        // My identifier sits at my claimed index.
        if ids[self_idx] != view.id {
            return Err(RejectReason::AdjacencyMismatch);
        }
        // Neighbors carry the identical map (ids + adjacency); their
        // self-indices differ, so compare the parsed pieces.
        for &(_, _, cert) in &view.neighbors {
            let (nids, nmap, _) = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            if nids != ids || nmap != map {
                return Err(RejectReason::CopyMismatch);
            }
        }
        // My map row matches my actual neighborhood exactly.
        let claimed: BTreeSet<Ident> = map
            .neighbors(locert_graph::NodeId(self_idx))
            .iter()
            .map(|&j| ids[j.0])
            .collect();
        let actual: BTreeSet<Ident> = view.neighbors.iter().map(|&(nid, _, _)| nid).collect();
        if claimed != actual {
            return Err(RejectReason::AdjacencyMismatch);
        }
        // The map is connected and satisfies the property.
        if !map.is_connected() || !(self.property)(&map) {
            return Err(RejectReason::PropertyViolation);
        }
        Ok(())
    }
}

impl Scheme for UniversalScheme {
    fn name(&self) -> String {
        format!("universal[{}]", self.name)
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Broadcasting the map costs n² + O(n log n) bits (Section 1.2);
        // the sparse edge-list variant stays within the same family.
        DeclaredBound::QuadraticN
    }
}

/// The Theorem 2.3 upper-bound companion: certify "the tree has a
/// fixed-point-free automorphism" with Õ(n)-bit certificates via the
/// universal scheme (the lower bound says this is essentially optimal —
/// in stark contrast with the O(1) bits of every MSO property).
pub fn fpf_automorphism_scheme(id_bits: u32) -> UniversalScheme {
    UniversalScheme::new(id_bits, "fpf-automorphism", |g| {
        automorphism::tree_has_fpf_automorphism(g) == Some(true)
    })
    // Trees are sparse: the edge list costs O(n log n) = Õ(n) bits,
    // matching the Ω̃(n) lower bound of Theorem 2.3.
    .sparse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::{run_scheme, run_verification};
    use crate::schemes::common::id_bits_for;
    use locert_graph::{generators, IdAssignment, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn certifies_arbitrary_properties() {
        // "The graph has an even number of edges" — far outside MSO's
        // certifiable-with-small-certificates world, trivial here.
        let g = generators::cycle(6);
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let scheme =
            UniversalScheme::new(id_bits_for(&inst), "even-edges", |g| g.num_edges() % 2 == 0);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        let c5 = generators::cycle(5);
        let ids5 = IdAssignment::contiguous(5);
        let inst5 = Instance::new(&c5, &ids5);
        let scheme5 = UniversalScheme::new(id_bits_for(&inst5), "even-edges", |g| {
            g.num_edges() % 2 == 0
        });
        assert_eq!(
            run_scheme(&scheme5, &inst5).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn fpf_scheme_matches_ground_truth() {
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..12 {
            let n = 2 + rand::RngExt::random_range(&mut rng, 0..8usize);
            let g = generators::random_tree(n, &mut rng);
            let ids = IdAssignment::shuffled(n, &mut rng);
            let inst = Instance::new(&g, &ids);
            let scheme = fpf_automorphism_scheme(id_bits_for(&inst));
            let expected = automorphism::tree_has_fpf_automorphism(&g) == Some(true);
            match run_scheme(&scheme, &inst) {
                Ok(out) => {
                    assert!(out.accepted());
                    assert!(expected);
                }
                Err(ProverError::NotAYesInstance) => assert!(!expected),
                Err(e) => {
                    panic!(
                        "prover error for {} on {n}-vertex tree {g:?}: {e}",
                        scheme.name()
                    )
                }
            }
        }
    }

    #[test]
    fn size_is_quadratic_plus_n_log_n() {
        for n in [8usize, 16, 32] {
            let g = generators::path(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let scheme = UniversalScheme::new(id_bits_for(&inst), "any", |_| true);
            let out = run_scheme(&scheme, &inst).unwrap();
            let expected = 16 + n * id_bits_for(&inst) as usize + n * (n - 1) / 2 + 16;
            assert_eq!(out.max_bits(), expected, "n = {n}");
        }
    }

    #[test]
    fn sparse_encoding_is_quasilinear_on_trees() {
        for n in [16usize, 64, 256] {
            let g = generators::path(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let dense = UniversalScheme::new(id_bits_for(&inst), "any", |_| true);
            let sparse = UniversalScheme::new(id_bits_for(&inst), "any", |_| true).sparse();
            let db = run_scheme(&dense, &inst).unwrap().max_bits();
            let sb = run_scheme(&sparse, &inst).unwrap().max_bits();
            // Sparse beats dense as soon as m log n < n²/2.
            if n >= 64 {
                assert!(sb < db, "n = {n}: sparse {sb} >= dense {db}");
            }
            // Õ(n): within a log factor of linear.
            let l = id_bits_for(&inst) as usize;
            assert!(sb <= 52 + n * l + (n - 1) * 2 * l, "n = {n}, sb = {sb}");
        }
    }

    #[test]
    fn sparse_rejects_non_canonical_edge_lists() {
        // An edge encoded as (j, i) with j > i must not parse.
        let g = generators::path(2);
        let ids = IdAssignment::contiguous(2);
        let inst = Instance::new(&g, &ids);
        let b = id_bits_for(&inst);
        let scheme = UniversalScheme::new(b, "any", |_| true).sparse();
        let mut w = BitWriter::new();
        w.write(2, 16);
        write_ident(&mut w, Ident(1), b);
        write_ident(&mut w, Ident(2), b);
        w.write(1, 20); // one edge
        w.write(1, 1); // i = 1
        w.write(0, 1); // j = 0 (non-canonical)
        w.write(0, 16);
        let asg = Assignment::new(vec![w.finish(), Certificate::empty()]);
        assert!(!run_verification(&scheme, &inst, &asg).accepted());
    }

    #[test]
    fn forged_map_row_caught_by_owner() {
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme = UniversalScheme::new(id_bits_for(&inst), "any", |_| true);
        let honest = scheme.assign(&inst).unwrap();
        // Forge an extra edge into every copy of the map (bit of pair
        // (0, 2) in the upper-triangle block).
        let n = 4;
        let header = 16 + n * id_bits_for(&inst) as usize;
        let pair_index = |i: usize, j: usize| {
            // upper triangle, row-major: (0,1)(0,2)(0,3)(1,2)...
            let mut k = 0;
            for a in 0..n {
                for b in (a + 1)..n {
                    if (a, b) == (i, j) {
                        return k;
                    }
                    k += 1;
                }
            }
            unreachable!()
        };
        let mut forged = honest.clone();
        for v in 0..n {
            let c = forged.cert(NodeId(v)).clone();
            *forged.cert_mut(NodeId(v)) = c.with_bit_flipped(header + pair_index(0, 2));
        }
        let out = run_verification(&scheme, &inst, &forged);
        assert!(!out.accepted());
        // The endpoints of the phantom edge are among the rejectors.
        assert!(out.rejecting().contains(&Ident(1)) || out.rejecting().contains(&Ident(3)));
    }

    #[test]
    fn phantom_component_killed_by_connectivity() {
        // Hand-build a map with an extra isolated phantom vertex: the
        // map is disconnected → rejected.
        let g = generators::path(2);
        let ids = IdAssignment::contiguous(2);
        let inst = Instance::new(&g, &ids);
        let b = id_bits_for(&inst);
        let scheme = UniversalScheme::new(b, "any", |_| true);
        let make = |self_idx: u64| {
            let mut w = BitWriter::new();
            w.write(3, 16); // claim n = 3.
            write_ident(&mut w, Ident(1), b);
            write_ident(&mut w, Ident(2), b);
            write_ident(&mut w, Ident(3), b); // phantom.
                                              // adjacency pairs (0,1), (0,2), (1,2): only the real edge.
            w.write_bit(true);
            w.write_bit(false);
            w.write_bit(false);
            w.write(self_idx, 16);
            w.finish()
        };
        let asg = Assignment::new(vec![make(0), make(1)]);
        assert!(!run_verification(&scheme, &inst, &asg).accepted());
    }

    #[test]
    fn random_attacks_rejected() {
        let g = generators::star(5); // no FPF automorphism (center fixed).
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let scheme = fpf_automorphism_scheme(id_bits_for(&inst));
        let mut rng = StdRng::seed_from_u64(92);
        let bits = 16 + 5 * 3 + 10 + 16;
        assert!(attacks::random_assignments(&scheme, &inst, bits, &mut rng, 200).is_none());
    }
}
