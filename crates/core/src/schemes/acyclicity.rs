//! Acyclicity (tree-ness) certification.
//!
//! Certifies that the (connected) graph is a tree: spanning-tree fields
//! plus the check that **every incident edge is a tree edge** — each
//! neighbor is either my parent or claims me as its parent. If all edges
//! are tree edges of a valid rooted spanning tree, the graph is acyclic.
//!
//! This folklore `O(log n)` scheme is the entry point of several other
//! schemes here (MSO-on-trees first certifies tree-ness; the paper notes
//! acyclicity requires `Ω(log n)` bits [31, 37], so this is tight).

use crate::bits::{BitReader, BitWriter};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::spanning_tree::{honest_tree_fields, verify_tree_position, TreeFields};
use locert_graph::NodeId;

/// Certifies that the graph is a tree.
#[derive(Debug, Clone, Copy)]
pub struct AcyclicityScheme {
    id_bits: u32,
}

impl AcyclicityScheme {
    /// A scheme with identifier fields of `id_bits` bits.
    pub fn new(id_bits: u32) -> Self {
        AcyclicityScheme { id_bits }
    }

    fn parse(&self, cert: &crate::bits::Certificate) -> Option<TreeFields> {
        let mut r = BitReader::new(cert);
        let f = TreeFields::read(&mut r, self.id_bits)?;
        r.exhausted().then_some(f)
    }
}

impl Prover for AcyclicityScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.acyclicity.prover");
        if !instance.graph().is_tree() {
            return Err(ProverError::NotAYesInstance);
        }
        let fields = honest_tree_fields(instance, NodeId(0));
        Ok(Assignment::new(
            fields
                .iter()
                .enumerate()
                .map(|(v, f)| {
                    let mut w = BitWriter::new();
                    f.write(&mut w, self.id_bits);
                    w.finish_for(v)
                })
                .collect(),
        ))
    }
}

impl Verifier for AcyclicityScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let mine = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        verify_tree_position(view, self.id_bits, &mine, |c| self.parse(c))?;
        // Every incident edge must be a tree edge: each neighbor is my
        // parent, or claims me as its parent one level further.
        for &(nid, _, cert) in &view.neighbors {
            let nf = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            if nf.root != mine.root {
                return Err(RejectReason::RootMismatch);
            }
            let i_am_their_parent = nf.parent == view.id && nf.dist == mine.dist + 1;
            let they_are_my_parent =
                nid == mine.parent && nf.dist + 1 == mine.dist && view.id != mine.root;
            if !(i_am_their_parent || they_are_my_parent) {
                return Err(RejectReason::NonTreeEdge);
            }
        }
        Ok(())
    }
}

impl Scheme for AcyclicityScheme {
    fn name(&self) -> String {
        "acyclicity".into()
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Folklore O(log n), tight by [31, 37].
        DeclaredBound::LogN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::{run_scheme, run_verification};
    use crate::schemes::common::id_bits_for;
    use locert_graph::{generators, IdAssignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_trees() {
        let mut rng = StdRng::seed_from_u64(81);
        for n in [1usize, 2, 7, 30] {
            let g = generators::random_tree(n, &mut rng);
            let ids = IdAssignment::shuffled(n, &mut rng);
            let inst = Instance::new(&g, &ids);
            let scheme = AcyclicityScheme::new(id_bits_for(&inst));
            assert!(run_scheme(&scheme, &inst).unwrap().accepted(), "n = {n}");
        }
    }

    #[test]
    fn prover_rejects_cycles() {
        let g = generators::cycle(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(id_bits_for(&inst));
        assert_eq!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn cycle_not_certifiable_exhaustively() {
        // C_3 with 2-bit ids: no assignment with ≤ 6-bit certificates is
        // accepted (certificates need exactly 6 bits to parse; larger
        // reject on parse).
        let g = generators::cycle(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(2);
        let res = attacks::exhaustive_soundness(&scheme, &inst, 6, 5_000_000);
        assert!(res.is_ok(), "cycle was certified as a tree: {res:?}");
    }

    #[test]
    fn random_attacks_on_cycles_rejected() {
        let mut rng = StdRng::seed_from_u64(82);
        for n in [4usize, 6, 9] {
            let g = generators::cycle(n);
            let ids = IdAssignment::shuffled(n, &mut rng);
            let inst = Instance::new(&g, &ids);
            let scheme = AcyclicityScheme::new(id_bits_for(&inst));
            assert!(
                attacks::random_assignments(&scheme, &inst, 12, &mut rng, 300).is_none(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn tree_plus_chord_rejected_with_replayed_certs() {
        // Take honest certificates for a path, then verify them on the
        // same vertex set with an extra chord: the chord endpoints see a
        // non-tree edge and reject.
        let path = generators::path(6);
        let ids = IdAssignment::contiguous(6);
        let inst_path = Instance::new(&path, &ids);
        let scheme = AcyclicityScheme::new(id_bits_for(&inst_path));
        let honest = scheme.assign(&inst_path).unwrap();
        let chorded = path.with_edges([(0, 3)]).unwrap();
        let inst_chord = Instance::new(&chorded, &ids);
        let out = run_verification(&scheme, &inst_chord, &honest);
        assert!(!out.accepted());
    }

    #[test]
    fn mutation_attacks_on_near_tree() {
        let mut rng = StdRng::seed_from_u64(83);
        let tree = generators::random_tree(8, &mut rng);
        let ids = IdAssignment::contiguous(8);
        // Add one extra edge to create a single cycle.
        let mut extra = None;
        'outer: for u in 0..8 {
            for v in (u + 1)..8 {
                if !tree.has_edge(u.into(), v.into()) {
                    extra = Some((u, v));
                    break 'outer;
                }
            }
        }
        let g = tree.with_edges([extra.unwrap()]).unwrap();
        let inst_tree = Instance::new(&tree, &ids);
        let scheme = AcyclicityScheme::new(id_bits_for(&inst_tree));
        let base = scheme.assign(&inst_tree).unwrap();
        let inst_bad = Instance::new(&g, &ids);
        assert!(attacks::mutation_attacks(&scheme, &inst_bad, &base, &mut rng, 400).is_none());
    }
}
