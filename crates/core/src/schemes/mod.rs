//! Every certification scheme from the paper, one module per result.

pub mod acyclicity;
pub mod combinators;
pub mod common;
pub mod depth2_fo;
pub mod existential_fo;
pub mod kernel_mso;
pub mod minor_free;
pub mod mso_tree;
pub mod spanning_tree;
pub mod tree_depth_bound;
pub mod tree_diameter;
pub mod treedepth;
pub mod universal;
pub mod word_path;
