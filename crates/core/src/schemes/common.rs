//! Shared helpers for scheme implementations.

use crate::bits::{BitReader, BitWriter};
use crate::framework::Instance;
use locert_graph::Ident;

/// The identifier field width a scheme should use for `instance`:
/// enough bits for every identifier present (`O(log n)` for polynomial
/// ranges).
pub fn id_bits_for(instance: &Instance<'_>) -> u32 {
    instance.ids().max_bits().max(1)
}

/// Writes an identifier as a fixed-width field.
///
/// # Panics
///
/// Panics if the identifier does not fit in `width` bits.
pub fn write_ident(w: &mut BitWriter, id: Ident, width: u32) {
    w.write(id.value(), width);
}

/// Reads an identifier written by [`write_ident`].
pub fn read_ident(r: &mut BitReader<'_>, width: u32) -> Option<Ident> {
    r.read(width).map(Ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Instance;
    use locert_graph::{generators, IdAssignment};

    #[test]
    fn ident_roundtrip() {
        let mut w = BitWriter::new();
        write_ident(&mut w, Ident(42), 7);
        let c = w.finish();
        let mut r = BitReader::new(&c);
        assert_eq!(read_ident(&mut r, 7), Some(Ident(42)));
    }

    #[test]
    fn id_bits_scale_with_assignment() {
        let g = generators::path(5);
        let small = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &small);
        assert_eq!(id_bits_for(&inst), 3);
        let big = IdAssignment::new((0..5).map(|i| Ident(1000 + i)).collect()).unwrap();
        let inst2 = Instance::new(&g, &big);
        assert_eq!(id_bits_for(&inst2), 10);
    }
}
