//! FO/MSO certification on bounded-treedepth graphs via certified
//! kernelization (Theorem 2.6, Propositions 6.2–6.4).
//!
//! The certificate of a vertex at depth `m` of a coherent `t`-model
//! extends the Theorem 2.4 treedepth certificate with
//!
//! 1. one *pruned* flag per ancestor (including the vertex itself):
//!    whether that ancestor's subtree was pruned during the `k`-reduction;
//! 2. one *end type* per ancestor (Section 6.1), coded as an index into
//! 3. a serialized *type table* — the interned `(ancestor vector,
//!    children-type multiset)` data of every end type, identical at every
//!    vertex. Its size depends only on `k` and `t` (Proposition 6.2), not
//!    on `n`.
//!
//! Verification (Proposition 6.4): the treedepth checks; table equality
//! with neighbors; each vertex audits its own end type — the ancestor
//! vector against its actual adjacency (it sees its ancestors' ids), and
//! the children-type multiset against the types reported by the visible
//! members of its children's subtrees (coherence, enforced by the exit
//! checks of Theorem 2.4, guarantees every child is visible); a pruned
//! child must leave exactly `k` kept siblings of its type (Lemma 6.1).
//! Finally every vertex *expands the root's end type into the kernel
//! graph `H`* — a constant-size description — and checks `H ⊨ φ`, which
//! by `G ≃_k H` (Proposition 6.3) decides `G ⊨ φ`.

use crate::bits::{width_for, BitReader, BitWriter, Certificate};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::treedepth::{
    check_own_td, check_td_edges, honest_td_certs, model_for, ModelStrategy, TdCert,
};
#[cfg(test)]
use locert_graph::NodeId;
use locert_graph::{Graph, GraphBuilder};
use locert_kernel::{k_reduce, TypeId};
use locert_logic::depth::{is_fo, quantifier_depth};
use locert_logic::eval::models;
use locert_logic::Formula;
use std::collections::HashMap;
use std::sync::Mutex;

/// A fast decision procedure for `φ` on expanded kernels (see
/// [`KernelMsoScheme::with_evaluator`]). `Send + Sync` because verifiers
/// run concurrently across vertices (`locert-par`).
pub type KernelEvaluator = Box<dyn Fn(&Graph) -> bool + Send + Sync>;

/// Hard cap on the expanded kernel size a verifier will accept; beyond it
/// the certificate is rejected (the bound `f(t, φ)` is a constant for
/// fixed parameters, so honest certificates at experiment scale stay far
/// below).
pub const KERNEL_EXPANSION_CAP: usize = 4000;

/// One serialized type-table entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SerType {
    /// Depth of vertices carrying this type.
    pub depth: usize,
    /// Adjacency to the ancestors at depths `0..depth`.
    pub anc: Vec<bool>,
    /// Children-type multiset: (type index, multiplicity).
    pub children: Vec<(u32, usize)>,
}

/// The serialized table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SerTable {
    /// Entries indexed by type id.
    pub types: Vec<SerType>,
}

impl SerTable {
    fn type_bits(&self) -> u32 {
        width_for(self.types.len().max(1) as u64 - 1)
    }

    fn write(&self, w: &mut BitWriter, t: usize, k: usize) {
        w.write(self.types.len() as u64, 12);
        let tb = self.type_bits();
        let db = width_for(t as u64);
        let mb = width_for(k as u64);
        for ty in &self.types {
            w.write(ty.depth as u64, db);
            for &b in &ty.anc {
                w.write_bit(b);
            }
            w.write(ty.children.len() as u64, 8);
            for &(child, mult) in &ty.children {
                w.write(child as u64, tb);
                w.write(mult as u64, mb);
            }
        }
    }

    fn read(r: &mut BitReader<'_>, t: usize, k: usize) -> Option<SerTable> {
        let count = r.read(12)? as usize;
        let tb = width_for(count.max(1) as u64 - 1);
        let db = width_for(t as u64);
        let mb = width_for(k as u64);
        let mut types = Vec::with_capacity(count);
        for _ in 0..count {
            let depth = r.read(db)? as usize;
            if depth >= t {
                return None;
            }
            let mut anc = Vec::with_capacity(depth);
            for _ in 0..depth {
                anc.push(r.read_bit()?);
            }
            let n_children = r.read(8)? as usize;
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                let child = r.read(tb)? as u32;
                let mult = r.read(mb)? as usize;
                children.push((child, mult));
            }
            types.push(SerType {
                depth,
                anc,
                children,
            });
        }
        Some(SerTable { types })
    }

    /// Structural well-formedness: references in range, multiplicities in
    /// `1..=k`, children one level deeper, children lists strictly sorted
    /// by type id (canonical form, so equal tables have equal bits), no
    /// duplicate entries (so a type id is determined by its data).
    fn well_formed(&self, k: usize) -> bool {
        let n = self.types.len();
        let mut seen = std::collections::HashSet::new();
        for ty in &self.types {
            if !seen.insert(ty) {
                return false;
            }
            let mut last_child: Option<u32> = None;
            for &(child, mult) in &ty.children {
                if child as usize >= n || mult == 0 || mult > k {
                    return false;
                }
                if self.types[child as usize].depth != ty.depth + 1 {
                    return false;
                }
                if last_child.is_some_and(|l| l >= child) {
                    return false;
                }
                last_child = Some(child);
            }
        }
        true
    }

    /// Expands `root` into the kernel graph. Returns `None` when the
    /// expansion exceeds `cap` vertices or the root has non-zero depth.
    pub fn expand(&self, root: u32, cap: usize) -> Option<Graph> {
        if self.types.get(root as usize)?.depth != 0 {
            return None;
        }
        // Nodes: (type, ancestor node indices root→parent).
        let mut node_types: Vec<u32> = vec![root];
        let mut ancestors: Vec<Vec<usize>> = vec![vec![]];
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(node) = queue.pop_front() {
            let ty = &self.types[node_types[node] as usize];
            // Edges to ancestors per the ancestor vector.
            for (j, &adj) in ty.anc.iter().enumerate() {
                if adj {
                    edges.push((ancestors[node][j], node));
                }
            }
            for &(child_ty, mult) in &ty.children {
                for _ in 0..mult {
                    let idx = node_types.len();
                    if idx >= cap {
                        return None;
                    }
                    node_types.push(child_ty);
                    let mut chain = ancestors[node].clone();
                    chain.push(node);
                    ancestors.push(chain);
                    queue.push_back(idx);
                }
            }
        }
        let mut b = GraphBuilder::new(node_types.len());
        for (u, v) in edges {
            b.add_edge(u, v).ok()?;
        }
        Some(b.build())
    }
}

/// Parsed kernel-MSO certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
struct KernelCert {
    td: TdCert,
    /// Pruned flag per ancestor, aligned with `td.ancestors`.
    flags: Vec<bool>,
    /// End type per ancestor, aligned with `td.ancestors`.
    types: Vec<u32>,
    table: SerTable,
}

/// Certifies an FO sentence on graphs of treedepth ≤ `t` (Theorem 2.6).
pub struct KernelMsoScheme {
    id_bits: u32,
    t: usize,
    k: usize,
    formula: Formula,
    strategy: ModelStrategy,
    /// Optional fast decision procedure for `φ` on the expanded kernel,
    /// replacing the brute-force FO evaluator. **Must be semantically
    /// equivalent to `φ`** — used e.g. by `P_t`-minor-freeness, where the
    /// sentence `¬∃x₁…x_t path` has quantifier depth `t` and brute-force
    /// evaluation is `|H|^t`, while a bounded path search is cheap.
    evaluator: Option<KernelEvaluator>,
    /// Memo for [`KernelMsoScheme::kernel_satisfies_phi`]; a `Mutex`
    /// (not `RefCell`) because verification runs vertices in parallel.
    phi_cache: Mutex<HashMap<(u64, u32), bool>>,
}

impl std::fmt::Debug for KernelMsoScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelMsoScheme")
            .field("id_bits", &self.id_bits)
            .field("t", &self.t)
            .field("k", &self.k)
            .field("formula", &self.formula.to_string())
            .field("has_custom_evaluator", &self.evaluator.is_some())
            .finish()
    }
}

impl KernelMsoScheme {
    /// Builds the scheme for an FO sentence `phi` on graphs of treedepth
    /// at most `t`. The reduction parameter `k` is `phi`'s quantifier
    /// depth.
    ///
    /// Returns `None` if `phi` is not a closed FO formula. (MSO sentences
    /// are handled by first translating to FO on bounded-treedepth
    /// classes, per Theorem 3.2 — the translation itself is outside this
    /// crate's scope.)
    pub fn new(id_bits: u32, t: usize, phi: Formula) -> Option<Self> {
        if !is_fo(&phi) || !phi.is_sentence() {
            return None;
        }
        let k = quantifier_depth(&phi).max(1);
        Some(KernelMsoScheme {
            id_bits,
            t,
            k,
            formula: phi,
            strategy: ModelStrategy::Auto,
            evaluator: None,
            phi_cache: Mutex::new(HashMap::new()),
        })
    }

    /// Overrides the prover's model strategy.
    pub fn with_strategy(mut self, strategy: ModelStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Installs a fast kernel evaluator equivalent to `φ` (see the field
    /// docs; the caller owns the equivalence proof).
    pub fn with_evaluator(
        mut self,
        evaluator: impl Fn(&Graph) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.evaluator = Some(Box::new(evaluator));
        self
    }

    /// The reduction parameter `k` (the formula's quantifier depth).
    pub fn k(&self) -> usize {
        self.k
    }

    fn parse(&self, cert: &Certificate) -> Option<KernelCert> {
        let mut r = BitReader::new(cert);
        let td = TdCert::read(&mut r, self.id_bits, self.t)?;
        let len = td.ancestors.len();
        let mut flags = Vec::with_capacity(len);
        for _ in 0..len {
            flags.push(r.read_bit()?);
        }
        // The type-id field width is set by the count, which sits in the
        // table at the end; write the count redundantly before the types.
        let count = r.read(12)? as usize;
        let tb = width_for(count.max(1) as u64 - 1);
        let mut types = Vec::with_capacity(len);
        for _ in 0..len {
            let ty = r.read(tb)? as u32;
            if ty as usize >= count {
                return None;
            }
            types.push(ty);
        }
        let table = SerTable::read(&mut r, self.t, self.k)?;
        if table.types.len() != count || !r.exhausted() {
            return None;
        }
        Some(KernelCert {
            td,
            flags,
            types,
            table,
        })
    }

    fn kernel_satisfies_phi(&self, table: &SerTable, root: u32) -> bool {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        table.hash(&mut hasher);
        let key = (hasher.finish(), root);
        // A panicked sibling thread poisons the mutex; the cache itself
        // is always in a consistent state, so keep going instead of
        // cascading the panic through every later verification.
        if let Some(&hit) = self
            .phi_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            return hit;
        }
        let result = table.expand(root, KERNEL_EXPANSION_CAP).is_some_and(|h| {
            h.num_nodes() > 0
                && match &self.evaluator {
                    Some(f) => f(&h),
                    None => models(&h, &self.formula),
                }
        });
        self.phi_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, result);
        result
    }
}

impl Prover for KernelMsoScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.kernel_mso.prover");
        let g = instance.graph();
        let model = model_for(instance, self.t, &self.strategy)?;
        let red = k_reduce(g, &model, self.k);
        // Serialize the type table.
        let table = SerTable {
            types: (0..red.types.len())
                .map(|i| {
                    let data = red.types.get(TypeId(i as u32));
                    SerType {
                        depth: data.ancestors.len(),
                        anc: data.ancestors.clone(),
                        children: data
                            .children
                            .iter()
                            .map(|(&TypeId(c), &m)| (c, m))
                            .collect(),
                    }
                })
                .collect(),
        };
        if table.types.len() >= (1 << 12) {
            return Err(ProverError::WitnessUnavailable(
                "type table exceeds the 12-bit index space".into(),
            ));
        }
        // Completeness gate: check φ on the expanded kernel — the same
        // object the verifier will inspect.
        let root_type = red.end_type[model.root().0];
        if !self.kernel_satisfies_phi(&table, root_type.0) {
            return Err(ProverError::NotAYesInstance);
        }
        let td = honest_td_certs(instance, &model);
        let tb = table.type_bits();
        let certs = g
            .nodes()
            .map(|v| {
                let ancs = model.ancestors(v);
                let mut w = BitWriter::new();
                td[v.0].write(&mut w, self.id_bits, self.t);
                w.component("pruned-flags");
                for &a in &ancs {
                    w.write_bit(red.pruned[a.0]);
                }
                w.component("end-types");
                w.write(table.types.len() as u64, 12);
                for &a in &ancs {
                    w.write(red.end_type[a.0].0 as u64, tb);
                }
                w.component("kernel-table");
                table.write(&mut w, self.t, self.k);
                w.finish_for(v.0)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl Verifier for KernelMsoScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        // 1. Treedepth layer, on certificates parsed exactly once: the
        //    embedded TdCert checks run against the same parses the
        //    kernel-layer checks below reuse.
        let mine = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        check_own_td(view.id, &mine.td, self.t)?;
        let mut nbrs = Vec::with_capacity(view.neighbors.len());
        for &(_, _, cert) in &view.neighbors {
            nbrs.push(
                self.parse(cert)
                    .ok_or(RejectReason::MalformedNeighborCertificate)?,
            );
        }
        let td_refs: Vec<&TdCert> = nbrs.iter().map(|nc| &nc.td).collect();
        check_td_edges(view.id, &mine.td, &td_refs)?;
        let td = &mine.td;
        let m = td.depth();
        if mine.flags.len() != m + 1 || mine.types.len() != m + 1 {
            return Err(RejectReason::MalformedCertificate);
        }
        // 2. Table integrity.
        if !mine.table.well_formed(self.k) {
            return Err(RejectReason::MalformedCertificate);
        }
        // 3. Identical tables; shared-ancestor types and flags agree.
        for nc in &nbrs {
            if nc.table != mine.table {
                return Err(RejectReason::CopyMismatch);
            }
            let shared = mine.types.len().min(nc.types.len());
            let my_off = mine.types.len() - shared;
            let n_off = nc.types.len() - shared;
            if mine.types[my_off..] != nc.types[n_off..]
                || mine.flags[my_off..] != nc.flags[n_off..]
            {
                return Err(RejectReason::CopyMismatch);
            }
        }
        // 4. Each carried type sits at the right depth.
        for (i, &ty) in mine.types.iter().enumerate() {
            let depth = m - i;
            if mine.table.types[ty as usize].depth != depth {
                return Err(RejectReason::AutomatonStateClash);
            }
        }
        // 5. My own type's ancestor vector against my real adjacency.
        let my_type = &mine.table.types[mine.types[0] as usize];
        for j in 0..m {
            let anc_id = mine.td.ancestors[m - j];
            if my_type.anc[j] != view.has_neighbor(anc_id) {
                return Err(RejectReason::AdjacencyMismatch);
            }
        }
        // 6. Children audit: collect (child id, (type, flag)) from
        //    strict descendants among my neighbors. A sorted vector
        //    replaces the per-vertex HashMap: duplicates are adjacent
        //    after the sort, and the declared children list is already
        //    in canonical sorted order (`well_formed`), so the multiset
        //    comparison is a linear slice walk.
        let mut children: Vec<(u64, (u32, bool))> = Vec::new();
        for nc in &nbrs {
            let nm = nc.td.depth();
            if nm < m + 1 {
                continue;
            }
            // Strict descendant iff my list is a proper suffix of theirs
            // (already guaranteed comparable by the td layer).
            let off = nm - m;
            if nc.td.ancestors[off..] != mine.td.ancestors[..] {
                continue;
            }
            let child_idx = off - 1; // their ancestor at depth m + 1.
            let child_id = nc.td.ancestors[child_idx].value();
            children.push((child_id, (nc.types[child_idx], nc.flags[child_idx])));
        }
        children.sort_unstable();
        for w in children.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 != w[1].1 {
                return Err(RejectReason::CopyMismatch);
            }
        }
        children.dedup();
        // Multiset of kept-children types, as sorted (type, count) runs.
        let mut kept: Vec<u32> = Vec::with_capacity(children.len());
        let mut pruned_types: Vec<u32> = Vec::new();
        for &(_, (ty, pruned)) in &children {
            if pruned {
                pruned_types.push(ty);
            } else {
                kept.push(ty);
            }
        }
        kept.sort_unstable();
        let mut kept_counts: Vec<(u32, usize)> = Vec::new();
        for &ty in &kept {
            match kept_counts.last_mut() {
                Some((last, count)) if *last == ty => *count += 1,
                _ => kept_counts.push((ty, 1)),
            }
        }
        if kept_counts != my_type.children {
            return Err(RejectReason::CounterMismatch);
        }
        // Lemma 6.1: every pruned child type has exactly k kept siblings.
        for ty in pruned_types {
            let declared = my_type
                .children
                .binary_search_by_key(&ty, |&(c, _)| c)
                .ok()
                .map(|i| my_type.children[i].1);
            if declared != Some(self.k) {
                return Err(RejectReason::CounterMismatch);
            }
        }
        // 7. The kernel satisfies φ. The list is non-empty by parse
        // (TdCert enforces 1 ≤ len), but an adversarial certificate
        // should never be able to panic the verifier, so reject instead.
        let Some(&root_type) = mine.types.last() else {
            return Err(RejectReason::MalformedCertificate);
        };
        if self.kernel_satisfies_phi(&mine.table, root_type) {
            Ok(())
        } else {
            Err(RejectReason::NotAccepting)
        }
    }
}

impl Scheme for KernelMsoScheme {
    fn name(&self) -> String {
        format!("kernel-mso[t={}, k={}]", self.t, self.k)
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Theorem 2.6: O(t log n) treedepth layer + f(t, φ) table.
        DeclaredBound::PolyTdLogN { td: self.t as u32 }
    }
}

/// The global+local variant of the paper's Section 7.1 remark (and
/// \[27]): vertices receive one **shared global certificate** — here the
/// constant-size type table — plus short local certificates (the
/// Theorem 2.4 layer, pruned flags, and type indices).
///
/// Semantics are identical to [`KernelMsoScheme`] (the implementation
/// reconstitutes full certificates by appending the global part, which is
/// exactly where the local-only scheme keeps the table), but the *sizes*
/// split: the `f(t, φ)` table is paid once globally, the per-vertex cost
/// drops to `O(t log n)`.
pub struct KernelMsoGlobalScheme {
    inner: KernelMsoScheme,
}

impl std::fmt::Debug for KernelMsoGlobalScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelMsoGlobalScheme")
            .field("inner", &self.inner)
            .finish()
    }
}

/// Outcome of a global+local run: acceptance and the two size components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalOutcome {
    /// Whether every vertex accepted.
    pub accepted: bool,
    /// Bits of the shared global certificate.
    pub global_bits: usize,
    /// Maximum bits over the per-vertex local certificates.
    pub max_local_bits: usize,
}

impl KernelMsoGlobalScheme {
    /// Builds the scheme (same parameters as [`KernelMsoScheme::new`]).
    pub fn new(id_bits: u32, t: usize, phi: Formula) -> Option<Self> {
        Some(KernelMsoGlobalScheme {
            inner: KernelMsoScheme::new(id_bits, t, phi)?,
        })
    }

    /// Overrides the prover's model strategy.
    pub fn with_strategy(mut self, strategy: ModelStrategy) -> Self {
        self.inner = self.inner.with_strategy(strategy);
        self
    }

    /// The bit length of the serialized table inside `cert` (the table is
    /// the suffix of every local-only certificate).
    fn table_bits(&self, cert: &Certificate) -> Option<usize> {
        let parsed = self.inner.parse(cert)?;
        let mut w = BitWriter::new();
        parsed.table.write(&mut w, self.inner.t, self.inner.k);
        Some(w.len_bits())
    }

    fn slice(cert: &Certificate, from: usize, to: usize) -> Certificate {
        let mut r = BitReader::new(cert);
        let mut skip = from;
        while skip > 0 {
            let take = skip.min(56) as u32;
            r.read(take).expect("slice range inside certificate");
            skip -= take as usize;
        }
        let mut w = BitWriter::new();
        let mut left = to - from;
        while left > 0 {
            let take = left.min(56) as u32;
            let chunk = r.read(take).expect("slice range inside certificate");
            w.write(chunk, take);
            left -= take as usize;
        }
        w.finish()
    }

    /// Prover: the shared global certificate (the table) and the
    /// per-vertex locals.
    ///
    /// # Errors
    ///
    /// Same as [`KernelMsoScheme`]'s prover.
    pub fn assign_split(
        &self,
        instance: &Instance<'_>,
    ) -> Result<(Certificate, Assignment), ProverError> {
        let full = self.inner.assign(instance)?;
        let n = instance.graph().num_nodes();
        let first = full.cert(locert_graph::NodeId(0));
        let tbits = self.table_bits(first).ok_or_else(|| {
            ProverError::WitnessUnavailable("honest certificate failed to re-parse".into())
        })?;
        let global = Self::slice(first, first.len_bits() - tbits, first.len_bits());
        let locals = Assignment::new(
            (0..n)
                .map(|v| {
                    let c = full.cert(locert_graph::NodeId(v));
                    Self::slice(c, 0, c.len_bits() - tbits)
                })
                .collect(),
        );
        Ok((global, locals))
    }

    /// One vertex's verdict given its local view and the shared global
    /// certificate.
    pub fn verify_with_global(&self, view: &LocalView<'_>, global: &Certificate) -> bool {
        let glue = |local: &Certificate| {
            let mut w = BitWriter::new();
            w.write_cert(local);
            w.write_cert(global);
            w.finish()
        };
        let own = glue(view.cert);
        let nbr_certs: Vec<Certificate> = view.neighbors.iter().map(|(_, _, c)| glue(c)).collect();
        let full_view = LocalView {
            id: view.id,
            input: view.input,
            cert: &own,
            neighbors: view
                .neighbors
                .iter()
                .zip(nbr_certs.iter())
                .map(|(&(id, input, _), c)| (id, input, c))
                .collect(),
        };
        self.inner.verify(&full_view)
    }

    /// Runs the full global+local pipeline.
    ///
    /// # Errors
    ///
    /// Propagates the prover's error.
    pub fn run(&self, instance: &Instance<'_>) -> Result<GlobalOutcome, ProverError> {
        let (global, locals) = self.assign_split(instance)?;
        let accepted = instance.graph().nodes().all(|v| {
            let view = crate::framework::view_of(instance, &locals, v);
            self.verify_with_global(&view, &global)
        });
        Ok(GlobalOutcome {
            accepted,
            global_bits: global.len_bits(),
            max_local_bits: locals.max_bits(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_scheme, run_verification};
    use crate::schemes::common::id_bits_for;
    use locert_graph::{generators, IdAssignment};
    use locert_logic::props;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disconnected_instance_is_a_typed_error_not_a_panic() {
        // Regression: model_for handed disconnected graphs straight to
        // the treedepth solvers, which assert connectivity.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme =
            KernelMsoScheme::new(id_bits_for(&inst), 2, props::has_dominating_vertex()).unwrap();
        assert!(matches!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::WitnessUnavailable(_)
        ));
        let split =
            KernelMsoGlobalScheme::new(id_bits_for(&inst), 2, props::has_dominating_vertex())
                .unwrap();
        assert!(matches!(
            split.run(&inst).unwrap_err(),
            ProverError::WitnessUnavailable(_)
        ));
    }

    fn check_matches_ground_truth(g: &Graph, t: usize, phi: &Formula, strategy: ModelStrategy) {
        let ids = IdAssignment::contiguous(g.num_nodes());
        let inst = Instance::new(g, &ids);
        let scheme = KernelMsoScheme::new(id_bits_for(&inst), t, phi.clone())
            .unwrap()
            .with_strategy(strategy);
        let expected = models(g, phi);
        match run_scheme(&scheme, &inst) {
            Ok(out) => {
                assert!(
                    out.accepted(),
                    "verifier rejected honest prover: {phi} on {g:?}"
                );
                assert!(expected, "accepted a no-instance: {phi} on {g:?}");
            }
            Err(ProverError::NotAYesInstance) => {
                assert!(!expected, "refused a yes-instance: {phi} on {g:?}");
            }
            Err(e) => panic!("prover error for {} ({phi} on {g:?}): {e}", scheme.name()),
        }
    }

    #[test]
    fn stars_and_domination() {
        // Stars (treedepth 2): domination holds; on a path it does not.
        check_matches_ground_truth(
            &generators::star(9),
            2,
            &props::has_dominating_vertex(),
            ModelStrategy::Auto,
        );
        check_matches_ground_truth(
            &generators::path(7),
            3,
            &props::has_dominating_vertex(),
            ModelStrategy::Auto,
        );
    }

    #[test]
    fn triangle_freeness_on_bounded_treedepth() {
        let mut rng = StdRng::seed_from_u64(151);
        for _ in 0..6 {
            let (g, parents) = generators::random_bounded_treedepth(14, 3, 0.5, &mut rng);
            check_matches_ground_truth(
                &g,
                3,
                &props::triangle_free(),
                ModelStrategy::Explicit(parents),
            );
        }
    }

    #[test]
    fn path_freeness_formula() {
        // P_4-freeness on stars (true) and paths (false).
        check_matches_ground_truth(
            &generators::star(8),
            2,
            &props::path_minor_free(4),
            ModelStrategy::Auto,
        );
        check_matches_ground_truth(
            &generators::path(6),
            3,
            &props::path_minor_free(4),
            ModelStrategy::Auto,
        );
    }

    #[test]
    fn certificate_sizes_scale_with_t_log_n_plus_constant() {
        // Same t and φ, growing n: the certificate splits into an
        // O(t log n) part and a constant table.
        let phi = props::has_dominating_vertex();
        let mut sizes = Vec::new();
        for exp in [3u32, 5, 7] {
            let n = 1usize << exp;
            let g = generators::star(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let scheme = KernelMsoScheme::new(id_bits_for(&inst), 2, phi.clone()).unwrap();
            let out = run_scheme(&scheme, &inst).unwrap();
            assert!(out.accepted());
            sizes.push(out.max_bits());
        }
        // Growth between successive doublings is bounded by the id-width
        // growth (a few bits per extra id bit), far below the table size.
        assert!(sizes[2] - sizes[1] <= 30, "sizes {sizes:?}");
    }

    #[test]
    fn forged_type_rejected() {
        let g = generators::star(6);
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let scheme =
            KernelMsoScheme::new(id_bits_for(&inst), 2, props::has_dominating_vertex()).unwrap();
        let asg = scheme.assign(&inst).unwrap();
        // Flip each bit of one leaf's certificate in turn; all must be
        // rejected (no single-bit forgery survives).
        let victim = NodeId(3);
        let base = asg.cert(victim).clone();
        for bit in 0..base.len_bits() {
            let mut forged = asg.clone();
            *forged.cert_mut(victim) = base.with_bit_flipped(bit);
            let out = run_verification(&scheme, &inst, &forged);
            assert!(!out.accepted(), "bit {bit} forgery accepted");
        }
    }

    #[test]
    fn replay_across_instances_rejected() {
        // Certificates from a dominated graph replayed on a path of the
        // same size: must fail.
        let star = generators::star(6);
        let path = generators::path(6);
        let ids = IdAssignment::contiguous(6);
        let inst_star = Instance::new(&star, &ids);
        let inst_path = Instance::new(&path, &ids);
        let scheme =
            KernelMsoScheme::new(id_bits_for(&inst_star), 3, props::has_dominating_vertex())
                .unwrap();
        let honest = scheme.assign(&inst_star).unwrap();
        assert!(!run_verification(&scheme, &inst_path, &honest).accepted());
    }

    #[test]
    fn kernel_reduces_large_stars_to_constant_table() {
        // The table of a star does not grow with n.
        let phi = props::has_dominating_vertex();
        let mut table_sizes = Vec::new();
        for n in [8usize, 64, 512] {
            let g = generators::star(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let scheme = KernelMsoScheme::new(id_bits_for(&inst), 2, phi.clone()).unwrap();
            let asg = scheme.assign(&inst).unwrap();
            let parsed = scheme.parse(asg.cert(NodeId(0))).unwrap();
            table_sizes.push(parsed.table.types.len());
        }
        assert_eq!(table_sizes[0], table_sizes[1]);
        assert_eq!(table_sizes[1], table_sizes[2]);
    }

    #[test]
    fn expansion_reconstructs_kernel() {
        // For a star with k = 2, the expansion of the root type is the
        // 3-vertex star.
        let g = generators::star(10);
        let ids = IdAssignment::contiguous(10);
        let inst = Instance::new(&g, &ids);
        let phi = props::has_dominating_vertex(); // depth 2 → k = 2.
        let scheme = KernelMsoScheme::new(id_bits_for(&inst), 2, phi).unwrap();
        let asg = scheme.assign(&inst).unwrap();
        let parsed = scheme.parse(asg.cert(NodeId(0))).unwrap();
        let root_ty = *parsed.types.last().unwrap();
        let h = parsed.table.expand(root_ty, 100).unwrap();
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn ill_formed_table_rejected() {
        let g = generators::star(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme =
            KernelMsoScheme::new(id_bits_for(&inst), 2, props::has_dominating_vertex()).unwrap();
        // A table whose child multiplicity exceeds k is rejected by
        // well_formed.
        let bad = SerTable {
            types: vec![
                SerType {
                    depth: 0,
                    anc: vec![],
                    children: vec![(1, 99)],
                },
                SerType {
                    depth: 1,
                    anc: vec![true],
                    children: vec![],
                },
            ],
        };
        assert!(!bad.well_formed(scheme.k()));
        let good = SerTable {
            types: vec![
                SerType {
                    depth: 0,
                    anc: vec![],
                    children: vec![(1, 2)],
                },
                SerType {
                    depth: 1,
                    anc: vec![true],
                    children: vec![],
                },
            ],
        };
        assert!(good.well_formed(2));
        // Expansion of the good table: root + 2 children, edges to root.
        let h = good.expand(0, 10).unwrap();
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn expansion_cap_enforced() {
        // A self-exploding table: depth-0 root with many children each
        // with many children.
        let t = SerTable {
            types: vec![
                SerType {
                    depth: 0,
                    anc: vec![],
                    children: vec![(1, 3)],
                },
                SerType {
                    depth: 1,
                    anc: vec![true],
                    children: vec![(2, 3)],
                },
                SerType {
                    depth: 2,
                    anc: vec![true, true],
                    children: vec![],
                },
            ],
        };
        assert!(t.expand(0, 5).is_none());
        assert!(t.expand(0, 100).is_some());
        // Root must have depth 0.
        assert!(t.expand(1, 100).is_none());
    }

    #[test]
    fn global_variant_agrees_and_shrinks_locals() {
        let phi = props::has_dominating_vertex();
        for n in [16usize, 128, 1024] {
            let g = generators::star(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let local_only = KernelMsoScheme::new(id_bits_for(&inst), 2, phi.clone()).unwrap();
            let split = KernelMsoGlobalScheme::new(id_bits_for(&inst), 2, phi.clone()).unwrap();
            let full = run_scheme(&local_only, &inst).unwrap();
            assert!(full.accepted());
            let out = split.run(&inst).unwrap();
            assert!(out.accepted);
            // Local + global = local-only total per vertex.
            assert_eq!(out.max_local_bits + out.global_bits, full.max_bits());
            assert!(out.max_local_bits < full.max_bits());
        }
    }

    #[test]
    fn global_variant_soundness_spot_checks() {
        let phi = props::has_dominating_vertex();
        let g = generators::star(8);
        let ids = IdAssignment::contiguous(8);
        let inst = Instance::new(&g, &ids);
        let split = KernelMsoGlobalScheme::new(id_bits_for(&inst), 2, phi).unwrap();
        let (global, locals) = split.assign_split(&inst).unwrap();
        // Corrupt the global table: everyone who reads it rejects.
        let bad_global = global.with_bit_flipped(global.len_bits() / 2);
        let rejected = g.nodes().any(|v| {
            let view = crate::framework::view_of(&inst, &locals, v);
            !split.verify_with_global(&view, &bad_global)
        });
        assert!(rejected, "corrupted global table went unnoticed");
        // Corrupt one local certificate.
        let mut bad_locals = locals.clone();
        let c = bad_locals.cert(NodeId(3)).clone();
        *bad_locals.cert_mut(NodeId(3)) = c.with_bit_flipped(1);
        let rejected_local = g.nodes().any(|v| {
            let view = crate::framework::view_of(&inst, &bad_locals, v);
            !split.verify_with_global(&view, &global)
        });
        assert!(rejected_local);
    }

    #[test]
    fn random_larger_instances_with_witness() {
        let mut rng = StdRng::seed_from_u64(152);
        let (g, parents) = generators::random_bounded_treedepth(60, 3, 0.6, &mut rng);
        let ids = IdAssignment::shuffled(60, &mut rng);
        let inst = Instance::new(&g, &ids);
        let phi = props::triangle_free();
        let expected = models(&g, &phi);
        let scheme = KernelMsoScheme::new(id_bits_for(&inst), 3, phi)
            .unwrap()
            .with_strategy(ModelStrategy::Explicit(parents));
        match run_scheme(&scheme, &inst) {
            Ok(out) => {
                assert!(out.accepted());
                assert!(expected);
            }
            Err(ProverError::NotAYesInstance) => assert!(!expected),
            Err(e) => panic!(
                "prover error for {} on 60-vertex bounded-treedepth instance: {e}",
                scheme.name()
            ),
        }
    }
}
