//! Scheme combinators: conjunction and disjunction.
//!
//! Lemma A.3's proof uses that "certifying disjunction or conjunction of
//! certifiable sentences without (asymptotic) blow-up in size is
//! straightforward": for `∧`, concatenate certificates; for `∨`, the
//! prover writes one selector bit (which disjunct holds) followed by that
//! disjunct's certificate, and every vertex checks the selector agrees
//! with its neighbors'.

use crate::bits::{BitReader, BitWriter, Certificate};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use locert_graph::NodeId;

/// Both sub-properties hold: certificates are concatenated with a length
/// header for the first part.
pub struct AndScheme<A, B> {
    first: A,
    second: B,
    /// Bits used for the length header of the first certificate.
    len_bits: u32,
}

impl<A: Scheme, B: Scheme> AndScheme<A, B> {
    /// Combines two schemes; `len_bits` must be enough for the first
    /// scheme's certificate length (in bits).
    pub fn new(first: A, second: B, len_bits: u32) -> Self {
        AndScheme {
            first,
            second,
            len_bits,
        }
    }

    fn split(&self, cert: &Certificate) -> Option<(Certificate, Certificate)> {
        let mut r = BitReader::new(cert);
        let len_a = r.read(self.len_bits)? as usize;
        if len_a > r.remaining() {
            return None;
        }
        let mut wa = BitWriter::new();
        for _ in 0..len_a {
            wa.write_bit(r.read_bit()?);
        }
        let mut wb = BitWriter::new();
        while let Some(b) = r.read_bit() {
            wb.write_bit(b);
        }
        Some((wa.finish(), wb.finish()))
    }
}

impl<A: Scheme, B: Scheme> Prover for AndScheme<A, B> {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let a = self.first.assign(instance)?;
        let b = self.second.assign(instance)?;
        let certs = instance
            .graph()
            .nodes()
            .map(|v| {
                let ca = a.cert(v);
                let cb = b.cert(v);
                let mut w = BitWriter::new();
                w.component("length-header");
                w.write(ca.len_bits() as u64, self.len_bits);
                w.component("embedded");
                w.write_cert(ca);
                w.write_cert(cb);
                w.finish_for(v.0)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl<A: Scheme, B: Scheme> Verifier for AndScheme<A, B> {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let (ca, cb) = self
            .split(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        let mut nbrs_a = Vec::with_capacity(view.neighbors.len());
        let mut nbrs_b = Vec::with_capacity(view.neighbors.len());
        for &(nid, ninput, cert) in &view.neighbors {
            let (na, nb) = self
                .split(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            nbrs_a.push((nid, ninput, na));
            nbrs_b.push((nid, ninput, nb));
        }
        // Inner rejection reasons propagate unchanged.
        let view_a = LocalView {
            id: view.id,
            input: view.input,
            cert: &ca,
            neighbors: nbrs_a.iter().map(|(i, n, c)| (*i, *n, c)).collect(),
        };
        self.first.decide(&view_a)?;
        let view_b = LocalView {
            id: view.id,
            input: view.input,
            cert: &cb,
            neighbors: nbrs_b.iter().map(|(i, n, c)| (*i, *n, c)).collect(),
        };
        self.second.decide(&view_b)
    }
}

impl<A: Scheme, B: Scheme> Scheme for AndScheme<A, B> {
    fn name(&self) -> String {
        format!("({} AND {})", self.first.name(), self.second.name())
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Concatenation: the larger asymptotic family dominates.
        self.first
            .declared_bound()
            .combine(self.second.declared_bound())
    }
}

/// At least one sub-property holds: one selector bit plus the selected
/// scheme's certificate.
pub struct OrScheme<A, B> {
    first: A,
    second: B,
}

impl<A: Scheme, B: Scheme> OrScheme<A, B> {
    /// Combines two schemes disjunctively.
    pub fn new(first: A, second: B) -> Self {
        OrScheme { first, second }
    }

    fn split(cert: &Certificate) -> Option<(bool, Certificate)> {
        let mut r = BitReader::new(cert);
        let selector = r.read_bit()?;
        let mut w = BitWriter::new();
        while let Some(b) = r.read_bit() {
            w.write_bit(b);
        }
        Some((selector, w.finish()))
    }
}

impl<A: Scheme, B: Scheme> Prover for OrScheme<A, B> {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let wrap = |selector: bool, asg: Assignment, n: usize| {
            Assignment::new(
                (0..n)
                    .map(|v| {
                        let mut w = BitWriter::new();
                        w.component("selector");
                        w.write_bit(selector);
                        w.component("embedded");
                        w.write_cert(asg.cert(NodeId(v)));
                        w.finish_for(v)
                    })
                    .collect(),
            )
        };
        let n = instance.graph().num_nodes();
        match self.first.assign(instance) {
            Ok(asg) => Ok(wrap(false, asg, n)),
            Err(ProverError::NotAYesInstance) => {
                let asg = self.second.assign(instance)?;
                Ok(wrap(true, asg, n))
            }
            Err(e) => Err(e),
        }
    }
}

impl<A: Scheme, B: Scheme> Verifier for OrScheme<A, B> {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let (selector, mine) = Self::split(view.cert).ok_or(RejectReason::MalformedCertificate)?;
        let mut nbrs = Vec::with_capacity(view.neighbors.len());
        for &(nid, ninput, cert) in &view.neighbors {
            let (s, c) = Self::split(cert).ok_or(RejectReason::MalformedNeighborCertificate)?;
            if s != selector {
                // Disagreeing selectors.
                return Err(RejectReason::CopyMismatch);
            }
            nbrs.push((nid, ninput, c));
        }
        let inner = LocalView {
            id: view.id,
            input: view.input,
            cert: &mine,
            neighbors: nbrs.iter().map(|(i, n, c)| (*i, *n, c)).collect(),
        };
        // The selected disjunct's rejection reason propagates unchanged.
        if selector {
            self.second.decide(&inner)
        } else {
            self.first.decide(&inner)
        }
    }
}

impl<A: Scheme, B: Scheme> Scheme for OrScheme<A, B> {
    fn name(&self) -> String {
        format!("({} OR {})", self.first.name(), self.second.name())
    }

    fn declared_bound(&self) -> DeclaredBound {
        // One selector bit plus whichever disjunct was chosen.
        self.first
            .declared_bound()
            .combine(self.second.declared_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_scheme;
    use crate::schemes::acyclicity::AcyclicityScheme;
    use crate::schemes::common::id_bits_for;
    use crate::schemes::tree_diameter::TreeDiameterScheme;
    use locert_graph::{generators, IdAssignment};

    #[test]
    fn and_of_tree_and_diameter() {
        let g = generators::star(6);
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let b = id_bits_for(&inst);
        let scheme = AndScheme::new(AcyclicityScheme::new(b), TreeDiameterScheme::new(b, 2), 10);
        let out = run_scheme(&scheme, &inst).unwrap();
        assert!(out.accepted());
        // A long path fails the second conjunct.
        let p = generators::path(6);
        let ids_p = IdAssignment::contiguous(6);
        let inst_p = Instance::new(&p, &ids_p);
        let scheme_p = AndScheme::new(
            AcyclicityScheme::new(id_bits_for(&inst_p)),
            TreeDiameterScheme::new(id_bits_for(&inst_p), 2),
            10,
        );
        assert_eq!(
            run_scheme(&scheme_p, &inst_p).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn or_takes_whichever_holds() {
        // diameter ≤ 1 OR diameter ≤ 4.
        let g = generators::path(4); // diameter 3
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let b = id_bits_for(&inst);
        let scheme = OrScheme::new(TreeDiameterScheme::new(b, 1), TreeDiameterScheme::new(b, 4));
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        // Neither disjunct: diameter ≤ 1 OR ≤ 2 on P_4.
        let scheme_bad =
            OrScheme::new(TreeDiameterScheme::new(b, 1), TreeDiameterScheme::new(b, 2));
        assert_eq!(
            run_scheme(&scheme_bad, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn or_rejects_selector_disagreement() {
        use crate::framework::run_verification;
        let g = generators::path(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        let b = id_bits_for(&inst);
        let scheme = OrScheme::new(TreeDiameterScheme::new(b, 2), TreeDiameterScheme::new(b, 5));
        let mut asg = scheme.assign(&inst).unwrap();
        // Flip vertex 1's selector bit.
        let c = asg.cert(locert_graph::NodeId(1)).clone();
        *asg.cert_mut(locert_graph::NodeId(1)) = c.with_bit_flipped(0);
        let out = run_verification(&scheme, &inst, &asg);
        assert!(!out.accepted());
    }

    #[test]
    fn and_certificate_size_is_sum_plus_header() {
        let g = generators::star(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let b = id_bits_for(&inst);
        let a = AcyclicityScheme::new(b);
        let d = TreeDiameterScheme::new(b, 2);
        let asg_a = a.assign(&inst).unwrap();
        let asg_d = d.assign(&inst).unwrap();
        let combo = AndScheme::new(a, d, 10);
        let asg = combo.assign(&inst).unwrap();
        assert_eq!(asg.max_bits(), asg_a.max_bits() + asg_d.max_bits() + 10);
    }
}
