//! Diameter certification on trees (Section 2.3 warm-up).
//!
//! The paper motivates tree-restricted certification with the diameter
//! example: point a spanning structure at a root and store, at every
//! vertex, its distance to the root and the height of its subtree; all
//! checks are distance comparisons.
//!
//! Here: certify tree-ness (as in [`crate::schemes::acyclicity`]) and
//! additionally store `height(v)` = the number of edges on the longest
//! downward path from `v`. Every vertex checks its height is consistent
//! with its children's and that the longest path *bending at it* —
//! the two largest child heights plus two — does not exceed `D`. Every
//! path in a tree bends at its topmost vertex, so these local checks
//! cover every path; conversely a diameter-`D` tree passes them.
//!
//! Size: `O(log n)`.

use crate::bits::{BitReader, BitWriter};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::spanning_tree::{honest_tree_fields, verify_tree_position, TreeFields};
use locert_graph::{NodeId, RootedTree};

/// Certifies "the tree has diameter at most `D`".
#[derive(Debug, Clone, Copy)]
pub struct TreeDiameterScheme {
    id_bits: u32,
    diameter: u64,
}

impl TreeDiameterScheme {
    /// A scheme for diameter bound `diameter`, identifier fields of
    /// `id_bits` bits.
    pub fn new(id_bits: u32, diameter: u64) -> Self {
        TreeDiameterScheme { id_bits, diameter }
    }

    fn parse(&self, cert: &crate::bits::Certificate) -> Option<(TreeFields, u64)> {
        let mut r = BitReader::new(cert);
        let f = TreeFields::read(&mut r, self.id_bits)?;
        let height = r.read(self.id_bits)?;
        r.exhausted().then_some((f, height))
    }
}

impl Prover for TreeDiameterScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.tree_diameter.prover");
        let g = instance.graph();
        if !g.is_tree() {
            return Err(ProverError::NotAYesInstance);
        }
        let rooted = RootedTree::from_tree(g, NodeId(0)).expect("checked tree");
        // Heights bottom-up.
        let mut height = vec![0u64; g.num_nodes()];
        for v in rooted.postorder() {
            height[v.0] = rooted
                .children(v)
                .iter()
                .map(|c| height[c.0] + 1)
                .max()
                .unwrap_or(0);
        }
        // Prover-side diameter check (completeness only for yes-instances).
        let diam = locert_graph::traversal::diameter(g).expect("connected");
        if diam as u64 > self.diameter {
            return Err(ProverError::NotAYesInstance);
        }
        let fields = honest_tree_fields(instance, NodeId(0));
        Ok(Assignment::new(
            g.nodes()
                .map(|v| {
                    let mut w = BitWriter::new();
                    fields[v.0].write(&mut w, self.id_bits);
                    w.component("height");
                    w.write(height[v.0], self.id_bits);
                    w.finish_for(v.0)
                })
                .collect(),
        ))
    }
}

impl Verifier for TreeDiameterScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let (mine, my_height) = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        verify_tree_position(view, self.id_bits, &mine, |c| self.parse(c).map(|(f, _)| f))?;
        // Collect children (tree-ness: every edge is parent or child).
        let mut child_heights = Vec::new();
        for &(nid, _, cert) in &view.neighbors {
            let (nf, nh) = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            if nf.root != mine.root {
                return Err(RejectReason::RootMismatch);
            }
            let is_child = nf.parent == view.id && nf.dist == mine.dist + 1;
            let is_parent = nid == mine.parent && nf.dist + 1 == mine.dist && view.id != mine.root;
            if is_child {
                child_heights.push(nh);
            } else if !is_parent {
                return Err(RejectReason::NonTreeEdge);
            }
        }
        // Height consistency.
        let expected = child_heights.iter().map(|h| h + 1).max().unwrap_or(0);
        if my_height != expected {
            return Err(RejectReason::CounterMismatch);
        }
        // Longest path bending here.
        child_heights.sort_unstable_by(|a, b| b.cmp(a));
        let top1 = child_heights.first().map_or(0, |h| h + 1);
        let top2 = child_heights.get(1).map_or(0, |h| h + 1);
        if top1 + top2 > self.diameter {
            return Err(RejectReason::PropertyViolation);
        }
        Ok(())
    }
}

impl Scheme for TreeDiameterScheme {
    fn name(&self) -> String {
        format!("tree-diameter<= {}", self.diameter)
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Tree fields plus one height counter, all identifier-width.
        DeclaredBound::LogN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::run_scheme;
    use crate::schemes::common::id_bits_for;
    use locert_graph::{generators, traversal, IdAssignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_exactly_at_true_diameter() {
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..10 {
            let g = generators::random_tree(12, &mut rng);
            let ids = IdAssignment::shuffled(12, &mut rng);
            let inst = Instance::new(&g, &ids);
            let diam = traversal::diameter(&g).unwrap() as u64;
            for bound in [diam, diam + 1, diam + 5] {
                let scheme = TreeDiameterScheme::new(id_bits_for(&inst), bound);
                assert!(run_scheme(&scheme, &inst).unwrap().accepted());
            }
            if diam > 0 {
                let tight = TreeDiameterScheme::new(id_bits_for(&inst), diam - 1);
                assert_eq!(
                    run_scheme(&tight, &inst).unwrap_err(),
                    ProverError::NotAYesInstance
                );
            }
        }
    }

    #[test]
    fn spider_and_star_diameters() {
        let star = generators::star(8);
        let ids = IdAssignment::contiguous(8);
        let inst = Instance::new(&star, &ids);
        assert!(
            run_scheme(&TreeDiameterScheme::new(id_bits_for(&inst), 2), &inst)
                .unwrap()
                .accepted()
        );
        let spider = generators::spider(3, 3);
        let ids2 = IdAssignment::contiguous(10);
        let inst2 = Instance::new(&spider, &ids2);
        assert!(
            run_scheme(&TreeDiameterScheme::new(id_bits_for(&inst2), 6), &inst2)
                .unwrap()
                .accepted()
        );
        assert_eq!(
            run_scheme(&TreeDiameterScheme::new(id_bits_for(&inst2), 5), &inst2).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn random_attacks_on_long_paths_rejected() {
        // Claim diameter ≤ 3 on P_8: no assignment should pass; try
        // random ones.
        let g = generators::path(8);
        let ids = IdAssignment::contiguous(8);
        let inst = Instance::new(&g, &ids);
        let scheme = TreeDiameterScheme::new(id_bits_for(&inst), 3);
        let mut rng = StdRng::seed_from_u64(92);
        assert!(attacks::random_assignments(&scheme, &inst, 16, &mut rng, 400).is_none());
    }

    #[test]
    fn honest_replay_under_tighter_bound_rejected() {
        let g = generators::path(6); // diameter 5
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let loose = TreeDiameterScheme::new(id_bits_for(&inst), 5);
        let base = loose.assign(&inst).unwrap();
        let tight = TreeDiameterScheme::new(id_bits_for(&inst), 4);
        let mut rng = StdRng::seed_from_u64(93);
        assert!(attacks::mutation_attacks(&tight, &inst, &base, &mut rng, 400).is_none());
    }

    #[test]
    fn single_vertex_tree() {
        let g = locert_graph::Graph::empty(1);
        let ids = IdAssignment::contiguous(1);
        let inst = Instance::new(&g, &ids);
        let scheme = TreeDiameterScheme::new(1, 0);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
    }

    #[test]
    fn rejects_on_cycles() {
        let g = generators::cycle(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme = TreeDiameterScheme::new(id_bits_for(&inst), 10);
        assert_eq!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
        let mut rng = StdRng::seed_from_u64(94);
        assert!(attacks::random_assignments(&scheme, &inst, 12, &mut rng, 300).is_none());
    }
}
