//! Depth certification on trees with O(log k) bits (Section 2.4 remark).
//!
//! The paper contrasts Theorem 2.5 ("treedepth ≤ k needs Ω(log n) bits on
//! general graphs") with the fact that *rooted-tree depth* ≤ k is
//! certifiable with `O(log k)` bits — independent of `n` — by storing
//! each vertex's distance to the root. The scheme runs under the tree
//! promise (like Theorem 2.2's):
//!
//! - certificate: the vertex's depth `d ≤ k`, in `⌈log₂(k+1)⌉` bits;
//! - checks: exactly one neighbor at depth `d − 1` (none iff `d = 0`,
//!   making the vertex the root) and all others at `d + 1 ≤ k`.
//!
//! On trees the depths then measure a genuine rooting of height ≤ k.

use crate::bits::{width_for, BitReader, BitWriter};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
#[cfg(test)]
use locert_graph::NodeId;
use locert_graph::RootedTree;

/// Certifies "the tree can be rooted with depth at most `k`" — i.e. its
/// height as a rooted tree is ≤ `k` edges from the best root, certified
/// with `O(log k)` bits.
#[derive(Debug, Clone, Copy)]
pub struct TreeDepthBoundScheme {
    k: usize,
    bits: u32,
}

impl TreeDepthBoundScheme {
    /// A scheme for depth bound `k` (edges on a root-to-leaf path).
    pub fn new(k: usize) -> Self {
        TreeDepthBoundScheme {
            k,
            bits: width_for(k as u64),
        }
    }

    /// Certificate size in bits (`⌈log₂(k+1)⌉`, independent of `n`).
    pub fn certificate_bits(&self) -> usize {
        self.bits as usize
    }

    fn parse(&self, cert: &crate::bits::Certificate) -> Option<u64> {
        let mut r = BitReader::new(cert);
        let d = r.read(self.bits)?;
        (d <= self.k as u64 && r.exhausted()).then_some(d)
    }
}

impl Prover for TreeDepthBoundScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.tree_depth_bound.prover");
        let g = instance.graph();
        if !g.is_tree() {
            return Err(ProverError::NotAYesInstance);
        }
        // Root at a center to minimize depth.
        let center = locert_graph::canon::center(g).expect("tree")[0];
        let rooted = RootedTree::from_tree(g, center).expect("tree");
        if rooted.height() > self.k {
            return Err(ProverError::NotAYesInstance);
        }
        Ok(Assignment::new(
            g.nodes()
                .map(|v| {
                    let mut w = BitWriter::new();
                    w.component("depth");
                    w.write(rooted.depth(v) as u64, self.bits);
                    w.finish_for(v.0)
                })
                .collect(),
        ))
    }
}

impl Verifier for TreeDepthBoundScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let d = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        let mut parents = 0usize;
        for &(_, _, cert) in &view.neighbors {
            let nd = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            if nd + 1 == d {
                parents += 1;
            } else if nd != d + 1 {
                // Neither a parent nor a child; nd ≤ k by parse.
                return Err(RejectReason::ParentDistanceClash);
            }
        }
        // Exactly one parent, except the root (depth 0).
        if (d == 0 && parents == 0) || (d > 0 && parents == 1) {
            Ok(())
        } else {
            Err(RejectReason::RootMismatch)
        }
    }
}

impl Scheme for TreeDepthBoundScheme {
    fn name(&self) -> String {
        format!("tree-depth<= {}", self.k)
    }

    fn declared_bound(&self) -> DeclaredBound {
        // ⌈log₂(k+1)⌉ bits, independent of n (Section 2.4 remark).
        DeclaredBound::LogK { k: self.k as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::{run_scheme, run_verification};
    use locert_graph::{generators, IdAssignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_independent_of_n() {
        // The Section 2.4 contrast: O(log k) bits, flat in n.
        let scheme = TreeDepthBoundScheme::new(6);
        let mut sizes = Vec::new();
        // Stars of growing size: depth 1 from the hub, any n.
        for n in [8usize, 64, 512, 4096] {
            let g = generators::star(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let out = run_scheme(&scheme, &inst).unwrap();
            assert!(out.accepted());
            sizes.push(out.max_bits());
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
        assert_eq!(sizes[0], scheme.certificate_bits());
    }

    #[test]
    fn depth_threshold_exact() {
        // A path of 2k+1 vertices center-roots at depth k.
        for k in 1..=5 {
            let g = generators::path(2 * k + 1);
            let ids = IdAssignment::contiguous(2 * k + 1);
            let inst = Instance::new(&g, &ids);
            assert!(run_scheme(&TreeDepthBoundScheme::new(k), &inst)
                .unwrap()
                .accepted());
            assert_eq!(
                run_scheme(&TreeDepthBoundScheme::new(k - 1), &inst).unwrap_err(),
                ProverError::NotAYesInstance
            );
        }
    }

    #[test]
    fn forged_depths_rejected() {
        let g = generators::spider(3, 2);
        let ids = IdAssignment::contiguous(7);
        let inst = Instance::new(&g, &ids);
        let scheme = TreeDepthBoundScheme::new(2);
        let mut asg = scheme.assign(&inst).unwrap();
        let c = asg.cert(NodeId(3)).clone();
        *asg.cert_mut(NodeId(3)) = c.with_bit_flipped(0);
        assert!(!run_verification(&scheme, &inst, &asg).accepted());
    }

    #[test]
    fn exhaustive_soundness_on_deep_path() {
        // P_7 center-roots at depth 3; with k = 2 (2-bit certificates) no
        // assignment works — exhaust all of them.
        let g = generators::path(7);
        let ids = IdAssignment::contiguous(7);
        let inst = Instance::new(&g, &ids);
        let scheme = TreeDepthBoundScheme::new(2);
        let res = attacks::exhaustive_soundness(&scheme, &inst, 2, 1_000_000);
        assert!(res.is_ok(), "fooling assignment: {res:?}");
    }

    #[test]
    fn random_attacks_rejected() {
        let g = generators::path(15); // depth 7 from the center.
        let ids = IdAssignment::contiguous(15);
        let inst = Instance::new(&g, &ids);
        let scheme = TreeDepthBoundScheme::new(3);
        let mut rng = StdRng::seed_from_u64(171);
        assert!(attacks::random_assignments(
            &scheme,
            &inst,
            scheme.certificate_bits(),
            &mut rng,
            500
        )
        .is_none());
    }
}
