//! Spanning-tree and vertex-count certification (Proposition 3.4).
//!
//! The classic `O(log n)` tools of the area:
//!
//! - [`SpanningTreeScheme`] certifies a rooted spanning tree of a
//!   connected graph: every vertex is labeled `(root id, distance to
//!   root, parent id)`; acyclicity follows from distances strictly
//!   decreasing along parent pointers, uniqueness of the root from
//!   identifier uniqueness. An optional *root predicate* lets other
//!   schemes point the tree at a vertex with a locally-checkable property
//!   (e.g. "the root dominates the graph").
//! - [`VertexCountScheme`] additionally certifies `n`, by labeling every
//!   vertex with the claimed total and its subtree size.

use crate::bits::{BitReader, BitWriter};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::common::{read_ident, write_ident};
use locert_graph::{traversal, Ident, NodeId};

/// Parsed spanning-tree certificate fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeFields {
    /// The claimed root identifier (shared by every vertex).
    pub root: Ident,
    /// The claimed distance to the root.
    pub dist: u64,
    /// The claimed parent identifier (self for the root).
    pub parent: Ident,
}

impl TreeFields {
    /// Serializes with identifier fields of `id_bits` bits. Marks the
    /// fields as ledger components (`root-id`, `distance`,
    /// `parent-id`) for bit attribution.
    pub fn write(&self, w: &mut BitWriter, id_bits: u32) {
        w.component("root-id");
        write_ident(w, self.root, id_bits);
        w.component("distance");
        w.write(self.dist, id_bits);
        w.component("parent-id");
        write_ident(w, self.parent, id_bits);
    }

    /// Parses fields written by [`TreeFields::write`].
    pub fn read(r: &mut BitReader<'_>, id_bits: u32) -> Option<TreeFields> {
        Some(TreeFields {
            root: read_ident(r, id_bits)?,
            dist: r.read(id_bits)?,
            parent: read_ident(r, id_bits)?,
        })
    }
}

/// Computes the honest BFS spanning-tree fields for every vertex, rooted
/// at `root`. Returns `None` when `root` is out of range or some vertex
/// is unreachable from it (no spanning tree rooted there exists).
pub fn try_honest_tree_fields(instance: &Instance<'_>, root: NodeId) -> Option<Vec<TreeFields>> {
    let g = instance.graph();
    let ids = instance.ids();
    if root.0 >= g.num_nodes() {
        return None;
    }
    let dist = traversal::bfs_distances(g, root);
    let parent = traversal::bfs_parents(g, root);
    g.nodes()
        .map(|v| {
            Some(TreeFields {
                root: ids.ident(root),
                dist: dist[v.0]? as u64,
                parent: parent[v.0].map_or(ids.ident(root), |p| ids.ident(p)),
            })
        })
        .collect()
}

/// Computes the honest BFS spanning-tree fields for every vertex, rooted
/// at `root`.
///
/// # Panics
///
/// On a disconnected instance or an out-of-range root; provers should
/// prefer [`try_honest_tree_fields`] and surface a typed error.
pub fn honest_tree_fields(instance: &Instance<'_>, root: NodeId) -> Vec<TreeFields> {
    try_honest_tree_fields(instance, root).expect("connected instance")
}

/// Verifies the spanning-tree fields of one vertex against its view.
/// Returns the parsed fields on success so callers can pile on extra
/// checks.
///
/// # Errors
///
/// The [`RejectReason`] for the first failed check.
pub fn verify_tree_fields(view: &LocalView<'_>, id_bits: u32) -> Result<TreeFields, RejectReason> {
    let mut r = BitReader::new(view.cert);
    let mine = TreeFields::read(&mut r, id_bits).ok_or(RejectReason::MalformedCertificate)?;
    verify_tree_fields_parsed(view, id_bits, &mine)?;
    Ok(mine)
}

/// The field checks, split out so composite certificates can embed tree
/// fields at an offset.
///
/// # Errors
///
/// The [`RejectReason`] for the first failed check.
pub fn verify_tree_fields_parsed(
    view: &LocalView<'_>,
    id_bits: u32,
    mine: &TreeFields,
) -> Result<(), RejectReason> {
    // Root consistency across all neighbors.
    for &(_, _, cert) in &view.neighbors {
        let mut r = BitReader::new(cert);
        let f =
            TreeFields::read(&mut r, id_bits).ok_or(RejectReason::MalformedNeighborCertificate)?;
        if f.root != mine.root {
            return Err(RejectReason::RootMismatch);
        }
    }
    verify_tree_position(view, id_bits, mine, |cert| {
        let mut r = BitReader::new(cert);
        TreeFields::read(&mut r, id_bits)
    })
}

/// Core positional checks with a caller-supplied field extractor for
/// neighbor certificates (composite schemes store the fields elsewhere).
///
/// # Errors
///
/// [`RejectReason::RootMismatch`] for a forged or ill-formed root claim,
/// [`RejectReason::MissingNeighbor`] when the claimed parent is not
/// visible, [`RejectReason::MalformedNeighborCertificate`] when the
/// parent's fields do not parse, and
/// [`RejectReason::ParentDistanceClash`] when the parent is not exactly
/// one step closer to the root.
pub fn verify_tree_position(
    view: &LocalView<'_>,
    _id_bits: u32,
    mine: &TreeFields,
    extract: impl Fn(&crate::bits::Certificate) -> Option<TreeFields>,
) -> Result<(), RejectReason> {
    if view.id == mine.root {
        // The unique root: distance 0, self-parent.
        if mine.dist == 0 && mine.parent == view.id {
            return Ok(());
        }
        return Err(RejectReason::RootMismatch);
    }
    if mine.dist == 0 {
        // Distance 0 elsewhere would forge a second root.
        return Err(RejectReason::RootMismatch);
    }
    // The claimed parent must be a visible neighbor one step closer.
    let Some(&(_, _, cert)) = view
        .neighbors
        .iter()
        .find(|&&(nid, _, _)| nid == mine.parent)
    else {
        return Err(RejectReason::MissingNeighbor);
    };
    let f = extract(cert).ok_or(RejectReason::MalformedNeighborCertificate)?;
    if f.root != mine.root {
        return Err(RejectReason::RootMismatch);
    }
    if f.dist + 1 != mine.dist {
        return Err(RejectReason::ParentDistanceClash);
    }
    Ok(())
}

/// Prover-side root chooser (see
/// [`SpanningTreeScheme::with_root_predicate`]).
pub type RootSelector = Box<dyn Fn(&Instance<'_>) -> Option<NodeId> + Send + Sync>;
/// Verifier-side root predicate.
pub type RootCheck = Box<dyn Fn(&LocalView<'_>) -> bool + Send + Sync>;

/// Certifies a rooted spanning tree (Proposition 3.4), with an optional
/// locally-checked predicate on the root.
pub struct SpanningTreeScheme {
    id_bits: u32,
    /// Prover-side root choice; `None` = vertex 0.
    root_selector: Option<RootSelector>,
    /// Extra verifier-side check applied at the root only.
    root_check: Option<RootCheck>,
}

impl std::fmt::Debug for SpanningTreeScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanningTreeScheme")
            .field("id_bits", &self.id_bits)
            .field("has_root_selector", &self.root_selector.is_some())
            .field("has_root_check", &self.root_check.is_some())
            .finish()
    }
}

impl SpanningTreeScheme {
    /// A scheme with identifier fields of `id_bits` bits, rooted at
    /// vertex 0.
    pub fn new(id_bits: u32) -> Self {
        SpanningTreeScheme {
            id_bits,
            root_selector: None,
            root_check: None,
        }
    }

    /// Points the tree at a prover-chosen root satisfying a verifier-side
    /// predicate. The prover fails with
    /// [`ProverError::NotAYesInstance`] when `selector` returns `None`.
    pub fn with_root_predicate(
        id_bits: u32,
        selector: impl Fn(&Instance<'_>) -> Option<NodeId> + Send + Sync + 'static,
        check: impl Fn(&LocalView<'_>) -> bool + Send + Sync + 'static,
    ) -> Self {
        SpanningTreeScheme {
            id_bits,
            root_selector: Some(Box::new(selector)),
            root_check: Some(Box::new(check)),
        }
    }
}

impl Prover for SpanningTreeScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.spanning_tree.prover");
        let root = match &self.root_selector {
            Some(sel) => sel(instance).ok_or(ProverError::NotAYesInstance)?,
            None => NodeId(0),
        };
        // A rooted spanning tree exists iff the instance is non-empty and
        // connected: anything else is a no-instance, not a panic.
        let fields = try_honest_tree_fields(instance, root).ok_or(ProverError::NotAYesInstance)?;
        let certs = fields
            .iter()
            .enumerate()
            .map(|(v, f)| {
                let mut w = BitWriter::new();
                f.write(&mut w, self.id_bits);
                w.finish_for(v)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl Verifier for SpanningTreeScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let fields = verify_tree_fields(view, self.id_bits)?;
        if view.id == fields.root && !self.root_check.as_ref().is_none_or(|check| check(view)) {
            return Err(RejectReason::PropertyViolation);
        }
        Ok(())
    }
}

impl Scheme for SpanningTreeScheme {
    fn name(&self) -> String {
        "spanning-tree".into()
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Prop 3.4: three identifier-width fields.
        DeclaredBound::LogN
    }
}

/// Parsed vertex-count certificate fields: tree fields plus the claimed
/// total and subtree size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountFields {
    /// The spanning-tree fields.
    pub tree: TreeFields,
    /// The claimed number of vertices (shared by every vertex).
    pub total: u64,
    /// The number of vertices in this vertex's subtree.
    pub sub: u64,
}

impl CountFields {
    /// Serializes with identifier fields of `id_bits` bits; the two
    /// counters are marked as `total-count` / `subtree-count` ledger
    /// components (the tree fields mark their own).
    pub fn write(&self, w: &mut BitWriter, id_bits: u32) {
        self.tree.write(w, id_bits);
        w.component("total-count");
        w.write(self.total, id_bits);
        w.component("subtree-count");
        w.write(self.sub, id_bits);
    }

    /// Parses fields written by [`CountFields::write`].
    pub fn read(r: &mut BitReader<'_>, id_bits: u32) -> Option<CountFields> {
        Some(CountFields {
            tree: TreeFields::read(r, id_bits)?,
            total: r.read(id_bits)?,
            sub: r.read(id_bits)?,
        })
    }
}

/// Honest count fields rooted at `root` (BFS tree + subtree sizes).
/// Returns `None` exactly when [`try_honest_tree_fields`] does.
pub fn try_honest_count_fields(instance: &Instance<'_>, root: NodeId) -> Option<Vec<CountFields>> {
    let g = instance.graph();
    let n = g.num_nodes() as u64;
    let fields = try_honest_tree_fields(instance, root)?;
    let parent = traversal::bfs_parents(g, root);
    let dist = traversal::bfs_distances(g, root);
    let mut size = vec![1u64; g.num_nodes()];
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|v| std::cmp::Reverse(dist[v.0]));
    for v in order {
        if let Some(p) = parent[v.0] {
            size[p.0] += size[v.0];
        }
    }
    Some(
        g.nodes()
            .map(|v| CountFields {
                tree: fields[v.0],
                total: n,
                sub: size[v.0],
            })
            .collect(),
    )
}

/// Honest count fields rooted at `root` (BFS tree + subtree sizes).
///
/// # Panics
///
/// On a disconnected instance or an out-of-range root; provers should
/// prefer [`try_honest_count_fields`] and surface a typed error.
pub fn honest_count_fields(instance: &Instance<'_>, root: NodeId) -> Vec<CountFields> {
    try_honest_count_fields(instance, root).expect("connected instance")
}

/// Verifies count fields at one vertex with a caller-supplied extractor
/// (so composite certificates can embed them at an offset). Returns the
/// parsed own fields on success.
///
/// # Errors
///
/// The [`RejectReason`] for the first failed check: malformed own or
/// neighbor fields, a broken tree position, a root/total copy
/// disagreement, or subtree arithmetic that does not add up.
pub fn verify_count_fields(
    view: &LocalView<'_>,
    id_bits: u32,
    extract: &impl Fn(&crate::bits::Certificate) -> Option<CountFields>,
) -> Result<CountFields, RejectReason> {
    let mine = extract(view.cert).ok_or(RejectReason::MalformedCertificate)?;
    verify_tree_position(view, id_bits, &mine.tree, |c| extract(c).map(|f| f.tree))?;
    let mut children_sum = 0u64;
    for &(nid, _, cert) in &view.neighbors {
        let nf = extract(cert).ok_or(RejectReason::MalformedNeighborCertificate)?;
        if nf.tree.root != mine.tree.root {
            return Err(RejectReason::RootMismatch);
        }
        if nf.total != mine.total {
            return Err(RejectReason::CopyMismatch);
        }
        if nf.tree.parent == view.id && nid != mine.tree.parent {
            if nf.tree.dist != mine.tree.dist + 1 {
                return Err(RejectReason::ParentDistanceClash);
            }
            children_sum = children_sum.saturating_add(nf.sub);
        }
    }
    if mine.sub != children_sum + 1 {
        return Err(RejectReason::CounterMismatch);
    }
    if view.id == mine.tree.root && mine.sub != mine.total {
        return Err(RejectReason::CounterMismatch);
    }
    Ok(mine)
}

/// Certifies the number of vertices (Proposition 3.4, second part):
/// spanning-tree fields plus `(claimed n, subtree size)` per vertex.
#[derive(Debug)]
pub struct VertexCountScheme {
    id_bits: u32,
    /// The count the verifier insists on; `None` certifies *some*
    /// consistent count (callers embed the claimed count elsewhere).
    pub expected: Option<u64>,
}

impl VertexCountScheme {
    /// Certifies that the graph has exactly `expected` vertices.
    pub fn new(id_bits: u32, expected: u64) -> Self {
        VertexCountScheme {
            id_bits,
            expected: Some(expected),
        }
    }

    /// Certifies a consistent count without pinning its value.
    pub fn any_count(id_bits: u32) -> Self {
        VertexCountScheme {
            id_bits,
            expected: None,
        }
    }

    fn parse(&self, cert: &crate::bits::Certificate) -> Option<CountFields> {
        let mut r = BitReader::new(cert);
        CountFields::read(&mut r, self.id_bits)
    }
}

impl Prover for VertexCountScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.vertex_count.prover");
        let g = instance.graph();
        let n = g.num_nodes() as u64;
        if self.expected.is_some_and(|e| e != n) {
            return Err(ProverError::NotAYesInstance);
        }
        let fields =
            try_honest_count_fields(instance, NodeId(0)).ok_or(ProverError::NotAYesInstance)?;
        let certs = fields
            .iter()
            .enumerate()
            .map(|(v, f)| {
                let mut w = BitWriter::new();
                f.write(&mut w, self.id_bits);
                w.finish_for(v)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl Verifier for VertexCountScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let mine = verify_count_fields(view, self.id_bits, &|c| self.parse(c))?;
        if self.expected.is_some_and(|e| mine.total != e) {
            return Err(RejectReason::CounterMismatch);
        }
        Ok(())
    }
}

impl Scheme for VertexCountScheme {
    fn name(&self) -> String {
        "vertex-count".into()
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Prop 3.4: tree fields plus two counters, all O(log n).
        DeclaredBound::LogN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::{run_scheme, run_verification};
    use crate::schemes::common::id_bits_for;
    use locert_graph::{generators, IdAssignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spanning_tree_completeness() {
        let mut rng = StdRng::seed_from_u64(71);
        for n in [1usize, 2, 5, 20] {
            let g = generators::random_connected(n, n / 2, &mut rng);
            let ids = IdAssignment::shuffled(n, &mut rng);
            let inst = Instance::new(&g, &ids);
            let scheme = SpanningTreeScheme::new(id_bits_for(&inst));
            let out = run_scheme(&scheme, &inst).unwrap();
            assert!(out.accepted(), "n = {n}");
            assert!(out.max_bits() <= 3 * id_bits_for(&inst) as usize);
        }
    }

    #[test]
    fn spanning_tree_rejects_forged_second_root() {
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme = SpanningTreeScheme::new(id_bits_for(&inst));
        let mut asg = scheme.assign(&inst).unwrap();
        // Forge vertex 3's certificate to claim dist 0.
        let mut w = BitWriter::new();
        TreeFields {
            root: Ident(1),
            dist: 0,
            parent: Ident(4),
        }
        .write(&mut w, id_bits_for(&inst));
        *asg.cert_mut(NodeId(3)) = w.finish();
        assert!(!run_verification(&scheme, &inst, &asg).accepted());
    }

    #[test]
    fn spanning_tree_mutation_attacks_rejected() {
        let g = generators::cycle(6);
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let scheme = SpanningTreeScheme::new(id_bits_for(&inst));
        let base = scheme.assign(&inst).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        // Mutations of a valid assignment must never *forge a different
        // tree silently*: here we attack the verifier on the same (yes)
        // instance, so acceptance is fine; instead check distance forgery.
        let mut bad = base.clone();
        let c = bad.cert(NodeId(3)).clone();
        // Flip a bit inside the dist field (bits id_bits..2*id_bits).
        let b = id_bits_for(&inst) as usize;
        *bad.cert_mut(NodeId(3)) = c.with_bit_flipped(b + 1);
        assert!(!run_verification(&scheme, &inst, &bad).accepted());
        let _ = &mut rng;
    }

    #[test]
    fn root_predicate_scheme() {
        // Certify "some vertex dominates": point the tree at it, root
        // checks its degree.
        let make = |id_bits: u32, n: usize| {
            SpanningTreeScheme::with_root_predicate(
                id_bits,
                move |inst| {
                    inst.graph()
                        .nodes()
                        .find(|&v| inst.graph().degree(v) == inst.graph().num_nodes() - 1)
                },
                move |view| view.degree() == n - 1,
            )
        };
        let g = generators::star(6);
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let scheme = make(id_bits_for(&inst), 6);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        // A path has no dominator: prover refuses.
        let p = generators::path(6);
        let inst2 = Instance::new(&p, &ids);
        let scheme2 = make(id_bits_for(&inst2), 6);
        assert_eq!(
            run_scheme(&scheme2, &inst2).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn vertex_count_completeness_and_exactness() {
        let mut rng = StdRng::seed_from_u64(73);
        for n in [1usize, 3, 8, 17] {
            let g = generators::random_connected(n, 2, &mut rng);
            let ids = IdAssignment::shuffled(n, &mut rng);
            let inst = Instance::new(&g, &ids);
            let good = VertexCountScheme::new(id_bits_for(&inst), n as u64);
            assert!(run_scheme(&good, &inst).unwrap().accepted(), "n = {n}");
            let wrong = VertexCountScheme::new(id_bits_for(&inst), n as u64 + 1);
            assert_eq!(
                run_scheme(&wrong, &inst).unwrap_err(),
                ProverError::NotAYesInstance
            );
        }
    }

    #[test]
    fn vertex_count_rejects_inflated_total() {
        // Replay honest certs but with the total field bumped everywhere
        // is impossible without breaking subtree sums; test a manual
        // inflation.
        let g = generators::path(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let honest = VertexCountScheme::new(id_bits_for(&inst), 5);
        let base = honest.assign(&inst).unwrap();
        // The verifier pinned to 6 must reject the honest assignment.
        let pinned6 = VertexCountScheme::new(id_bits_for(&inst), 6);
        assert!(!run_verification(&pinned6, &inst, &base).accepted());
        // And random assignments cannot fool it.
        let mut rng = StdRng::seed_from_u64(74);
        assert!(attacks::random_assignments(&pinned6, &inst, 15, &mut rng, 300).is_none());
    }

    #[test]
    fn vertex_count_exhaustive_soundness_tiny() {
        // P_2 with ids {1,2}: certificates up to 3 bits cannot fake
        // "n = 3".
        let g = generators::path(2);
        let ids = IdAssignment::contiguous(2);
        let inst = Instance::new(&g, &ids);
        let pinned = VertexCountScheme::new(2, 3);
        let res = attacks::exhaustive_soundness(&pinned, &inst, 3, 10_000_000);
        assert!(res.is_ok(), "found fooling assignment: {res:?}");
    }

    #[test]
    fn disconnected_instance_is_a_typed_refusal_not_a_panic() {
        // Regression: both provers used to panic on "connected instance"
        // when handed a disconnected graph.
        let g = locert_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let tree = SpanningTreeScheme::new(id_bits_for(&inst));
        assert_eq!(
            run_scheme(&tree, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
        let count = VertexCountScheme::new(id_bits_for(&inst), 4);
        assert_eq!(
            run_scheme(&count, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
        assert!(try_honest_tree_fields(&inst, NodeId(0)).is_none());
        assert!(try_honest_count_fields(&inst, NodeId(0)).is_none());
    }

    #[test]
    fn empty_instance_is_a_typed_refusal_not_a_panic() {
        // Regression: VertexCountScheme rooted the tree at NodeId(0),
        // which does not exist in the empty graph.
        let g = locert_graph::Graph::empty(0);
        let ids = IdAssignment::contiguous(0);
        let inst = Instance::new(&g, &ids);
        let count = VertexCountScheme::new(4, 0);
        assert_eq!(
            run_scheme(&count, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
        assert!(try_honest_tree_fields(&inst, NodeId(0)).is_none());
    }

    #[test]
    fn subtree_sizes_forgery_rejected() {
        let g = generators::star(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let scheme = VertexCountScheme::new(id_bits_for(&inst), 5);
        let mut asg = scheme.assign(&inst).unwrap();
        // Tamper with a leaf's subtree size field (last id_bits bits).
        let b = id_bits_for(&inst);
        let cert = asg.cert(NodeId(2)).clone();
        *asg.cert_mut(NodeId(2)) = cert.with_bit_flipped(4 * b as usize);
        assert!(!run_verification(&scheme, &inst, &asg).accepted());
    }
}
