//! Existential FO certification (Lemma A.2).
//!
//! An existential-prenex sentence `∃x₁ … ∃x_k φ` (quantifier-free `φ`) is
//! certified with `O(k log n)` bits: every vertex receives
//!
//! 1. the identifiers of witnesses `v₁, …, v_k`;
//! 2. the `k × k` adjacency matrix of the witnesses;
//! 3. for each `i`, spanning-tree fields pointing to `v_i`.
//!
//! Verification (per the paper's proof): neighbors carry the same list
//! and matrix; the `i`-th spanning tree is locally correct and its root's
//! identifier is `v_i` (so each witness really exists); each witness
//! checks its own matrix row against its visible neighbor identifiers;
//! every vertex checks the matrix is symmetric, loop-free, and that it
//! satisfies `φ`.

use crate::bits::{BitReader, BitWriter, Certificate};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use crate::schemes::common::{read_ident, write_ident};
use crate::schemes::spanning_tree::{try_honest_tree_fields, verify_tree_position, TreeFields};
use locert_graph::{Ident, NodeId};
use locert_logic::ast::{Formula, Var};
use locert_logic::depth::existential_prefix;

/// Parsed existential-FO certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ExistentialCert {
    witnesses: Vec<Ident>,
    /// Row-major adjacency matrix among witnesses.
    matrix: Vec<bool>,
    trees: Vec<TreeFields>,
}

/// Certifies an existential-prenex FO sentence.
#[derive(Debug, Clone)]
pub struct ExistentialFoScheme {
    id_bits: u32,
    prefix: Vec<Var>,
    matrix_formula: Formula,
}

impl ExistentialFoScheme {
    /// Builds a scheme from a sentence in existential prenex form.
    ///
    /// Returns `None` if the sentence is not existential-prenex FO.
    pub fn new(id_bits: u32, sentence: &Formula) -> Option<Self> {
        let (prefix, matrix) = existential_prefix(sentence)?;
        if !sentence.is_sentence() {
            return None;
        }
        Some(ExistentialFoScheme {
            id_bits,
            prefix,
            matrix_formula: matrix.clone(),
        })
    }

    /// Builds the scheme from *any* FO sentence whose prenex normal form
    /// is existential — the exact Lemma 2.1 statement. Prenexification
    /// (with renaming-apart) happens here, so e.g. `¬∀x.¬φ` is accepted.
    ///
    /// Returns `None` when the sentence is not FO, not closed, or its
    /// prenex prefix contains a universal quantifier.
    pub fn from_any_fo(id_bits: u32, sentence: &Formula) -> Option<Self> {
        let normal = locert_logic::prenex::existential_normal_form(sentence)?;
        Self::new(id_bits, &normal)
    }

    /// Number of witnesses `k`.
    pub fn arity(&self) -> usize {
        self.prefix.len()
    }

    fn parse(&self, cert: &Certificate) -> Option<ExistentialCert> {
        let k = self.arity();
        let mut r = BitReader::new(cert);
        let mut witnesses = Vec::with_capacity(k);
        for _ in 0..k {
            witnesses.push(read_ident(&mut r, self.id_bits)?);
        }
        let mut matrix = Vec::with_capacity(k * k);
        for _ in 0..k * k {
            matrix.push(r.read_bit()?);
        }
        let mut trees = Vec::with_capacity(k);
        for _ in 0..k {
            trees.push(TreeFields::read(&mut r, self.id_bits)?);
        }
        r.exhausted().then_some(ExistentialCert {
            witnesses,
            matrix,
            trees,
        })
    }

    /// Evaluates the quantifier-free matrix formula against the claimed
    /// witness identifiers and adjacency matrix.
    fn matrix_holds(&self, witnesses: &[Ident], matrix: &[bool]) -> bool {
        fn eval(
            f: &Formula,
            idx: &impl Fn(Var) -> usize,
            witnesses: &[Ident],
            matrix: &[bool],
            k: usize,
        ) -> bool {
            match f {
                Formula::True => true,
                Formula::False => false,
                Formula::Eq(x, y) => witnesses[idx(*x)] == witnesses[idx(*y)],
                Formula::Adj(x, y) => matrix[idx(*x) * k + idx(*y)],
                Formula::Not(g) => !eval(g, idx, witnesses, matrix, k),
                Formula::And(a, b) => {
                    eval(a, idx, witnesses, matrix, k) && eval(b, idx, witnesses, matrix, k)
                }
                Formula::Or(a, b) => {
                    eval(a, idx, witnesses, matrix, k) || eval(b, idx, witnesses, matrix, k)
                }
                Formula::Implies(a, b) => {
                    !eval(a, idx, witnesses, matrix, k) || eval(b, idx, witnesses, matrix, k)
                }
                _ => false, // quantifiers/membership cannot appear (checked at build).
            }
        }
        let k = self.arity();
        let prefix = self.prefix.clone();
        let idx = move |v: Var| {
            prefix
                .iter()
                .position(|&p| p == v)
                .expect("matrix variables come from the prefix")
        };
        eval(&self.matrix_formula, &idx, witnesses, matrix, k)
    }
}

impl Prover for ExistentialFoScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.existential_fo.prover");
        let g = instance.graph();
        let ids = instance.ids();
        let k = self.arity();
        let n = g.num_nodes();
        if n == 0 && k > 0 {
            // ∃-sentences are false over an empty domain; the witness
            // loop below would index vertex 0.
            return Err(ProverError::NotAYesInstance);
        }
        // Brute-force witness search (n^k; experiment workloads keep k small).
        let mut choice = vec![0usize; k];
        let found = 'search: loop {
            let witnesses: Vec<Ident> = choice.iter().map(|&i| ids.ident(NodeId(i))).collect();
            let matrix: Vec<bool> = (0..k)
                .flat_map(|i| {
                    let choice = choice.clone();
                    (0..k).map(move |j| (i, j, choice.clone()))
                })
                .map(|(i, j, ch)| g.has_edge(NodeId(ch[i]), NodeId(ch[j])))
                .collect();
            if self.matrix_holds(&witnesses, &matrix) {
                break 'search Some(choice.clone());
            }
            let mut i = 0;
            loop {
                if i == k {
                    break 'search None;
                }
                choice[i] += 1;
                if choice[i] < n {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        };
        let witnesses_idx = found.ok_or(ProverError::NotAYesInstance)?;
        let witness_ids: Vec<Ident> = witnesses_idx
            .iter()
            .map(|&i| ids.ident(NodeId(i)))
            .collect();
        let matrix: Vec<bool> = (0..k)
            .flat_map(|i| (0..k).map(move |j| (i, j)))
            .map(|(i, j)| g.has_edge(NodeId(witnesses_idx[i]), NodeId(witnesses_idx[j])))
            .collect();
        // Witnesses can exist in a disconnected graph, but the witness
        // spanning trees cannot: surface the broken connected-graph
        // promise as a typed error instead of panicking.
        let trees: Vec<Vec<TreeFields>> = witnesses_idx
            .iter()
            .map(|&w| try_honest_tree_fields(instance, NodeId(w)))
            .collect::<Option<_>>()
            .ok_or_else(|| {
                ProverError::WitnessUnavailable(
                    "instance is disconnected (connected-graph promise)".into(),
                )
            })?;
        let certs = g
            .nodes()
            .map(|v| {
                let mut w = BitWriter::new();
                w.component("witness-ids");
                for &id in &witness_ids {
                    write_ident(&mut w, id, self.id_bits);
                }
                w.component("adjacency");
                for &b in &matrix {
                    w.write_bit(b);
                }
                for tf in &trees {
                    tf[v.0].write(&mut w, self.id_bits);
                }
                w.finish_for(v.0)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl Verifier for ExistentialFoScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        let k = self.arity();
        let mine = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        // Neighbors carry identical lists and matrices.
        for &(_, _, cert) in &view.neighbors {
            let nc = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            if nc.witnesses != mine.witnesses || nc.matrix != mine.matrix {
                return Err(RejectReason::CopyMismatch);
            }
        }
        // Matrix shape: symmetric, loop-free.
        for i in 0..k {
            if mine.matrix[i * k + i] {
                return Err(RejectReason::MalformedCertificate);
            }
            for j in 0..k {
                if mine.matrix[i * k + j] != mine.matrix[j * k + i] {
                    return Err(RejectReason::MalformedCertificate);
                }
            }
        }
        // Spanning trees: tree i points at witness i.
        for i in 0..k {
            let f = mine.trees[i];
            if f.root != mine.witnesses[i] {
                return Err(RejectReason::RootMismatch);
            }
            verify_tree_position(view, self.id_bits, &f, |c| {
                self.parse(c).map(|nc| nc.trees[i])
            })?;
        }
        // If I am a witness, audit my matrix row against my real
        // neighborhood.
        for i in 0..k {
            if mine.witnesses[i] != view.id {
                continue;
            }
            for j in 0..k {
                if j == i {
                    continue;
                }
                let expected = if mine.witnesses[j] == view.id {
                    false
                } else {
                    view.has_neighbor(mine.witnesses[j])
                };
                if mine.matrix[i * k + j] != expected {
                    return Err(RejectReason::AdjacencyMismatch);
                }
            }
        }
        // The matrix must satisfy φ.
        if self.matrix_holds(&mine.witnesses, &mine.matrix) {
            Ok(())
        } else {
            Err(RejectReason::PropertyViolation)
        }
    }
}

impl Scheme for ExistentialFoScheme {
    fn name(&self) -> String {
        format!("existential-fo[k={}]", self.arity())
    }

    fn declared_bound(&self) -> DeclaredBound {
        // O(k log n) for fixed k (Lemma A.2): witness ids, matrix, and k
        // spanning trees are each identifier-width per field.
        DeclaredBound::LogN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::{run_scheme, run_verification};
    use crate::schemes::common::id_bits_for;
    use crate::schemes::spanning_tree::honest_tree_fields;
    use locert_graph::{generators, IdAssignment};
    use locert_logic::props;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_existential_sentences() {
        assert!(ExistentialFoScheme::new(4, &props::diameter_at_most_2()).is_none());
        assert!(ExistentialFoScheme::new(4, &props::has_clique(3)).is_some());
    }

    #[test]
    fn from_any_fo_prenexifies() {
        use locert_logic::ast::{adj, exists, forall, not};
        // ¬∀x0.¬∃x1. x0 ~ x1 ≡ ∃∃ …: accepted after prenexification.
        let f = not(forall(Var(0), not(exists(Var(1), adj(Var(0), Var(1))))));
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme = ExistentialFoScheme::from_any_fo(id_bits_for(&inst), &f).expect("existential");
        assert_eq!(scheme.arity(), 2);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        // A genuinely universal sentence is rejected by the constructor.
        let u = forall(Var(0), exists(Var(1), adj(Var(0), Var(1))));
        assert!(ExistentialFoScheme::from_any_fo(4, &u).is_none());
    }

    #[test]
    fn certifies_triangles() {
        let phi = props::has_clique(3);
        let g = generators::clique(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme = ExistentialFoScheme::new(id_bits_for(&inst), &phi).unwrap();
        let out = run_scheme(&scheme, &inst).unwrap();
        assert!(out.accepted());
        // k = 3 witnesses: 3L + 9 + 3·3L bits.
        let l = id_bits_for(&inst) as usize;
        assert_eq!(out.max_bits(), 3 * l + 9 + 9 * l);
    }

    #[test]
    fn prover_refuses_on_triangle_free() {
        let phi = props::has_clique(3);
        let g = generators::cycle(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        let scheme = ExistentialFoScheme::new(id_bits_for(&inst), &phi).unwrap();
        assert_eq!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn forged_matrix_caught_by_witness() {
        // Claim a triangle on a C_4 by forging one matrix bit: a witness
        // audits its row and rejects.
        let phi = props::has_clique(3);
        let square = generators::cycle(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&square, &ids);
        let scheme = ExistentialFoScheme::new(id_bits_for(&inst), &phi).unwrap();
        // Build a forged assignment by hand: witnesses 1, 2, 3 with a full
        // matrix, trees rooted honestly.
        let g = &square;
        let trees: Vec<Vec<TreeFields>> = [0usize, 1, 2]
            .iter()
            .map(|&w| honest_tree_fields(&inst, NodeId(w)))
            .collect();
        let witness_ids = [Ident(1), Ident(2), Ident(3)];
        let matrix = [
            false, true, true, //
            true, false, true, //
            true, true, false,
        ];
        let certs = g
            .nodes()
            .map(|v| {
                let mut w = BitWriter::new();
                for id in witness_ids {
                    write_ident(&mut w, id, id_bits_for(&inst));
                }
                for b in matrix {
                    w.write_bit(b);
                }
                for tf in &trees {
                    tf[v.0].write(&mut w, id_bits_for(&inst));
                }
                w.finish()
            })
            .collect();
        let asg = Assignment::new(certs);
        let out = run_verification(&scheme, &inst, &asg);
        assert!(!out.accepted());
        // Specifically a witness must be among the rejectors.
        assert!(out.rejecting().iter().any(|id| witness_ids.contains(id)));
    }

    #[test]
    fn independent_set_and_repeated_witnesses() {
        // ∃x∃y x = y is satisfied everywhere with repeated witnesses.
        use locert_logic::ast::{eq, exists_all};
        let phi = exists_all([Var(0), Var(1)], eq(Var(0), Var(1)));
        let g = generators::path(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        let scheme = ExistentialFoScheme::new(id_bits_for(&inst), &phi).unwrap();
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        // Independent set of size 3 on C_6.
        let phi2 = props::has_independent_set(3);
        let c6 = generators::cycle(6);
        let ids6 = IdAssignment::contiguous(6);
        let inst6 = Instance::new(&c6, &ids6);
        let scheme2 = ExistentialFoScheme::new(id_bits_for(&inst6), &phi2).unwrap();
        assert!(run_scheme(&scheme2, &inst6).unwrap().accepted());
    }

    #[test]
    fn random_attacks_rejected() {
        let phi = props::has_clique(3);
        let g = generators::cycle(6);
        let ids = IdAssignment::shuffled(6, &mut StdRng::seed_from_u64(101));
        let inst = Instance::new(&g, &ids);
        let scheme = ExistentialFoScheme::new(id_bits_for(&inst), &phi).unwrap();
        let mut rng = StdRng::seed_from_u64(102);
        let bits = 3 * id_bits_for(&inst) as usize + 9 + 9 * id_bits_for(&inst) as usize;
        assert!(attacks::random_assignments(&scheme, &inst, bits, &mut rng, 200).is_none());
    }

    #[test]
    fn disconnected_and_empty_instances_are_typed_errors() {
        // Regression: a disconnected graph can satisfy ∃x∃y. x ~ y, but
        // building the witness spanning trees used to panic ("connected
        // instance").
        let phi = props::has_clique(2);
        let g = locert_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let scheme = ExistentialFoScheme::new(id_bits_for(&inst), &phi).unwrap();
        assert!(matches!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::WitnessUnavailable(_)
        ));
        // Regression: the witness loop used to index vertex 0 of the
        // empty graph.
        let empty = locert_graph::Graph::empty(0);
        let ids0 = IdAssignment::contiguous(0);
        let inst0 = Instance::new(&empty, &ids0);
        let scheme0 = ExistentialFoScheme::new(4, &phi).unwrap();
        assert_eq!(
            run_scheme(&scheme0, &inst0).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn nonexistent_witness_id_rejected() {
        // Claim a witness id that no vertex carries: its spanning tree has
        // no root, so someone rejects.
        let phi = props::has_clique(2); // an edge — true on any n >= 2 graph.
        let g = generators::path(3);
        let ids = IdAssignment::contiguous(3);
        let inst = Instance::new(&g, &ids);
        // Use a 4-bit id field so absent identifiers are representable.
        let l = 4u32;
        let scheme = ExistentialFoScheme::new(l, &phi).unwrap();
        let honest = scheme.assign(&inst).unwrap();
        // Rewrite every certificate to claim witness ids {6, 7} (absent).
        let certs = g
            .nodes()
            .map(|v| {
                let mut w = BitWriter::new();
                write_ident(&mut w, Ident(6), l);
                write_ident(&mut w, Ident(7), l);
                w.write_bit(false);
                w.write_bit(true);
                w.write_bit(true);
                w.write_bit(false);
                // Replay the honest trees (roots now mismatch).
                let mine = honest.cert(v);
                let mut r = BitReader::new(mine);
                let _ = r.read(2 * l); // skip ids
                let _ = r.read(4); // skip matrix
                for _ in 0..2 {
                    let tf = TreeFields::read(&mut r, l).unwrap();
                    tf.write(&mut w, l);
                }
                w.finish()
            })
            .collect();
        let out = run_verification(&scheme, &inst, &Assignment::new(certs));
        assert!(!out.accepted());
    }
}
