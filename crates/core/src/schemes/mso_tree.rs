//! MSO certification on trees with O(1)-bit certificates (Theorem 2.2).
//!
//! The scheme labels every vertex with
//!
//! 1. its distance to a prover-chosen root **mod 3** (2 bits) — enough to
//!    orient the tree consistently;
//! 2. its state in an accepting run of the property's tree automaton
//!    (`⌈log₂|Q|⌉` bits);
//! 3. a fingerprint of the automaton (16 bits) — the paper ships the
//!    automaton description itself, which is a constant; the fingerprint
//!    plays that role here since the verifier is constructed with the
//!    automaton.
//!
//! Verification at a vertex: the mod-3 counters orient its edges (one
//! neighbor at `d − 1` — the parent — or none — the root); the children's
//! states must satisfy the automaton guard for the vertex's state and
//! label; the root's state must accept.
//!
//! The scheme operates under the paper's *promise* that the input graph
//! is a tree (Theorem 2.2 is stated for trees). Without the promise,
//! compose with [`crate::schemes::acyclicity`] — at the price of
//! `O(log n)` bits, which the paper notes is unavoidable for tree-ness.
//!
//! Labels: the vertex *inputs* of the instance are used as node labels
//! (the paper's locally-checkable-labeling extension); unlabeled trees
//! use input 0 everywhere.

use crate::bits::{width_for, BitReader, BitWriter};
use crate::framework::{
    Assignment, DeclaredBound, Instance, LocalView, Prover, ProverError, RejectReason, Scheme,
    Verifier,
};
use locert_automata::trees::{LabeledTree, TreeAutomaton};
use locert_graph::{NodeId, RootedTree};

/// 16-bit FNV-1a fingerprint of an automaton's debug serialization.
fn fingerprint(a: &TreeAutomaton) -> u64 {
    let s = format!("{a:?}");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h & 0xffff
}

/// Certifies an automaton-recognized (hence MSO) property of labeled
/// trees with constant-size certificates.
#[derive(Debug, Clone)]
pub struct MsoTreeScheme {
    automaton: TreeAutomaton,
    state_bits: u32,
    fp: u64,
}

impl MsoTreeScheme {
    /// Builds the scheme for `automaton`.
    pub fn new(automaton: TreeAutomaton) -> Self {
        // max(1) guards the subtraction: a degenerate automaton with no
        // states (which accepts nothing) must not underflow the width.
        let state_bits = width_for((automaton.num_states() as u64).max(1) - 1);
        let fp = fingerprint(&automaton);
        MsoTreeScheme {
            automaton,
            state_bits,
            fp,
        }
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &TreeAutomaton {
        &self.automaton
    }

    /// Certificate size in bits — a constant for a fixed automaton.
    pub fn certificate_bits(&self) -> usize {
        2 + self.state_bits as usize + 16
    }

    fn parse(&self, cert: &crate::bits::Certificate) -> Option<(u64, usize)> {
        let mut r = BitReader::new(cert);
        let d = r.read(2)?;
        let q = r.read(self.state_bits)? as usize;
        let fp = r.read(16)?;
        (d < 3 && q < self.automaton.num_states() && fp == self.fp && r.exhausted())
            .then_some((d, q))
    }
}

impl Prover for MsoTreeScheme {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let _span = locert_trace::span!("core.schemes.mso_tree.prover");
        let g = instance.graph();
        let rooted = RootedTree::from_tree(g, NodeId(0)).ok_or(ProverError::NotAYesInstance)?;
        let labels: Vec<usize> = g.nodes().map(|v| instance.input(v)).collect();
        let tree = LabeledTree::new(rooted, labels, self.automaton.num_labels())
            .ok_or(ProverError::NotAYesInstance)?;
        let run = self
            .automaton
            .accepting_run(&tree)
            .ok_or(ProverError::NotAYesInstance)?;
        let certs = g
            .nodes()
            .map(|v| {
                let mut w = BitWriter::new();
                w.component("depth-mod-3");
                w.write((tree.tree().depth(v) % 3) as u64, 2);
                w.component("automaton-state");
                w.write(run[v.0] as u64, self.state_bits);
                w.component("automaton-fingerprint");
                w.write(self.fp, 16);
                w.finish_for(v.0)
            })
            .collect();
        Ok(Assignment::new(certs))
    }
}

impl Verifier for MsoTreeScheme {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        if view.input >= self.automaton.num_labels() {
            return Err(RejectReason::BadInput);
        }
        let (d, q) = self
            .parse(view.cert)
            .ok_or(RejectReason::MalformedCertificate)?;
        // Orient edges by mod-3 counters.
        let mut parents = 0usize;
        let mut child_counts = vec![0usize; self.automaton.num_states()];
        for &(_, _, cert) in &view.neighbors {
            let (nd, nq) = self
                .parse(cert)
                .ok_or(RejectReason::MalformedNeighborCertificate)?;
            if nd == (d + 1) % 3 {
                child_counts[nq] += 1;
            } else if nd == (d + 2) % 3 {
                parents += 1;
            } else {
                // Equal counters across an edge break the orientation.
                return Err(RejectReason::CounterMismatch);
            }
        }
        match parents {
            // I am the root: my state must accept.
            0 if !self.automaton.is_accepting(q) => return Err(RejectReason::NotAccepting),
            0 | 1 => {}
            // Two parents cannot happen in a tree.
            _ => return Err(RejectReason::RootMismatch),
        }
        if !self.automaton.guard(q, view.input).eval(&child_counts) {
            return Err(RejectReason::AutomatonStateClash);
        }
        Ok(())
    }
}

impl Scheme for MsoTreeScheme {
    fn name(&self) -> String {
        format!("mso-tree[{} states]", self.automaton.num_states())
    }

    fn declared_bound(&self) -> DeclaredBound {
        // Theorem 2.2: 2 + ⌈log₂|Q|⌉ + 16 bits, independent of n.
        DeclaredBound::Constant
    }
}

/// Theorem 2.2 *without* the tree promise: conjoin the acyclicity scheme
/// (which certifies tree-ness with `O(log n)` bits — unavoidable, per the
/// paper's remark that acyclicity needs `Ω(log n)` \[31, 37]) with the
/// constant-size automaton-run scheme.
pub fn checked_mso_tree(
    id_bits: u32,
    automaton: TreeAutomaton,
) -> crate::schemes::combinators::AndScheme<
    crate::schemes::acyclicity::AcyclicityScheme,
    MsoTreeScheme,
> {
    crate::schemes::combinators::AndScheme::new(
        crate::schemes::acyclicity::AcyclicityScheme::new(id_bits),
        MsoTreeScheme::new(automaton),
        16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::framework::{run_scheme, run_verification};
    use locert_automata::library;
    use locert_graph::{generators, IdAssignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_size_certificates() {
        // The headline of Theorem 2.2: certificate size does not grow
        // with n.
        let scheme = MsoTreeScheme::new(library::has_perfect_matching());
        let mut sizes = Vec::new();
        for n in [2usize, 16, 256, 2048] {
            let g = generators::path(n);
            let ids = IdAssignment::contiguous(n);
            let inst = Instance::new(&g, &ids);
            let out = run_scheme(&scheme, &inst).unwrap();
            assert!(out.accepted(), "n = {n}");
            sizes.push(out.max_bits());
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes {sizes:?}");
        assert_eq!(sizes[0], scheme.certificate_bits());
    }

    #[test]
    fn completeness_and_prover_refusal_across_library() {
        let mut rng = StdRng::seed_from_u64(121);
        let schemes = vec![
            MsoTreeScheme::new(library::height_at_most(4)),
            MsoTreeScheme::new(library::has_perfect_matching()),
            MsoTreeScheme::new(library::max_children_at_most(3)),
            MsoTreeScheme::new(library::some_leaf_at_depth(2)),
        ];
        for _ in 0..15 {
            let n = 2 + rand::RngExt::random_range(&mut rng, 0..12usize);
            let g = generators::random_tree(n, &mut rng);
            let ids = IdAssignment::shuffled(n, &mut rng);
            let inst = Instance::new(&g, &ids);
            for scheme in &schemes {
                // Ground truth straight from the automaton.
                let rooted = RootedTree::from_tree(&g, NodeId(0)).unwrap();
                let t = LabeledTree::unlabeled(rooted);
                let expected = scheme.automaton().accepts(&t);
                match run_scheme(scheme, &inst) {
                    Ok(out) => {
                        assert!(out.accepted());
                        assert!(expected, "{} accepted a no-instance", scheme.name());
                    }
                    Err(ProverError::NotAYesInstance) => {
                        assert!(!expected, "{} refused a yes-instance", scheme.name());
                    }
                    Err(e) => panic!(
                        "prover error for {} on {n}-vertex tree {g:?}: {e}",
                        scheme.name()
                    ),
                }
            }
        }
    }

    #[test]
    fn forged_state_rejected() {
        let scheme = MsoTreeScheme::new(library::has_perfect_matching());
        let g = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let mut asg = scheme.assign(&inst).unwrap();
        // Corrupt vertex 2's state field (bits 2..2+state_bits).
        let c = asg.cert(NodeId(2)).clone();
        *asg.cert_mut(NodeId(2)) = c.with_bit_flipped(2);
        assert!(!run_verification(&scheme, &inst, &asg).accepted());
    }

    #[test]
    fn no_instance_attacks_rejected() {
        // P_5 has no perfect matching: the prover refuses and random
        // certificates must fail somewhere.
        let scheme = MsoTreeScheme::new(library::has_perfect_matching());
        let g = generators::path(5);
        let ids = IdAssignment::contiguous(5);
        let inst = Instance::new(&g, &ids);
        assert_eq!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
        let mut rng = StdRng::seed_from_u64(122);
        assert!(attacks::random_assignments(
            &scheme,
            &inst,
            scheme.certificate_bits(),
            &mut rng,
            500
        )
        .is_none());
    }

    #[test]
    fn exhaustive_soundness_over_valid_shaped_certs() {
        // Star on 4 vertices has no perfect matching (3 leaves): exhaust
        // all certificates whose fingerprint field is correct — the only
        // ones that can pass parsing — over all (d, q) pairs.
        let scheme = MsoTreeScheme::new(library::has_perfect_matching());
        let g = generators::star(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        let options: Vec<crate::bits::Certificate> = (0..3u64)
            .flat_map(|d| (0..3u64).map(move |q| (d, q)))
            .map(|(d, q)| {
                let mut w = BitWriter::new();
                w.write(d, 2);
                w.write(q, scheme.state_bits);
                w.write(scheme.fp, 16);
                w.finish()
            })
            .collect();
        let n = 4;
        let mut indices = vec![0usize; n];
        loop {
            let asg = Assignment::new(indices.iter().map(|&i| options[i].clone()).collect());
            assert!(
                !run_verification(&scheme, &inst, &asg).accepted(),
                "fooling assignment {indices:?}"
            );
            let mut i = 0;
            loop {
                if i == n {
                    return;
                }
                indices[i] += 1;
                if indices[i] < options.len() {
                    break;
                }
                indices[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn labeled_instance_flow() {
        // Automaton over 2 labels: accept iff the root's label is 1
        // (state = own label, parent checks nothing).
        use locert_automata::trees::Guard;
        let a = TreeAutomaton::new(
            2,
            2,
            vec![
                vec![Guard::True, Guard::False],
                vec![Guard::False, Guard::True],
            ],
            vec![false, true],
        )
        .unwrap();
        let scheme = MsoTreeScheme::new(a);
        let g = generators::star(4);
        let ids = IdAssignment::contiguous(4);
        let labels_yes = vec![1usize, 0, 0, 0]; // root (vertex 0) labeled 1.
        let inst = Instance::with_inputs(&g, &ids, &labels_yes);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
        let labels_no = vec![0usize, 1, 1, 1];
        let inst2 = Instance::with_inputs(&g, &ids, &labels_no);
        assert_eq!(
            run_scheme(&scheme, &inst2).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn prover_rejects_non_trees() {
        let scheme = MsoTreeScheme::new(library::height_at_most(3));
        let g = generators::cycle(4);
        let ids = IdAssignment::contiguous(4);
        let inst = Instance::new(&g, &ids);
        assert_eq!(
            run_scheme(&scheme, &inst).unwrap_err(),
            ProverError::NotAYesInstance
        );
    }

    #[test]
    fn checked_variant_drops_the_tree_promise() {
        use crate::framework::Scheme;
        // On a 3-divisible cycle, a forged mod-3 orientation could fool
        // the bare scheme — the checked variant's acyclicity layer
        // catches it.
        let g = generators::cycle(6);
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let bare = MsoTreeScheme::new(library::max_children_at_most(2));
        let checked = checked_mso_tree(
            crate::schemes::common::id_bits_for(&inst),
            library::max_children_at_most(2),
        );
        // Forged bare certificates: orient the 6-cycle with counters
        // 0,1,2,0,1,2 and state 0 everywhere (every vertex then sees one
        // parent and one child — locally tree-like!).
        let certs: Vec<crate::bits::Certificate> = (0..6)
            .map(|v| {
                let mut w = BitWriter::new();
                w.write((v % 3) as u64, 2);
                w.write(0, bare.state_bits);
                w.write(bare.fp, 16);
                w.finish()
            })
            .collect();
        let asg = Assignment::new(certs);
        // The bare scheme is fooled (this is exactly why it runs under a
        // promise)…
        assert!(run_verification(&bare, &inst, &asg).accepted());
        // …the checked scheme cannot be: random attacks at its exact
        // certificate width all fail (acyclicity is unforgeable on a
        // cycle).
        let mut rng = StdRng::seed_from_u64(123);
        let honest_width = {
            // Width on a same-size tree, for a realistic budget.
            let t = generators::path(6);
            let inst_t = Instance::new(&t, &ids);
            checked.assign(&inst_t).unwrap().max_bits()
        };
        assert!(
            attacks::random_assignments(&checked, &inst, honest_width, &mut rng, 300).is_none()
        );
        // And on genuine trees the checked scheme still works, at
        // O(log n) total (a path rooted anywhere has ≤ 2 children).
        let tree = generators::path(6);
        let inst_tree = Instance::new(&tree, &ids);
        let out = run_scheme(&checked, &inst_tree).unwrap();
        assert!(out.accepted());
        assert_eq!(checked.name(), "(acyclicity AND mso-tree[2 states])");
    }

    #[test]
    fn distinct_automata_have_distinct_fingerprints() {
        let a = fingerprint(&library::has_perfect_matching());
        let b = fingerprint(&library::height_at_most(3));
        assert_ne!(a, b);
    }
}
